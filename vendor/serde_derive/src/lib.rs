//! Derive macros for the vendored `serde` shim.
//!
//! Hand-rolled over `proc_macro` (no `syn`/`quote` in the offline vendor
//! tree). Supports what this workspace actually uses:
//!
//! - non-generic structs with named fields, honouring `#[serde(default)]`
//!   (missing key → `Default::default()`) and implicit `Option` defaulting
//!   (missing key → `None`);
//! - non-generic enums with unit, tuple, and struct variants, in serde's
//!   externally-tagged representation (`"Variant"`, `{"Variant": …}`).
//!
//! Anything else (generics, tuple structs, other `#[serde(...)]` attributes)
//! panics at expansion time with a clear message rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
    is_option: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (JSON-value model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (JSON-value model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ------------------------------------------------------------------ parse

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: `{name}` must have a brace-delimited body \
             (tuple structs are unsupported), found {other:?}"
        ),
    };
    match kw.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
        ) {
            *i += 1;
        }
    }
}

/// Scans a field's attributes; returns whether `#[serde(default)]` is among
/// them and advances past all attributes.
fn scan_field_attributes(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        let args = match inner.get(1) {
                            Some(TokenTree::Group(a)) => a.stream().to_string(),
                            _ => String::new(),
                        };
                        if args.trim() == "default" {
                            has_default = true;
                        } else {
                            panic!(
                                "serde_derive shim: unsupported attribute \
                                 #[serde({args})] (only `default` is implemented)"
                            );
                        }
                    }
                }
                *i += 1;
            }
        }
    }
    has_default
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let has_default = scan_field_attributes(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // The type: consume tokens until a comma at angle-bracket depth 0,
        // remembering the leading tokens so `Option` can be recognised even
        // when written as a qualified path (`std::option::Option<T>`).
        let mut depth = 0i32;
        let mut lead_idents: Vec<String> = Vec::new();
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) if depth == 0 => lead_idents.push(id.to_string()),
                _ => {}
            }
            i += 1;
        }
        // Drop a `std`/`core`/`option` path prefix, then test the head ident.
        let is_option = lead_idents
            .iter()
            .find(|s| !matches!(s.as_str(), "std" | "core" | "option"))
            .is_some_and(|s| s == "Option")
            || lead_idents.last().is_some_and(|s| s == "Option");
        fields.push(Field {
            name,
            has_default,
            is_option,
        });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive shim: explicit discriminants are not supported");
        }
        variants.push(Variant { name, kind });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

/// Counts the comma-separated types in a tuple-variant payload.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    commas + 1 - usize::from(trailing_comma)
}

// -------------------------------------------------------------- generate

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::serialize(&self.{n}));\n",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::json::Value {{\n\
         let mut __m = ::serde::json::Map::new();\n\
         {inserts}\
         ::serde::json::Value::Object(__m)\n\
         }}\n}}\n"
    )
}

/// Expression reconstructing one field from object map `__obj`.
fn field_expr(f: &Field) -> String {
    let missing = if f.has_default {
        "::std::default::Default::default()".to_owned()
    } else if f.is_option {
        "::std::option::Option::None".to_owned()
    } else {
        format!(
            "return ::std::result::Result::Err(\
             ::serde::json::Error::missing_field(\"{}\"))",
            f.name
        )
    };
    format!(
        "match __obj.get(\"{n}\") {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}",
        n = f.name
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!("{n}: {e},\n", n = f.name, e = field_expr(f)));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
         let __obj = __v.as_object()\
         .ok_or_else(|| ::serde::json::Error::expected(\"object\", __v))?;\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::json::Value::String(\
                     ::std::string::String::from(\"{vn}\")),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(__f0) => {{\n\
                     let mut __m = ::serde::json::Map::new();\n\
                     __m.insert(::std::string::String::from(\"{vn}\"), \
                     ::serde::Serialize::serialize(__f0));\n\
                     ::serde::json::Value::Object(__m)\n}}\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                     let mut __m = ::serde::json::Map::new();\n\
                     __m.insert(::std::string::String::from(\"{vn}\"), \
                     ::serde::json::Value::Array(vec![{elems}]));\n\
                     ::serde::json::Value::Object(__m)\n}}\n",
                    binds = binds.join(", "),
                    elems = elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inserts = String::new();
                for f in fields {
                    inserts.push_str(&format!(
                        "__inner.insert(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::serialize({n}));\n",
                        n = f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\n\
                     let mut __inner = ::serde::json::Map::new();\n\
                     {inserts}\
                     let mut __m = ::serde::json::Map::new();\n\
                     __m.insert(::std::string::String::from(\"{vn}\"), \
                     ::serde::json::Value::Object(__inner));\n\
                     ::serde::json::Value::Object(__m)\n}}\n",
                    binds = binds.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::json::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::deserialize(__val)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __arr = __val.as_array()\
                     .ok_or_else(|| ::serde::json::Error::expected(\"array\", __val))?;\n\
                     if __arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::json::Error::new(\
                     \"wrong tuple-variant arity for `{vn}`\"));\n}}\n\
                     ::std::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                    elems = elems.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!("{n}: {e},\n", n = f.name, e = field_expr(f)));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __obj = __val.as_object()\
                     .ok_or_else(|| ::serde::json::Error::expected(\"object\", __val))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
         match __v {{\n\
         ::serde::json::Value::String(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::json::Error::new(\
         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
         }},\n\
         ::serde::json::Value::Object(__m) if __m.len() == 1 => {{\n\
         let (__tag, __val) = __m.iter().next().expect(\"len checked\");\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => ::std::result::Result::Err(::serde::json::Error::new(\
         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
         }}\n}}\n\
         __other => ::std::result::Result::Err(\
         ::serde::json::Error::expected(\"enum {name}\", __other)),\n\
         }}\n\
         }}\n}}\n"
    )
}
