//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! `sample_size`/`throughput`, and `Bencher::iter` — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//!
//! Each benchmark runs a calibrated warm-up phase, then a bounded number of
//! timed samples, and reports the **mean, median, and standard deviation**
//! of the per-sample ns/iter figures (plus throughput when set). Results
//! also accumulate in a process-global registry; when the
//! `PITOT_BENCH_JSON` environment variable names a path, `criterion_main!`
//! dumps the registry there as machine-readable JSON so perf runs leave an
//! artifact next to the human-readable output.
//!
//! Environment knobs (all optional):
//!
//! - `PITOT_BENCH_JSON`: path to write the JSON report to.
//! - `PITOT_BENCH_BUDGET_MS`: soft cap on measurement time per benchmark
//!   (default 500 ms). CI smoke runs set this low.
//! - `PITOT_BENCH_WARMUP_MS`: warm-up time per benchmark (default
//!   `budget / 5`).

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One benchmark's summary statistics, as recorded in the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    stddev_ns: f64,
    samples: usize,
    total_iters: u64,
    throughput: Option<(&'static str, u64)>,
}

static REGISTRY: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn env_ms(name: &str, default: Duration) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(default, Duration::from_millis)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Soft cap on total measurement time per benchmark.
    budget: Duration,
    /// Warm-up time per benchmark before any sample is recorded.
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget = env_ms("PITOT_BENCH_BUDGET_MS", Duration::from_millis(500));
        let warmup = env_ms("PITOT_BENCH_WARMUP_MS", budget / 5);
        Criterion {
            sample_size: 10,
            budget,
            warmup,
        }
    }
}

impl Criterion {
    /// Consuming builder: sets the default number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &name.into(),
            None,
            self.sample_size,
            self.budget,
            self.warmup,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            budget: self.budget,
            warmup: self.warmup,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    budget: Duration,
    warmup: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(
            &full,
            self.throughput,
            self.sample_size,
            self.budget,
            self.warmup,
            f,
        );
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F>(f: &mut F, iters: u64) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed.max(Duration::from_nanos(1))
}

fn run_bench<F>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    budget: Duration,
    warmup: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run with doubling iteration counts until the warm-up time is
    // spent. This both brings caches/branch predictors to steady state and
    // calibrates the per-iteration cost for the sampling phase.
    let warm_start = Instant::now();
    let mut iters = 1u64;
    let mut per_iter = run_once(&mut f, iters);
    while warm_start.elapsed() < warmup {
        iters = (iters * 2).min(1_000_000);
        let elapsed = run_once(&mut f, iters);
        per_iter = elapsed / u32::try_from(iters).unwrap_or(u32::MAX);
        if iters == 1_000_000 {
            break;
        }
    }
    let per_iter = per_iter.max(Duration::from_nanos(1));

    // Sampling: pick an iteration count so one sample stays within
    // budget/samples, then record per-sample mean ns/iter.
    let per_sample = budget / u32::try_from(samples.max(1)).unwrap_or(u32::MAX);
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let start = Instant::now();
    let mut sample_means: Vec<f64> = Vec::with_capacity(samples);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let elapsed = run_once(&mut f, iters);
        sample_means.push(elapsed.as_nanos() as f64 / iters as f64);
        total += elapsed;
        total_iters += iters;
        if start.elapsed() > budget {
            break;
        }
    }

    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let mut sorted = sample_means.clone();
    sorted.sort_by(f64::total_cmp);
    let median_ns = if sorted.is_empty() {
        mean_ns
    } else if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let sample_mean = sample_means.iter().sum::<f64>() / sample_means.len().max(1) as f64;
    let stddev_ns = if sample_means.len() > 1 {
        (sample_means
            .iter()
            .map(|m| (m - sample_mean) * (m - sample_mean))
            .sum::<f64>()
            / (sample_means.len() - 1) as f64)
            .sqrt()
    } else {
        0.0
    };

    let stats = format!(
        "{mean_ns:>14.1} ns/iter  median {median_ns:>12.1}  σ {stddev_ns:>10.1}  ({} samples)",
        sample_means.len()
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<50} {stats}  {rate:>12.1} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<50} {stats}  {rate:>12.1} B/s");
        }
        None => println!("bench {name:<50} {stats}"),
    }

    REGISTRY.lock().unwrap().push(BenchRecord {
        name: name.to_owned(),
        mean_ns,
        median_ns,
        stddev_ns,
        samples: sample_means.len(),
        total_iters,
        throughput: throughput.map(|t| match t {
            Throughput::Elements(n) => ("elements", n),
            Throughput::Bytes(n) => ("bytes", n),
        }),
    });
}

/// Records an externally measured benchmark figure into the registry (and
/// prints it like a bench line), for quantities the timing loop cannot
/// express — e.g. tail latencies: a bench measures per-event latencies
/// itself, computes p50/p99, and records each as its own named entry so
/// JSON reports and regression gates treat them like any other benchmark.
///
/// `value_ns` lands in both `mean_ns` and `median_ns`; `stddev_ns` should
/// carry the dispersion of the underlying samples so variance-aware gates
/// widen their thresholds accordingly.
pub fn record_external(name: &str, value_ns: f64, stddev_ns: f64, samples: usize) {
    println!(
        "bench {name:<50} {value_ns:>14.1} ns/iter  median {value_ns:>12.1}  σ {stddev_ns:>10.1}  ({samples} samples, external)"
    );
    REGISTRY.lock().unwrap().push(BenchRecord {
        name: name.to_owned(),
        mean_ns: value_ns,
        median_ns: value_ns,
        stddev_ns,
        samples,
        total_iters: samples as u64,
        throughput: None,
    });
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes the accumulated benchmark records as JSON to the path named by
/// `PITOT_BENCH_JSON`, if set. Called automatically by [`criterion_main!`];
/// a no-op (returning `None`) when the variable is absent. Returns the path
/// written to on success.
pub fn write_json_report() -> Option<String> {
    let path = std::env::var("PITOT_BENCH_JSON").ok()?;
    if path.is_empty() {
        return None;
    }
    let records = REGISTRY.lock().unwrap();
    let mut out = String::from("{\n");
    let threads = std::env::var("PITOT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    // Host provenance: enough to tell a 1-core container run from a
    // multi-core CI runner and an AVX2 machine from a baseline-SSE2 one
    // when comparing JSON dumps across commits.
    let avx2_fma = {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    };
    let git_rev = std::env::var("GITHUB_SHA")
        .ok()
        .or_else(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    out.push_str(&format!(
        "  \"meta\": {{\"threads\": {threads}, \"available_parallelism\": {}, \
         \"avx2_fma_dispatch\": {avx2_fma}, \"arch\": \"{}\", \"os\": \"{}\", \
         \"git_rev\": \"{}\"}},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::env::consts::ARCH,
        std::env::consts::OS,
        json_escape(&git_rev),
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let tp = match r.throughput {
            Some((unit, n)) => {
                format!(", \"throughput\": {{\"unit\": \"{unit}\", \"per_iter\": {n}}}")
            }
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"stddev_ns\": {:.1}, \"samples\": {}, \"total_iters\": {}{}}}{}\n",
            json_escape(&r.name),
            r.mean_ns,
            r.median_ns,
            r.stddev_ns,
            r.samples,
            r.total_iters,
            tp,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => {
            eprintln!("bench JSON report written to {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("failed to write bench JSON report to {path}: {e}");
            None
        }
    }
}

/// Declares a benchmark group function, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups, then dumps the
/// JSON report when `PITOT_BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            let _ = $crate::write_json_report();
        }
    };
}
