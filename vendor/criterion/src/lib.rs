//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! `sample_size`/`throughput`, and `Bencher::iter` — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark runs a short warmup, then a bounded number of timed
//! samples, and prints mean time per iteration (plus throughput when set).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    /// Soft cap on total measurement time per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Consuming builder: sets the default number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), None, self.sample_size, self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            budget: self.budget,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.throughput, self.sample_size, self.budget, f);
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    budget: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warmup: one iteration, which also calibrates per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Pick an iteration count so one sample stays within budget/samples.
    let per_sample = budget / samples.max(1) as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        if start.elapsed() > budget {
            break;
        }
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<50} {mean_ns:>14.1} ns/iter  {rate:>12.1} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench {name:<50} {mean_ns:>14.1} ns/iter  {rate:>12.1} B/s");
        }
        None => println!("bench {name:<50} {mean_ns:>14.1} ns/iter"),
    }
}

/// Declares a benchmark group function, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
