//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher core with 8 rounds behind the
//! upstream [`ChaCha8Rng`] name. Deterministic per seed; the stream does not
//! match upstream `rand_chacha` byte-for-byte (seed expansion differs), which
//! is fine for this workspace — all callers only rely on seeded determinism
//! and statistical quality.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seedable from a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state words (constants are re-applied per block).
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    pos: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&C);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = x[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into a 256-bit key.
        let mut s = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let mut z = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            if pair.len() > 1 {
                pair[1] = (z >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
