//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range strategies over the
//! primitive numeric types, [`collection::vec`] (nested, fixed or ranged
//! length), and `prop_assert!` / `prop_assert_eq!`. There is **no
//! shrinking** — failures report the raw sampled case — and no persistence.
//! Case counts default to 64 and streams are deterministic per test name,
//! so CI runs are reproducible.

pub mod collection;

use std::ops::Range;

/// Subset of upstream `ProptestConfig` the tests touch. Extra fields keep
/// `..ProptestConfig::default()` struct-update syntax working.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Deterministic per-test random source (SplitMix64 seeded from the test
/// name, so adding tests never perturbs existing streams).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

/// `Just`-style constant strategy (handy escape hatch).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Runs each property as `cases` seeded random trials (no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        // Upstream style: the user writes `#[test]` inside `proptest!`, so
        // it arrives via `$meta` — do not add another one here.
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
