//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range strategies over the
//! primitive numeric types, [`collection::vec`] (nested, fixed or ranged
//! length), and `prop_assert!` / `prop_assert_eq!`. There is **no
//! shrinking** and no persistence — instead, a failing case prints a
//! ready-to-paste `PITOT_REPRO_SEED=<state> cargo test <name>` line
//! ([`ReproGuard`]), and setting that variable replays exactly the failing
//! case. Case counts default to 64 and streams are deterministic per test
//! name, so CI runs are reproducible.

pub mod collection;

use std::ops::Range;

/// Subset of upstream `ProptestConfig` the tests touch. Extra fields keep
/// `..ProptestConfig::default()` struct-update syntax working.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Deterministic per-test random source (SplitMix64 seeded from the test
/// name, so adding tests never perturbs existing streams).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The current SplitMix64 state. Captured at the top of each generated
    /// case so a failure can be replayed exactly (see [`ReproGuard`]).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds the generator at a captured [`TestRng::state`] — the replay
    /// half of `PITOT_REPRO_SEED`.
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

/// Prints a ready-to-paste replay line when a property case panics.
///
/// There is no shrinking in this shim, so the next best thing is a *loud*
/// failure: the macro arms one guard per case with the RNG state the case
/// was drawn from; if the body panics, the guard's drop (which runs during
/// unwinding) prints `PITOT_REPRO_SEED=<state> cargo test <name>`. Setting
/// that variable makes the macro run exactly the failing case, alone.
#[derive(Debug)]
pub struct ReproGuard {
    state: u64,
    name: &'static str,
    armed: bool,
}

impl ReproGuard {
    /// Arms a guard for one case drawn from RNG state `state`.
    pub fn new(name: &'static str, state: u64) -> Self {
        ReproGuard {
            state,
            name,
            armed: true,
        }
    }

    /// Disarms after the case body returned normally.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ReproGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest case failed (no shrinking in this shim); replay just this case with:\n  \
                 PITOT_REPRO_SEED={} cargo test {}",
                self.state, self.name
            );
        }
    }
}

/// `Just`-style constant strategy (handy escape hatch).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Runs each property as `cases` seeded random trials (no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        // Upstream style: the user writes `#[test]` inside `proptest!`, so
        // it arrives via `$meta` — do not add another one here.
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // PITOT_REPRO_SEED (printed by a failing run's ReproGuard)
            // replays exactly one case from the captured RNG state.
            let (__state, __cases): (u64, u32) =
                match ::std::env::var("PITOT_REPRO_SEED") {
                    Ok(s) => (
                        s.trim().parse().expect(
                            "PITOT_REPRO_SEED must be the u64 printed by a failing proptest case",
                        ),
                        1,
                    ),
                    Err(_) => (
                        $crate::TestRng::deterministic(
                            concat!(module_path!(), "::", stringify!($name)),
                        )
                        .state(),
                        __cfg.cases,
                    ),
                };
            let mut __rng = $crate::TestRng::from_state(__state);
            for __case in 0..__cases {
                let _ = __case;
                let mut __guard =
                    $crate::ReproGuard::new(stringify!($name), __rng.state());
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_and_replays_the_same_stream() {
        let mut a = TestRng::deterministic("some::test");
        let _ = a.next_u64(); // advance past the seed
        let captured = a.state();
        let tail: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = TestRng::from_state(captured);
        let replay: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(tail, replay, "from_state must replay the exact stream");
    }

    #[test]
    fn state_is_captured_before_generation_not_after() {
        // The macro arms the guard with the state *before* drawing the
        // case's values; replaying from it must regenerate them.
        let mut rng = TestRng::deterministic("other::test");
        let before = rng.state();
        let drawn = Strategy::generate(&(0u64..1000), &mut rng);
        let mut replay = TestRng::from_state(before);
        assert_eq!(drawn, Strategy::generate(&(0u64..1000), &mut replay));
    }

    #[test]
    fn disarmed_guard_is_silent_and_armed_guard_survives_unwinding() {
        let mut g = ReproGuard::new("t", 42);
        g.disarm();
        drop(g); // no panic in flight, nothing printed, no crash
        let err = std::panic::catch_unwind(|| {
            let _armed = ReproGuard::new("t", 42);
            panic!("case failed");
        });
        assert!(err.is_err(), "the guard must not swallow the panic");
    }

    proptest! {
        // The macro path itself: guards arm/disarm every case without
        // perturbing the generated stream.
        #[test]
        fn macro_generates_in_range(x in 10u32..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }
    }
}
