//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Length specification for [`fn@vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a strategy for vectors with lengths in `size` (a `usize` or a
/// range) whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.below(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
