//! `Serialize` / `Deserialize` implementations for std types.

use crate::json::{Error, Value};
use crate::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

// ---------------------------------------------------------------- numbers

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::expected("number", v))?;
                if n.fract() != 0.0 {
                    return Err(Error::new(format!(
                        "expected integer, found fractional number {n}"
                    )));
                }
                // Range-check before the cast: `as` saturates, which would
                // turn corrupt input into silently wrong numbers.
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::new(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                // Like serde_json, non-finite floats have no JSON form.
                let x = *self as f64;
                if x.is_finite() { Value::Number(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}

impl_float!(f32, f64);

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if a.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                a.len()
            )));
        }
        let items: Vec<T> = a.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if a.len() != $n {
                    return Err(Error::new(format!(
                        "expected array of length {}, found {}",
                        $n,
                        a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

// ------------------------------------------------------------------ maps

/// Types usable as JSON object keys (JSON keys are always strings).
pub trait JsonKey: Sized {
    /// Renders the key as a string.
    fn to_json_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_json_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_json_key(&self) -> String {
                self.to_string()
            }
            fn from_json_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::new(format!("invalid integer map key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_json_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_json_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

// ----------------------------------------------------------------- Value

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// Keep the Map alias (BTreeMap<String, Value>) covered via the generic
// BTreeMap impls above; `Map` keys are `String`, so they already apply.
