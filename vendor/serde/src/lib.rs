//! Minimal offline stand-in for the `serde` crate.
//!
//! This workspace builds without crates.io access, so the slice of serde the
//! codebase relies on — `#[derive(Serialize, Deserialize)]`, the
//! `#[serde(default)]` field attribute, and JSON round-trips through
//! `serde_json` — is reimplemented here. The data model is JSON-only: types
//! serialize directly into [`json::Value`] rather than through serde's
//! visitor machinery. The derive macros live in the companion
//! `serde_derive` shim and target these traits.

pub mod json;

mod impls;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// A type that can be represented as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}
