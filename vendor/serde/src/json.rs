//! The JSON data model shared by `serde` and `serde_json`.
//!
//! Living here (rather than in `serde_json`) lets the [`crate::Serialize`] /
//! [`crate::Deserialize`] traits mention [`Value`] without a dependency
//! cycle; `serde_json` re-exports everything.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys; order is irrelevant to this workspace).
    Object(Map),
}

/// The object representation.
pub type Map = BTreeMap<String, Value>;

impl Value {
    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the object map, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Indexes into an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short tag used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::new(format!("expected {what}, found {}", found.kind()))
    }

    /// "missing field `name`" helper.
    pub fn missing_field(name: &str) -> Self {
        Error::new(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
