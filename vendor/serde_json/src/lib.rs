//! Minimal offline stand-in for the `serde_json` crate.
//!
//! Re-exports the JSON [`Value`] model from the vendored `serde` shim and
//! adds the string-facing entry points the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`from_value`].

pub use serde::json::{Error, Map, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::deserialize(&v)
}

/// Converts an already-parsed [`Value`] into a `T`.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::deserialize(&v)
}

// ---------------------------------------------------------------- printer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            write_sep(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            write_sep(out, indent, level);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // Like serde_json's lossy float handling: no JSON form for NaN/inf.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fractional part.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    /// Reads 4 hex digits at the cursor (the payload of a `\u` escape).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let mut code = self.parse_hex4()?;
                            // Non-BMP characters arrive as UTF-16 surrogate
                            // pairs (`😀`); combine them.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("unpaired UTF-16 surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass through).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found `{}`",
                        c as char
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut m = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            m.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        c as char
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"hi\nthere","d":null},"e":true}"#;
        let v: Value = from_str(text).unwrap();
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(3));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("hi\nthere")
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [1.5f64, -2.0, 0.1, 3.25, f64::MIN_POSITIVE, 1e300] {
            let v: Value = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(v.as_f64(), Some(x));
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v: Value = from_str(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok"));
        assert!(from_str::<Value>(r#""\ud83d oops""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
