//! Minimal offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! handful of `rand` APIs the codebase uses are reimplemented here with the
//! same names and signatures: [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`/`choose`). Streams are deterministic per
//! seed but do not match upstream `rand` byte-for-byte.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range that can be sampled to produce values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + mul_shift(rng.next_u64(), span) as Self
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                lo + mul_shift(rng.next_u64(), span + 1) as Self
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(mul_shift(rng.next_u64(), span) as Self)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as Self)
            }
        }
    )*};
}

/// Unbiased-enough integer scaling: `floor(bits * span / 2^64)`.
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        if v < hi {
            v
        } else {
            // Guard against round-up to `hi` when the span is tiny.
            lo.max(hi - (hi - lo) * f64::EPSILON)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * unit_f32(rng.next_u64());
        if v < hi {
            v
        } else {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}
