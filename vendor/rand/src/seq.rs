//! Slice sampling helpers (`SliceRandom`).

use crate::{RngCore, SampleRange};

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_in(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i: usize = (0..self.len()).sample_in(rng);
            Some(&self[i])
        }
    }
}
