//! Interference-slowdown histograms (paper Fig 1).

use pitot_testbed::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A histogram over log-spaced slowdown bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Bin edges in linear space (length `counts.len() + 1`).
    pub edges: Vec<f32>,
    /// Observation counts per bin.
    pub counts: Vec<usize>,
}

impl LogHistogram {
    /// Fraction of observations above `threshold`.
    pub fn tail_fraction(&self, threshold: f32) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let tail: usize = self
            .edges
            .windows(2)
            .zip(&self.counts)
            .filter(|(e, _)| e[0] >= threshold)
            .map(|(_, c)| *c)
            .sum();
        tail as f32 / total as f32
    }

    /// Formats one row per bin as `lo..hi count` for terminal reports.
    pub fn rows(&self) -> Vec<String> {
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(e, c)| format!("{:>7.2}x – {:>7.2}x  {c}", e[0], e[1]))
            .collect()
    }
}

/// Builds a histogram with `bins` log-spaced bins over `[lo, hi]`.
///
/// Values outside the range are clamped into the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or the range is invalid.
pub fn log_histogram(values: &[f32], lo: f32, hi: f32, bins: usize) -> LogHistogram {
    assert!(bins > 0, "need at least one bin");
    assert!(lo > 0.0 && hi > lo, "invalid range [{lo}, {hi}]");
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    let width = (log_hi - log_lo) / bins as f32;
    let edges: Vec<f32> = (0..=bins)
        .map(|b| (log_lo + b as f32 * width).exp())
        .collect();
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v.max(1e-12).ln() - log_lo) / width).floor() as isize)
            .clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    LogHistogram { edges, counts }
}

/// Observed interference slowdowns by interference count (paper Fig 1).
///
/// Each interference observation's runtime is divided by the mean *isolated*
/// runtime of the same (workload, platform) pair; pairs never observed in
/// isolation are skipped. Returns `(n_interferers → slowdowns)`.
pub fn observed_slowdowns(dataset: &Dataset) -> HashMap<usize, Vec<f32>> {
    // Mean isolated runtime per (workload, platform).
    let mut iso_sum: HashMap<(u32, u32), (f64, u32)> = HashMap::new();
    for o in &dataset.observations {
        if o.interferers.is_empty() {
            let e = iso_sum.entry((o.workload, o.platform)).or_insert((0.0, 0));
            e.0 += o.runtime_s as f64;
            e.1 += 1;
        }
    }

    let mut out: HashMap<usize, Vec<f32>> = HashMap::new();
    for o in &dataset.observations {
        if o.interferers.is_empty() {
            continue;
        }
        if let Some(&(sum, n)) = iso_sum.get(&(o.workload, o.platform)) {
            let base = (sum / n as f64) as f32;
            if base > 0.0 {
                out.entry(o.interferers.len())
                    .or_default()
                    .push(o.runtime_s / base);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    #[test]
    fn histogram_bins_and_clamping() {
        let h = log_histogram(&[0.5, 1.0, 2.0, 4.0, 100.0], 1.0, 8.0, 3);
        assert_eq!(h.counts.len(), 3);
        assert_eq!(h.counts.iter().sum::<usize>(), 5);
        // 0.5 clamps into the first bin; 100 into the last.
        assert!(h.counts[0] >= 2);
        assert!(h.counts[2] >= 2);
    }

    #[test]
    fn tail_fraction_decreases() {
        let values: Vec<f32> = (1..=100).map(|i| i as f32 / 10.0).collect();
        let h = log_histogram(&values, 0.1, 20.0, 32);
        assert!(h.tail_fraction(1.0) > h.tail_fraction(5.0));
    }

    #[test]
    fn dataset_slowdowns_reproduce_fig1_shape() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let slow = observed_slowdowns(&ds);
        // All three interference arities present…
        for k in 1..=3 {
            assert!(!slow[&k].is_empty(), "no {k}-way slowdowns");
        }
        // …the bulk of mass is near 1x…
        let mean1 = pitot_linalg::mean(&slow[&1]);
        assert!(mean1 > 0.8 && mean1 < 3.0, "2-way mean slowdown {mean1}");
        // …and more interferers shift the distribution right (Fig 1).
        let mean3 = pitot_linalg::mean(&slow[&3]);
        assert!(mean3 > mean1, "4-way mean {mean3} ≤ 2-way mean {mean1}");
        // Heavy tail exists somewhere.
        let max3 = slow[&3].iter().cloned().fold(0.0f32, f32::max);
        assert!(max3 > 3.0, "max 4-way slowdown only {max3}");
    }
}
