//! Spectral norm of the low-rank interference matrix (paper Eq 15, Fig 12d).
//!
//! Pitot never materializes `F_j = Σ_t v_s⁽ᵗ⁾ v_g⁽ᵗ⁾ᵀ`; its spectral norm is
//! computed by power iteration with implicit matrix–vector products:
//! `F x = Vsᵀ (Vg x)` and `Fᵀ y = Vgᵀ (Vs y)` where `Vs`, `Vg` stack the
//! type vectors as rows.

use pitot_linalg::{dot, Matrix};

/// Spectral norm of `F = Σ_t s_t g_tᵀ` given the stacked factor rows.
///
/// `vs` and `vg` are `s × r` matrices whose row `t` holds `v_s⁽ᵗ⁾` and
/// `v_g⁽ᵗ⁾`. Power iteration runs on `FᵀF` (an `r × r` operator of rank ≤ s).
///
/// # Panics
///
/// Panics if the factor shapes disagree.
pub fn spectral_norm_lowrank(vs: &Matrix, vg: &Matrix) -> f32 {
    assert_eq!(vs.shape(), vg.shape(), "factor shape mismatch");
    let (s, r) = vs.shape();
    if s == 0 || r == 0 {
        return 0.0;
    }
    // x ← deterministic start with energy in all coordinates.
    let mut x: Vec<f32> = (0..r).map(|i| 1.0 + (i as f32) * 1e-3).collect();
    normalize(&mut x);
    let mut sigma = 0.0f32;
    for _ in 0..200 {
        // y = F x = Σ_t s_t (g_t · x)   (an r-vector)
        let y = apply(vs, vg, &x);
        // z = Fᵀ y = Σ_t g_t (s_t · y)
        let z = apply(vg, vs, &y);
        let norm = z.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm < 1e-20 {
            return 0.0;
        }
        x = z;
        normalize(&mut x);
        let new_sigma = norm.sqrt(); // ||FᵀF x|| → σ² at convergence
        if (new_sigma - sigma).abs() < 1e-6 * sigma.max(1e-12) {
            return new_sigma;
        }
        sigma = new_sigma;
    }
    sigma
}

/// `F x` with `F = Σ_t a_t b_tᵀ`: returns `Σ_t a_t (b_t · x)`.
fn apply(a: &Matrix, b: &Matrix, x: &[f32]) -> Vec<f32> {
    let (s, r) = a.shape();
    let mut out = vec![0.0f32; r];
    for t in 0..s {
        let coeff = dot(b.row(t), x);
        pitot_linalg::axpy_slice(coeff, a.row(t), &mut out);
    }
    out
}

fn normalize(x: &mut [f32]) {
    let n = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-20);
    for v in x {
        *v /= n;
    }
}

/// Spectral norm of platform `j`'s interference matrix from per-type
/// susceptibility/magnitude embedding matrices (each `Np × r`).
///
/// # Panics
///
/// Panics if `vs`/`vg` disagree in type count or shape.
pub fn interference_matrix_norm(vs: &[Matrix], vg: &[Matrix], platform: usize) -> f32 {
    assert_eq!(vs.len(), vg.len(), "type count mismatch");
    let s = vs.len();
    if s == 0 {
        return 0.0;
    }
    let r = vs[0].cols();
    let mut vs_rows = Matrix::zeros(s, r);
    let mut vg_rows = Matrix::zeros(s, r);
    for t in 0..s {
        vs_rows.row_mut(t).copy_from_slice(vs[t].row(platform));
        vg_rows.row_mut(t).copy_from_slice(vg[t].row(platform));
    }
    spectral_norm_lowrank(&vs_rows, &vg_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Dense reference spectral norm via power iteration on the explicit
    /// matrix (for validation only).
    fn dense_spectral_norm(f: &Matrix) -> f32 {
        let (m, n) = f.shape();
        let mut x = vec![1.0f32; n];
        normalize(&mut x);
        let mut sigma = 0.0;
        for _ in 0..500 {
            // y = F x
            let mut y = vec![0.0f32; m];
            for i in 0..m {
                y[i] = dot(f.row(i), &x);
            }
            // z = Fᵀ y
            let mut z = vec![0.0f32; n];
            for i in 0..m {
                pitot_linalg::axpy_slice(y[i], f.row(i), &mut z);
            }
            let norm = z.iter().map(|v| v * v).sum::<f32>().sqrt();
            x = z;
            normalize(&mut x);
            sigma = norm.sqrt();
        }
        sigma
    }

    #[test]
    fn rank_one_norm_is_product_of_norms() {
        // F = s gᵀ has spectral norm ‖s‖·‖g‖.
        let s = Matrix::from_rows(&[&[3.0, 0.0, 4.0]]); // norm 5
        let g = Matrix::from_rows(&[&[1.0, 2.0, 2.0]]); // norm 3
        let norm = spectral_norm_lowrank(&s, &g);
        assert!((norm - 15.0).abs() < 1e-3, "norm {norm}");
    }

    #[test]
    fn matches_dense_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            let vs = Matrix::randn(2, 16, &mut rng);
            let vg = Matrix::randn(2, 16, &mut rng);
            // Explicit F = Σ_t vs_t vg_tᵀ.
            let mut f = Matrix::zeros(16, 16);
            for t in 0..2 {
                for i in 0..16 {
                    for j in 0..16 {
                        f[(i, j)] += vs[(t, i)] * vg[(t, j)];
                    }
                }
            }
            let fast = spectral_norm_lowrank(&vs, &vg);
            let dense = dense_spectral_norm(&f);
            assert!(
                (fast - dense).abs() < 1e-2 * dense.max(1.0),
                "fast {fast} vs dense {dense}"
            );
        }
    }

    #[test]
    fn zero_factors_give_zero() {
        let z = Matrix::zeros(2, 8);
        assert_eq!(spectral_norm_lowrank(&z, &z), 0.0);
    }

    #[test]
    fn per_platform_extraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let vs = vec![Matrix::randn(5, 8, &mut rng), Matrix::randn(5, 8, &mut rng)];
        let vg = vec![Matrix::randn(5, 8, &mut rng), Matrix::randn(5, 8, &mut rng)];
        let n0 = interference_matrix_norm(&vs, &vg, 0);
        let n1 = interference_matrix_norm(&vs, &vg, 1);
        assert!(n0 > 0.0 && n1 > 0.0);
        assert_ne!(n0, n1);
    }
}
