//! Neighborhood purity: a quantitative check that an embedding clusters by
//! label (the reproducible stand-in for "the t-SNE plot shows clusters",
//! paper Figs 7 / 12a–c).

use pitot_linalg::Matrix;

/// Mean fraction of each point's `k` nearest neighbors (Euclidean) that
/// share its label. 1.0 = perfectly clustered; the chance level equals the
/// label distribution's self-collision probability.
///
/// # Panics
///
/// Panics if `labels.len() != points.rows()`, `k == 0`, or there are fewer
/// than `k + 1` points.
pub fn neighborhood_purity(points: &Matrix, labels: &[usize], k: usize) -> f32 {
    let n = points.rows();
    assert_eq!(labels.len(), n, "one label per point");
    assert!(k > 0, "k must be positive");
    assert!(n > k, "need more than k points");

    let mut total = 0.0f64;
    for i in 0..n {
        // Distances to all other points.
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d: f32 = points
                    .row(i)
                    .iter()
                    .zip(points.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, j)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let same = dists[..k]
            .iter()
            .filter(|(_, j)| labels[*j] == labels[i])
            .count();
        total += same as f64 / k as f64;
    }
    (total / n as f64) as f32
}

/// Chance-level purity for a label assignment: `Σ_c (n_c/n)·((n_c−1)/(n−1))`.
pub fn chance_purity(labels: &[usize]) -> f32 {
    let n = labels.len();
    if n < 2 {
        return 0.0;
    }
    let max = labels.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max + 1];
    for &l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .map(|&c| (c as f32 / n as f32) * ((c.saturating_sub(1)) as f32 / (n - 1) as f32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_clusters_have_high_purity() {
        // Two tight clusters far apart.
        let mut pts = Matrix::zeros(10, 2);
        let mut labels = Vec::new();
        for i in 0..10 {
            let c = i / 5;
            pts[(i, 0)] = c as f32 * 100.0 + (i % 5) as f32 * 0.1;
            labels.push(c);
        }
        assert!(neighborhood_purity(&pts, &labels, 3) > 0.99);
    }

    #[test]
    fn shuffled_labels_hit_chance_level() {
        // Same geometry, labels alternating — purity should be far from 1.
        let mut pts = Matrix::zeros(20, 1);
        let mut labels = Vec::new();
        for i in 0..20 {
            pts[(i, 0)] = i as f32;
            labels.push(i % 2);
        }
        let p = neighborhood_purity(&pts, &labels, 2);
        assert!(p < 0.4, "alternating labels purity {p}");
        let chance = chance_purity(&labels);
        assert!((chance - 0.474).abs() < 0.01, "chance {chance}");
    }

    #[test]
    #[should_panic(expected = "one label per point")]
    fn checks_label_count() {
        let _ = neighborhood_purity(&Matrix::zeros(5, 2), &[0, 1], 1);
    }
}
