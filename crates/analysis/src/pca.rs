//! Principal component analysis via power iteration with deflation.
//!
//! t-SNE (Fig 7 / 12a–c) is the paper's visualization of choice, but PCA is
//! the standard first look at an embedding space: it is deterministic, it
//! preserves global structure, and its explained-variance spectrum reveals
//! the *effective rank* of the learned embeddings — a direct check on the
//! paper's claim that r only needs to be "sufficiently large" (Fig 10:
//! error stops improving past r = 32, implying the extra dimensions carry
//! little variance).

use pitot_linalg::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A fitted PCA decomposition.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the input (`d`).
    pub mean: Vec<f32>,
    /// Principal axes, one row per component (`k × d`).
    pub components: Matrix,
    /// Variance captured by each component.
    pub explained_variance: Vec<f32>,
    /// Total variance of the centered input.
    pub total_variance: f32,
}

impl Pca {
    /// Fits `k` principal components by power iteration on the covariance
    /// matrix with deflation.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, has fewer than 2 rows, or `k` exceeds
    /// the feature dimension.
    pub fn fit(points: &Matrix, k: usize) -> Self {
        let (n, d) = points.shape();
        assert!(n >= 2, "PCA needs at least two points");
        assert!(k >= 1 && k <= d, "component count {k} outside [1, {d}]");

        // Center.
        let mut mean = vec![0.0f32; d];
        for r in 0..n {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += points.row(r)[c];
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut x = points.clone();
        for r in 0..n {
            let row = x.row_mut(r);
            for (c, m) in mean.iter().enumerate() {
                row[c] -= m;
            }
        }

        // Covariance (d × d), sample-normalized.
        let mut cov = x.transpose_matmul(&x);
        cov.scale(1.0 / (n as f32 - 1.0));
        let total_variance: f32 = (0..d).map(|i| cov.row(i)[i]).sum();

        let mut rng = ChaCha8Rng::seed_from_u64(0x9CA0_57A7);
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for comp in 0..k {
            let (v, lambda) = dominant_eigenvector(&cov, &mut rng);
            explained.push(lambda.max(0.0));
            components.row_mut(comp).copy_from_slice(&v);
            // Deflate: cov ← cov − λ v vᵀ.
            for i in 0..d {
                let vi = v[i];
                let row = cov.row_mut(i);
                for (j, r) in row.iter_mut().enumerate() {
                    *r -= lambda * vi * v[j];
                }
            }
        }

        Self {
            mean,
            components,
            explained_variance: explained,
            total_variance,
        }
    }

    /// Projects points onto the fitted components (`n × k`).
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from the fit.
    pub fn transform(&self, points: &Matrix) -> Matrix {
        let (n, d) = points.shape();
        assert_eq!(d, self.mean.len(), "feature dimension mismatch");
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            let row = points.row(r);
            let centered: Vec<f32> = row.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
            let or = out.row_mut(r);
            for c in 0..k {
                or[c] = pitot_linalg::dot(&centered, self.components.row(c));
            }
        }
        out
    }

    /// Fraction of total variance captured by the first `k` fitted
    /// components (cumulative explained-variance ratio).
    pub fn explained_ratio(&self) -> f32 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f32>() / self.total_variance
    }

    /// The smallest number of fitted components capturing at least `frac`
    /// of total variance (`None` if the fitted components never reach it) —
    /// the embedding's effective rank at tolerance `1 − frac`.
    pub fn effective_rank(&self, frac: f32) -> Option<usize> {
        if self.total_variance <= 0.0 {
            return Some(0);
        }
        let mut acc = 0.0;
        for (i, ev) in self.explained_variance.iter().enumerate() {
            acc += ev / self.total_variance;
            if acc >= frac {
                return Some(i + 1);
            }
        }
        None
    }
}

/// Power iteration for the dominant eigenpair of a symmetric matrix.
fn dominant_eigenvector<R: Rng + ?Sized>(a: &Matrix, rng: &mut R) -> (Vec<f32>, f32) {
    let d = a.rows();
    let mut v: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    normalize(&mut v);
    let mut lambda = 0.0f32;
    for _ in 0..200 {
        let mut av = vec![0.0f32; d];
        for i in 0..d {
            av[i] = pitot_linalg::dot(a.row(i), &v);
        }
        let new_lambda = pitot_linalg::dot(&av, &v);
        normalize(&mut av);
        let delta: f32 = av.iter().zip(&v).map(|(x, y)| (x - y).abs()).sum();
        v = av;
        let converged = (new_lambda - lambda).abs() < 1e-7 * (1.0 + new_lambda.abs());
        lambda = new_lambda;
        if converged && delta < 1e-6 {
            break;
        }
    }
    (v, lambda)
}

fn normalize(v: &mut [f32]) {
    let norm = pitot_linalg::dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Points on a noisy 2-D plane embedded in 6-D.
    fn planar_data(n: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, 6);
        for r in 0..n {
            let a: f32 = rng.gen_range(-3.0..3.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            let row = m.row_mut(r);
            row[0] = a;
            row[1] = b;
            row[2] = 0.5 * a - 0.2 * b;
            row[3] = -a + b;
            for c in 0..6 {
                row[c] += 0.01 * rng.gen_range(-1.0f32..1.0);
            }
        }
        m
    }

    #[test]
    fn recovers_low_rank_structure() {
        let data = planar_data(400, 0);
        let pca = Pca::fit(&data, 4);
        assert_eq!(
            pca.effective_rank(0.99),
            Some(2),
            "data is rank-2 up to noise"
        );
        assert!(pca.explained_ratio() > 0.99);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = planar_data(300, 1);
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            for j in 0..3 {
                let d = pitot_linalg::dot(pca.components.row(i), pca.components.row(j));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-2, "⟨c{i}, c{j}⟩ = {d}");
            }
        }
    }

    #[test]
    fn variances_are_sorted_descending() {
        let data = planar_data(300, 2);
        let pca = Pca::fit(&data, 4);
        for w in pca.explained_variance.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-4,
                "variances out of order: {:?}",
                pca.explained_variance
            );
        }
    }

    #[test]
    fn transform_decorrelates() {
        let data = planar_data(500, 3);
        let pca = Pca::fit(&data, 2);
        let proj = pca.transform(&data);
        // Empirical covariance of the projection should be diagonal.
        let n = proj.rows() as f32;
        let mean0: f32 = (0..proj.rows()).map(|r| proj.row(r)[0]).sum::<f32>() / n;
        let mean1: f32 = (0..proj.rows()).map(|r| proj.row(r)[1]).sum::<f32>() / n;
        let cov01: f32 = (0..proj.rows())
            .map(|r| (proj.row(r)[0] - mean0) * (proj.row(r)[1] - mean1))
            .sum::<f32>()
            / (n - 1.0);
        let var0: f32 = (0..proj.rows())
            .map(|r| (proj.row(r)[0] - mean0).powi(2))
            .sum::<f32>()
            / (n - 1.0);
        assert!(
            cov01.abs() < 0.05 * var0,
            "projection not decorrelated: cov {cov01}"
        );
    }

    #[test]
    fn projection_of_mean_is_origin() {
        let data = planar_data(100, 4);
        let pca = Pca::fit(&data, 2);
        let mean_row = Matrix::from_vec(1, 6, pca.mean.clone());
        let proj = pca.transform(&mean_row);
        assert!(proj.row(0).iter().all(|v| v.abs() < 1e-4));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_too_many_components() {
        let data = planar_data(50, 5);
        Pca::fit(&data, 7);
    }

    use rand::Rng;
    use rand_chacha::ChaCha8Rng;
}
