//! Analysis tools for the Pitot reproduction's evaluation section.
//!
//! - [`tsne`]: exact t-distributed stochastic neighbor embedding for the
//!   workload/platform embedding visualizations (paper Figs 7, 12a–c);
//! - [`spectral`]: power-iteration spectral norm of the low-rank interference
//!   matrix `F_j = Σ_t v_s⁽ᵗ⁾ v_g⁽ᵗ⁾ᵀ` (paper Fig 12d / Eq 15);
//! - [`histogram`]: log-spaced interference-slowdown histograms (paper Fig 1);
//! - [`cluster`]: neighborhood-purity scores quantifying how well embeddings
//!   cluster by label (the quantitative stand-in for "the t-SNE shows clear
//!   clusters");
//! - [`correlation`]: Pearson correlation for the Fig 12d trend;
//! - [`rank`]: Spearman/Kendall rank correlations (the monotone version of
//!   the Fig 12d claim);
//! - [`pca`]: principal component analysis and effective-rank estimates of
//!   the learned embeddings (the spectrum behind the Fig 10 r-ablation);
//! - [`quality`]: silhouette and trustworthiness scores that make "the
//!   t-SNE shows clusters" a measurable statement.

// Every public item in this crate is part of the documented workspace
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

pub mod cluster;
pub mod correlation;
pub mod histogram;
pub mod pca;
pub mod quality;
pub mod rank;
pub mod spectral;
pub mod tsne;

pub use cluster::neighborhood_purity;
pub use correlation::pearson;
pub use histogram::{log_histogram, observed_slowdowns, LogHistogram};
pub use pca::Pca;
pub use quality::{silhouette_score, trustworthiness};
pub use rank::{kendall_tau, spearman};
pub use spectral::{interference_matrix_norm, spectral_norm_lowrank};
pub use tsne::{Tsne, TsneConfig};
