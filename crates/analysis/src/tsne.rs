//! Exact t-SNE (van der Maaten & Hinton 2008).
//!
//! The embedding sets in this workspace are small (≤ 300 points), so the
//! exact O(N²) algorithm is more than fast enough and avoids approximation
//! parameters. Standard recipe: perplexity-calibrated Gaussian affinities,
//! symmetrized; Student-t low-dimensional affinities; gradient descent with
//! momentum and early exaggeration.

use pitot_linalg::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// t-SNE hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsneConfig {
    /// Target perplexity of the conditional Gaussians (≈ effective #neighbors).
    pub perplexity: f32,
    /// Output dimensionality (2 for all paper figures).
    pub out_dim: usize,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f32,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 15.0,
            out_dim: 2,
            iterations: 500,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Exact t-SNE runner.
#[derive(Debug, Clone)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Creates a runner with the given configuration.
    pub fn new(config: TsneConfig) -> Self {
        Self { config }
    }

    /// Embeds the rows of `x` into `out_dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer than 4 rows or the perplexity is not positive.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        assert!(n >= 4, "t-SNE needs at least 4 points, got {n}");
        assert!(self.config.perplexity > 0.0);
        let cfg = &self.config;

        let p = joint_affinities(x, cfg.perplexity.min((n as f32 - 2.0) / 3.0));
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut y = Matrix::randn(n, cfg.out_dim, &mut rng);
        y.scale(1e-2);
        let mut velocity = Matrix::zeros(n, cfg.out_dim);
        let exag_until = cfg.iterations / 4;

        for iter in 0..cfg.iterations {
            let exag = if iter < exag_until {
                cfg.exaggeration
            } else {
                1.0
            };
            let momentum = if iter < exag_until { 0.5 } else { 0.8 };

            // Student-t affinities Q and normalization.
            let mut qnum = Matrix::zeros(n, n);
            let mut z = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let d2: f32 = y
                        .row(i)
                        .iter()
                        .zip(y.row(j))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let q = 1.0 / (1.0 + d2);
                    qnum[(i, j)] = q;
                    qnum[(j, i)] = q;
                    z += 2.0 * q as f64;
                }
            }
            let z = (z as f32).max(1e-12);

            // Gradient: 4 Σ_j (exag·p_ij − q_ij) q_num_ij (y_i − y_j).
            let mut grad = Matrix::zeros(n, cfg.out_dim);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let coeff = 4.0 * (exag * p[(i, j)] - qnum[(i, j)] / z) * qnum[(i, j)];
                    for d in 0..cfg.out_dim {
                        grad[(i, d)] += coeff * (y[(i, d)] - y[(j, d)]);
                    }
                }
            }

            for i in 0..n {
                for d in 0..cfg.out_dim {
                    velocity[(i, d)] =
                        momentum * velocity[(i, d)] - cfg.learning_rate * grad[(i, d)];
                    y[(i, d)] += velocity[(i, d)];
                }
            }
            center(&mut y);
        }
        y
    }
}

/// Symmetrized, perplexity-calibrated joint affinities P.
fn joint_affinities(x: &Matrix, perplexity: f32) -> Matrix {
    let n = x.rows();
    // Pairwise squared distances in the input space.
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = x
                .row(i)
                .iter()
                .zip(x.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[(i, j)] = d;
            d2[(j, i)] = d;
        }
    }

    let target_entropy = perplexity.ln();
    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        // Binary search the precision β_i to hit the target entropy.
        let (mut lo, mut hi) = (1e-8f32, 1e8f32);
        let mut beta = 1.0f32;
        for _ in 0..60 {
            let (entropy, row) = row_affinities(&d2, i, beta);
            if (entropy - target_entropy).abs() < 1e-4 {
                for (j, v) in row.iter().enumerate() {
                    p[(i, j)] = *v;
                }
                break;
            }
            if entropy > target_entropy {
                lo = beta;
            } else {
                hi = beta;
            }
            beta = if hi >= 1e8 {
                beta * 2.0
            } else {
                0.5 * (lo + hi)
            };
            // Keep the latest row in case the loop exhausts.
            let (_, row) = row_affinities(&d2, i, beta);
            for (j, v) in row.iter().enumerate() {
                p[(i, j)] = *v;
            }
        }
    }

    // Symmetrize and normalize: p_ij = (p_i|j + p_j|i) / 2N, floored.
    let mut joint = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                joint[(i, j)] = ((p[(i, j)] + p[(j, i)]) / (2.0 * n as f32)).max(1e-12);
            }
        }
    }
    joint
}

/// Conditional affinities of row `i` at precision `beta`; returns (entropy, row).
fn row_affinities(d2: &Matrix, i: usize, beta: f32) -> (f32, Vec<f32>) {
    let n = d2.rows();
    let mut row = vec![0.0f32; n];
    let mut sum = 0.0f32;
    for j in 0..n {
        if j != i {
            let v = (-beta * d2[(i, j)]).exp();
            row[j] = v;
            sum += v;
        }
    }
    let sum = sum.max(1e-20);
    let mut entropy = 0.0f32;
    for (j, item) in row.iter_mut().enumerate() {
        *item /= sum;
        if j != i && *item > 1e-20 {
            entropy -= *item * item.ln();
        }
    }
    (entropy, row)
}

fn center(y: &mut Matrix) {
    let (n, d) = y.shape();
    for dim in 0..d {
        let mean: f32 = (0..n).map(|i| y[(i, dim)]).sum::<f32>() / n as f32;
        for i in 0..n {
            y[(i, dim)] -= mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs in 10-D.
    fn blobs(n_per: usize) -> (Matrix, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut x = Matrix::zeros(3 * n_per, 10);
        let mut labels = Vec::new();
        for c in 0..3 {
            for i in 0..n_per {
                let row = x.row_mut(c * n_per + i);
                for (d, v) in row.iter_mut().enumerate() {
                    let noise = {
                        use rand::Rng;
                        rng.gen_range(-0.3..0.3)
                    };
                    *v = if d == c { 8.0 } else { 0.0 } + noise;
                }
                labels.push(c);
            }
        }
        (x, labels)
    }

    #[test]
    fn separates_well_separated_blobs() {
        let (x, labels) = blobs(15);
        let cfg = TsneConfig {
            iterations: 300,
            perplexity: 10.0,
            ..TsneConfig::default()
        };
        let y = Tsne::new(cfg).embed(&x);
        let purity = crate::cluster::neighborhood_purity(&y, &labels, 5);
        assert!(purity > 0.9, "blob purity {purity}");
    }

    #[test]
    fn output_shape_and_centering() {
        let (x, _) = blobs(5);
        let y = Tsne::new(TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        })
        .embed(&x);
        assert_eq!(y.shape(), (15, 2));
        let mean0: f32 = y.col(0).iter().sum::<f32>() / 15.0;
        assert!(mean0.abs() < 1e-3, "not centered: {mean0}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, _) = blobs(5);
        let cfg = TsneConfig {
            iterations: 30,
            ..TsneConfig::default()
        };
        let a = Tsne::new(cfg.clone()).embed(&x);
        let b = Tsne::new(cfg).embed(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn affinities_are_a_distribution() {
        let (x, _) = blobs(5);
        let p = joint_affinities(&x, 5.0);
        let total: f32 = p.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "joint affinities sum {total}");
        for i in 0..p.rows() {
            assert_eq!(p[(i, i)], 0.0);
        }
    }
}
