//! Pearson correlation (for the Fig 12d learned-vs-measured trend).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample is (numerically) constant.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 elements.
pub fn pearson(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let my: f64 = y.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a as f64 - mx;
        let dy = b as f64 - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx < 1e-18 || syy < 1e-18 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f32> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-6);
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_input_returns_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    proptest! {
        #[test]
        fn bounded_and_symmetric(
            xs in proptest::collection::vec(-100.0f32..100.0, 5..50),
            shift in -10.0f32..10.0,
        ) {
            let ys: Vec<f32> = xs.iter().rev().map(|v| v + shift).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0001..=1.0001).contains(&r));
            let r_sym = pearson(&ys, &xs);
            prop_assert!((r - r_sym).abs() < 1e-5);
        }
    }
}
