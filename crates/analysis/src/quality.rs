//! Embedding-quality metrics: silhouette score and t-SNE trustworthiness.
//!
//! The paper argues its embeddings are interpretable by *showing* a t-SNE
//! with visible suite clusters (Fig 7). These metrics make that claim
//! quantitative and testable: [`silhouette_score`] measures how well the
//! labeled clusters separate in any space, and [`trustworthiness`] measures
//! how faithfully a 2-D projection preserves the high-dimensional
//! neighborhoods it claims to display.

use pitot_linalg::Matrix;

/// Mean silhouette coefficient of labeled points, in `[-1, 1]`.
///
/// For each point: `s = (b − a) / max(a, b)` where `a` is the mean distance
/// to its own cluster and `b` the mean distance to the nearest other
/// cluster. Positive values mean clusters are separated; 0 means overlap.
/// Singleton clusters score 0, matching scikit-learn's convention.
///
/// # Panics
///
/// Panics if inputs mismatch, are empty, or fewer than 2 labels exist.
pub fn silhouette_score(points: &Matrix, labels: &[usize]) -> f32 {
    let n = points.rows();
    assert_eq!(labels.len(), n, "label/point mismatch");
    assert!(n >= 2, "need at least two points");
    let n_labels = labels.iter().max().map_or(0, |m| m + 1);
    let distinct = {
        let mut seen = vec![false; n_labels];
        for &l in labels {
            seen[l] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    assert!(distinct >= 2, "need at least two clusters");

    // Pairwise distances (n is small for embedding analyses).
    let dist = pairwise_distances(points);
    let cluster_size: Vec<usize> = (0..n_labels)
        .map(|c| labels.iter().filter(|&&l| l == c).count())
        .collect();

    let mut total = 0.0f64;
    for i in 0..n {
        let li = labels[i];
        if cluster_size[li] <= 1 {
            continue; // silhouette of a singleton is 0
        }
        let mut sums = vec![0.0f64; n_labels];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist[i * n + j] as f64;
            }
        }
        let a = sums[li] / (cluster_size[li] - 1) as f64;
        let b = (0..n_labels)
            .filter(|&c| c != li && cluster_size[c] > 0)
            .map(|c| sums[c] / cluster_size[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    (total / n as f64) as f32
}

/// Trustworthiness of a low-dimensional embedding (Venna & Kaski), in
/// `[0, 1]`: 1 means every embedded k-neighborhood consists of true
/// high-dimensional neighbors; chance level is ≈0.5.
///
/// # Panics
///
/// Panics if shapes mismatch or `k` is not in `[1, n/2)`.
pub fn trustworthiness(original: &Matrix, embedded: &Matrix, k: usize) -> f32 {
    let n = original.rows();
    assert_eq!(embedded.rows(), n, "point count mismatch");
    assert!(k >= 1 && 2 * k < n, "k {k} outside [1, n/2)");

    let d_orig = pairwise_distances(original);
    let d_emb = pairwise_distances(embedded);

    // Rank of j in i's original-space neighbor ordering (1 = closest).
    let mut rank = vec![0usize; n * n];
    for i in 0..n {
        let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| d_orig[i * n + a].total_cmp(&d_orig[i * n + b]));
        for (r, &j) in order.iter().enumerate() {
            rank[i * n + j] = r + 1;
        }
    }

    let mut penalty = 0.0f64;
    for i in 0..n {
        // k nearest in the embedding.
        let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| d_emb[i * n + a].total_cmp(&d_emb[i * n + b]));
        for &j in order.iter().take(k) {
            let r = rank[i * n + j];
            if r > k {
                penalty += (r - k) as f64;
            }
        }
    }
    let norm = 2.0 / (n as f64 * k as f64 * (2.0 * n as f64 - 3.0 * k as f64 - 1.0));
    (1.0 - norm * penalty) as f32
}

fn pairwise_distances(points: &Matrix) -> Vec<f32> {
    let n = points.rows();
    let mut d = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = euclidean(points.row(i), points.row(j));
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    d
}

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Two well-separated Gaussian blobs in `dim` dimensions.
    fn blobs(n_per: usize, dim: usize, sep: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 2 * n_per;
        let mut m = Matrix::zeros(n, dim);
        let mut labels = vec![0usize; n];
        for i in 0..n {
            let cluster = i / n_per;
            labels[i] = cluster;
            let row = m.row_mut(i);
            for v in row.iter_mut() {
                *v = rng.gen_range(-1.0f32..1.0);
            }
            row[0] += sep * cluster as f32;
        }
        (m, labels)
    }

    #[test]
    fn separated_blobs_score_high() {
        let (points, labels) = blobs(30, 4, 10.0, 0);
        let s = silhouette_score(&points, &labels);
        assert!(s > 0.7, "well-separated blobs scored {s}");
    }

    #[test]
    fn shuffled_labels_score_near_zero() {
        let (points, mut labels) = blobs(30, 4, 10.0, 1);
        // Alternate labels irrespective of geometry.
        for (i, l) in labels.iter_mut().enumerate() {
            *l = i % 2;
        }
        let s = silhouette_score(&points, &labels);
        assert!(s.abs() < 0.2, "random labels scored {s}");
    }

    #[test]
    fn tighter_clusters_score_higher() {
        let (wide, labels) = blobs(25, 4, 3.0, 2);
        let (tight, _) = blobs(25, 4, 12.0, 2);
        assert!(silhouette_score(&tight, &labels) > silhouette_score(&wide, &labels));
    }

    #[test]
    fn identity_embedding_is_fully_trustworthy() {
        let (points, _) = blobs(20, 5, 4.0, 3);
        let t = trustworthiness(&points, &points, 5);
        assert!((t - 1.0).abs() < 1e-6, "identity scored {t}");
    }

    #[test]
    fn scrambled_embedding_is_untrustworthy() {
        let (points, _) = blobs(20, 5, 4.0, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let scrambled = Matrix::randn(points.rows(), 2, &mut rng);
        let t = trustworthiness(&points, &scrambled, 5);
        assert!(t < 0.75, "random projection scored {t}");
    }

    #[test]
    fn faithful_projection_beats_random() {
        // Data lives on coordinates 0–1; projecting onto them is faithful.
        let (points, _) = blobs(25, 6, 6.0, 6);
        let faithful = {
            let mut m = Matrix::zeros(points.rows(), 2);
            for r in 0..points.rows() {
                m.row_mut(r)[0] = points.row(r)[0];
                m.row_mut(r)[1] = points.row(r)[1];
            }
            m
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let random = Matrix::randn(points.rows(), 2, &mut rng);
        let t_faithful = trustworthiness(&points, &faithful, 6);
        let t_random = trustworthiness(&points, &random, 6);
        assert!(
            t_faithful > t_random + 0.1,
            "faithful {t_faithful} vs random {t_random}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn silhouette_needs_two_clusters() {
        let (points, _) = blobs(10, 3, 1.0, 8);
        silhouette_score(&points, &vec![0; points.rows()]);
    }
}
