//! Rank correlations: Spearman's ρ and Kendall's τ.
//!
//! Fig 12d claims a *positive correlation* between the learned interference
//! norm ‖F_j‖₂ and the measured mean slowdown per platform. Pearson (already
//! in [`crate::correlation`]) is sensitive to the heavy-tailed slowdown
//! scale; rank correlations test the monotone-relationship claim directly
//! and are what the reproduction records in EXPERIMENTS.md alongside
//! Pearson.

/// Spearman rank correlation coefficient.
///
/// Ties receive average (fractional) ranks.
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 points are given.
pub fn spearman(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    crate::correlation::pearson(&rx, &ry)
}

/// Kendall's τ-b (tie-corrected).
///
/// # Panics
///
/// Panics if lengths differ or fewer than 2 points are given.
pub fn kendall_tau(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    assert!(n >= 2, "need at least two points");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // Tied in both: contributes to neither.
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if (dx > 0.0) == (dy > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    ((concordant - discordant) as f64 / denom) as f32
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn fractional_ranks(xs: &[f32]) -> Vec<f32> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average of ranks i+1..=j+1.
        let avg = (i + j + 2) as f32 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_monotone_is_one() {
        let x = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0f32, 100.0, 1000.0, 1e4, 1e5]; // nonlinear but monotone
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-6);
        assert!((kendall_tau(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reversed_is_minus_one() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let y = [4.0f32, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-6);
        assert!((kendall_tau(&x, &y) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = fractional_ranks(&[2.0, 1.0, 2.0, 3.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5, 4.0]);
    }

    #[test]
    fn rank_correlation_ignores_monotone_transforms() {
        let x = [0.5f32, 1.5, 0.1, 3.0, 2.2, 0.9];
        let y_lin: Vec<f32> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let y_exp: Vec<f32> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y_lin) - spearman(&x, &y_exp)).abs() < 1e-6);
        assert!((kendall_tau(&x, &y_lin) - kendall_tau(&x, &y_exp)).abs() < 1e-6);
    }

    #[test]
    fn constant_series_returns_zero_tau() {
        let x = [1.0f32, 1.0, 1.0];
        let y = [1.0f32, 2.0, 3.0];
        assert_eq!(kendall_tau(&x, &y), 0.0);
    }

    proptest! {
        #[test]
        fn correlations_are_bounded(
            xs in proptest::collection::vec(-100.0f32..100.0, 3..60),
            seed in 0u64..1000,
        ) {
            // Pair xs with a pseudo-random permutation-ish partner series.
            let ys: Vec<f32> = xs
                .iter()
                .enumerate()
                .map(|(i, &v)| v * ((seed as f32 * 0.37 + i as f32).sin()))
                .collect();
            let s = spearman(&xs, &ys);
            let t = kendall_tau(&xs, &ys);
            prop_assert!((-1.0001..=1.0001).contains(&s), "spearman {s}");
            prop_assert!((-1.0001..=1.0001).contains(&t), "tau {t}");
        }

        #[test]
        fn spearman_symmetric(xs in proptest::collection::vec(-10.0f32..10.0, 3..40)) {
            let ys: Vec<f32> = xs.iter().rev().copied().collect();
            let a = spearman(&xs, &ys);
            let b = spearman(&ys, &xs);
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
