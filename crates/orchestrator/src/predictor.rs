//! Runtime predictors: the oracle, the scaling baseline, and Pitot.
//!
//! A placement policy never sees the ground truth; it sees a
//! [`RuntimePredictor`] answering "how long would workload `i` take on
//! platform `j` while `K` runs there?" — optionally with an upper bound at a
//! target miscoverage. The three implementations span the design space the
//! experiments compare:
//!
//! - [`OraclePredictor`] cheats with the simulator's ground truth (the
//!   unachievable floor);
//! - [`ScalingPredictor`] uses only the log-linear difficulty×speed baseline,
//!   which is interference-blind (what a naive orchestrator would ship);
//! - [`PitotPredictor`] wraps a trained Pitot model and, when fitted with
//!   conformal bounds, exposes calibrated runtime budgets.

use pitot::{RuntimeBounds, ScalingBaseline, TowerCache, TrainedPitot};
use pitot_testbed::{Dataset, Observation, Testbed, MAX_INTERFERERS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;

/// Answers runtime queries for placement decisions.
///
/// Implementations must be deterministic *per query* in the orchestration
/// loop sense: repeated identical queries during one simulation may return
/// the same value (the oracle's Monte-Carlo bound is seeded per-predictor).
pub trait RuntimePredictor {
    /// Point estimate, in seconds, of `workload` on `platform` while the
    /// workloads in `interferers` run there simultaneously.
    fn predict_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64;

    /// Runtime budget, in seconds, sufficient with the predictor's configured
    /// confidence. Defaults to the point estimate (no uncertainty model).
    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        self.predict_s(workload, platform, interferers)
    }

    /// Short display name for reports.
    fn name(&self) -> &str;
}

/// Ground-truth predictor: clean runtime plus the true interference slowdown.
///
/// Its bound is the empirical `1 − ε` quantile over Monte-Carlo rollouts of
/// the true noise model — the best any predictor could do. Only simulations
/// may construct this; prediction code cannot reach the ground truth.
#[derive(Debug)]
pub struct OraclePredictor<'a> {
    testbed: &'a Testbed,
    epsilon: f32,
    mc_samples: usize,
    rng: RefCell<ChaCha8Rng>,
}

impl<'a> OraclePredictor<'a> {
    /// Oracle with a 90%-confidence bound.
    pub fn new(testbed: &'a Testbed) -> Self {
        Self::with_epsilon(testbed, 0.1)
    }

    /// Oracle bounding at miscoverage `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn with_epsilon(testbed: &'a Testbed, epsilon: f32) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        Self {
            testbed,
            epsilon,
            mc_samples: 64,
            rng: RefCell::new(ChaCha8Rng::seed_from_u64(0x0AC1_E0AC)),
        }
    }

    fn clean_log(&self, workload: u32, platform: usize, interferers: &[u32]) -> f32 {
        let ws = self.testbed.workloads();
        let w = &ws[workload as usize];
        let others: Vec<&pitot_testbed::Workload> =
            interferers.iter().map(|&k| &ws[k as usize]).collect();
        let truth = self.testbed.truth();
        truth.clean_log_runtime(w, workload as usize, platform)
            + truth.interference_log_slowdown(w, &others, platform)
    }
}

impl RuntimePredictor for OraclePredictor<'_> {
    fn predict_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        self.clean_log(workload, platform, interferers).exp() as f64
    }

    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        let ws = self.testbed.workloads();
        let w = &ws[workload as usize];
        let others: Vec<&pitot_testbed::Workload> =
            interferers.iter().map(|&k| &ws[k as usize]).collect();
        let others_idx: Vec<usize> = interferers.iter().map(|&k| k as usize).collect();
        let truth = self.testbed.truth();
        let rng = &mut *self.rng.borrow_mut();
        let mut samples: Vec<f32> = (0..self.mc_samples)
            .map(|_| {
                truth.sample_log_runtime(w, workload as usize, &others, &others_idx, platform, rng)
            })
            .collect();
        samples.sort_by(f32::total_cmp);
        let rank = (((1.0 - self.epsilon) * self.mc_samples as f32).ceil() as usize)
            .clamp(1, self.mc_samples);
        samples[rank - 1].exp() as f64
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

/// Interference-blind predictor from the log-linear scaling baseline alone
/// (paper Eq 2): what an orchestrator would use if it only kept per-workload
/// and per-platform geometric means.
#[derive(Debug, Clone)]
pub struct ScalingPredictor {
    scaling: ScalingBaseline,
    /// Multiplicative safety factor applied by [`RuntimePredictor::bound_s`].
    safety: f64,
}

impl ScalingPredictor {
    /// Wraps a fitted scaling baseline with no safety margin.
    pub fn new(scaling: ScalingBaseline) -> Self {
        Self {
            scaling,
            safety: 1.0,
        }
    }

    /// Adds the classic ad-hoc overprovisioning factor (e.g. `2.0` doubles
    /// every budget) — the practice calibrated bounds replace.
    ///
    /// # Panics
    ///
    /// Panics if `safety < 1`.
    pub fn with_safety_factor(scaling: ScalingBaseline, safety: f64) -> Self {
        assert!(safety >= 1.0, "safety factor must be ≥ 1");
        Self { scaling, safety }
    }
}

impl RuntimePredictor for ScalingPredictor {
    fn predict_s(&self, workload: u32, platform: usize, _interferers: &[u32]) -> f64 {
        self.scaling.log_baseline(workload as usize, platform).exp() as f64
    }

    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        self.safety * self.predict_s(workload, platform, interferers)
    }

    fn name(&self) -> &str {
        "scaling-baseline"
    }
}

/// Pitot-backed predictor with optional conformal bounds.
///
/// Tower outputs are computed once at construction and reused for every
/// query, so per-placement cost is a handful of dot products (the paper's
/// ≈400 kFLOP inference cost is dominated by the towers, which are shared
/// across queries here).
pub struct PitotPredictor<'a> {
    trained: &'a TrainedPitot,
    towers: TowerCache,
    bounds: Option<RuntimeBounds>,
    name: String,
}

impl<'a> PitotPredictor<'a> {
    /// Point-prediction-only predictor (bounds fall back to the median head).
    pub fn new(trained: &'a TrainedPitot, dataset: &Dataset) -> Self {
        Self {
            trained,
            towers: trained.tower_cache(dataset),
            bounds: None,
            name: "pitot".to_string(),
        }
    }

    /// Predictor whose [`RuntimePredictor::bound_s`] answers with calibrated
    /// conformal budgets.
    pub fn with_bounds(
        trained: &'a TrainedPitot,
        dataset: &Dataset,
        bounds: RuntimeBounds,
    ) -> Self {
        Self {
            trained,
            towers: trained.tower_cache(dataset),
            bounds: Some(bounds),
            name: "pitot+conformal".to_string(),
        }
    }

    fn query(&self, workload: u32, platform: usize, interferers: &[u32]) -> Vec<f32> {
        let obs = Observation {
            workload,
            platform: platform as u32,
            interferers: interferers.to_vec(),
            runtime_s: 1.0, // unused by prediction
        };
        self.trained
            .predict_log_runtime_cached(&self.towers, &[&obs])
            .into_iter()
            .map(|head| head[0])
            .collect()
    }
}

impl RuntimePredictor for PitotPredictor<'_> {
    fn predict_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        self.query(workload, platform, interferers)[0].exp() as f64
    }

    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        let heads = self.query(workload, platform, interferers);
        match &self.bounds {
            Some(b) => {
                // Pools were calibrated per interference count; deeper
                // co-location than the training envelope reuses the deepest
                // pool.
                let pool = interferers.len().min(MAX_INTERFERERS);
                b.bound_log_from_heads(&heads, pool).exp() as f64
            }
            None => heads[0].exp() as f64,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for PitotPredictor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PitotPredictor")
            .field("name", &self.name)
            .field("has_bounds", &self.bounds.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot::{train, PitotConfig};
    use pitot_conformal::HeadSelection;
    use pitot_testbed::{split::Split, TestbedConfig};

    fn testbed() -> Testbed {
        Testbed::generate(&TestbedConfig::small())
    }

    #[test]
    fn oracle_prediction_matches_truth() {
        let tb = testbed();
        let oracle = OraclePredictor::new(&tb);
        let truth = tb.truth();
        let w = &tb.workloads()[0];
        let expected = truth.clean_log_runtime(w, 0, 0).exp() as f64;
        let got = oracle.predict_s(0, 0, &[]);
        assert!((got - expected).abs() / expected < 1e-5);
    }

    #[test]
    fn oracle_bound_exceeds_prediction() {
        let tb = testbed();
        let oracle = OraclePredictor::with_epsilon(&tb, 0.05);
        for w in 0..5u32 {
            let p = oracle.predict_s(w, 0, &[1, 2]);
            let b = oracle.bound_s(w, 0, &[1, 2]);
            assert!(b >= p * 0.8, "bound {b} far below prediction {p}");
        }
    }

    #[test]
    fn oracle_sees_interference() {
        let tb = testbed();
        let oracle = OraclePredictor::new(&tb);
        // Find a pair with nonzero slowdown somewhere.
        let mut seen_slowdown = false;
        'outer: for p in 0..tb.platforms().len() {
            for w in 0..tb.workloads().len().min(20) as u32 {
                let solo = oracle.predict_s(w, p, &[]);
                let busy = oracle.predict_s(w, p, &[(w + 1) % 10, (w + 2) % 10, (w + 3) % 10]);
                if busy > solo * 1.05 {
                    seen_slowdown = true;
                    break 'outer;
                }
            }
        }
        assert!(seen_slowdown, "oracle never showed interference slowdown");
    }

    #[test]
    fn scaling_predictor_is_interference_blind() {
        let tb = testbed();
        let ds = tb.collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let scaling = ScalingBaseline::fit(&ds, &split.train);
        let pred = ScalingPredictor::new(scaling);
        assert_eq!(pred.predict_s(0, 0, &[]), pred.predict_s(0, 0, &[1, 2, 3]));
    }

    #[test]
    fn safety_factor_scales_bounds() {
        let tb = testbed();
        let ds = tb.collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let scaling = ScalingBaseline::fit(&ds, &split.train);
        let plain = ScalingPredictor::new(scaling.clone());
        let padded = ScalingPredictor::with_safety_factor(scaling, 2.0);
        let b0 = plain.bound_s(3, 1, &[]);
        let b2 = padded.bound_s(3, 1, &[]);
        assert!((b2 / b0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pitot_predictor_matches_trained_model() {
        let tb = testbed();
        let ds = tb.collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 120;
        let trained = train(&ds, &split, &cfg);
        let pred = PitotPredictor::new(&trained, &ds);

        // Query matching a real observation must agree with the dataset path.
        let oi = split.test[0];
        let o = &ds.observations[oi];
        let expected = trained.predict_runtime(&ds, &[oi])[0] as f64;
        let got = pred.predict_s(o.workload, o.platform as usize, &o.interferers);
        assert!(
            (got - expected).abs() / expected < 1e-4,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn pitot_bounds_dominate_median_for_busy_platforms() {
        let tb = testbed();
        let ds = tb.collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = pitot::Objective::Quantiles(vec![0.5, 0.9, 0.95]);
        cfg.steps = 250;
        let trained = train(&ds, &split, &cfg);
        let bounds = trained.fit_bounds(&ds, 0.1, HeadSelection::TightestOnValidation);
        let pred = PitotPredictor::with_bounds(&trained, &ds, bounds);
        let mut above = 0usize;
        let mut total = 0usize;
        for w in 0..20u32 {
            let point = pred.predict_s(w, 0, &[21, 22]);
            let bound = pred.bound_s(w, 0, &[21, 22]);
            total += 1;
            if bound >= point {
                above += 1;
            }
        }
        assert!(
            above * 10 >= total * 8,
            "bounds above median only {above}/{total}"
        );
    }
}
