//! Placement policies: from load balancing to deadline-aware budgeting.
//!
//! [`PlacementPolicy`] is the pluggable decision interface the simulator
//! drives: given a job, a [`ClusterView`], and a [`RuntimePredictor`], pick
//! a platform. The built-in [`BaselinePolicy`] family covers the spectrum of
//! how much information a policy uses:
//!
//! - [`BaselinePolicy::random`] ignores everything (the lower bar);
//! - [`BaselinePolicy::least_loaded`] balances co-location counts without
//!   predictions (what naive orchestrators do);
//! - [`BaselinePolicy::greedy_fastest`] minimizes the *predicted* runtime
//!   given current co-residents — latency-optimal if predictions were exact;
//! - [`BaselinePolicy::deadline_aware`] uses runtime *bounds*: it only
//!   considers platforms where the bound fits the job's deadline and where
//!   adding the job does not push any co-resident's bounded completion past
//!   its own deadline, then picks the feasible platform with the smallest
//!   bound. With Pitot's conformal bounds at miscoverage ε, each accepted
//!   placement misses its deadline with probability ≲ ε.
//!
//! Richer risk-scoring policies (interference-delta-aware conformal
//! placement) live in the `pitot-sched` crate and implement the same trait.
//!
//! Contract: a policy returns `None` only when no platform has a free slot.
//! If nothing is feasible the deadline-aware policy degrades to the smallest
//! bound ("least bad") rather than stalling the queue.

use crate::job::Job;
use crate::predictor::RuntimePredictor;
use crate::sim::ClusterView;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A pluggable placement strategy.
///
/// Implementations are stateful (`&mut self`) so randomized policies can
/// carry their RNG and tracing wrappers can record decisions; determinism is
/// still required — the same sequence of `place` calls on a fresh policy
/// must yield the same decisions, independent of wall clock, thread count,
/// or allocation addresses. The simulator relies on this to keep whole runs
/// bitwise-reproducible.
///
/// Contract: return `None` only when no candidate platform has a free slot
/// (see [`ClusterView::with_capacity`]); returning `None` while the cluster
/// is idle deadlocks the pending queue and panics the simulator.
pub trait PlacementPolicy {
    /// Chooses a platform for `job`, or `None` if every platform is full.
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize>;

    /// Display name (used in reports and the simulator's deadlock panic).
    fn name(&self) -> &str;
}

// Boxed policies are policies too, so `Box<dyn PlacementPolicy>` lineups
// compose with generic wrappers (e.g. tracing) without unboxing.
impl<P: PlacementPolicy + ?Sized> PlacementPolicy for Box<P> {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        (**self).place(job, view, predictor)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The placement strategies compared in the orchestration experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Uniformly random platform with a free slot.
    Random,
    /// Fewest co-located jobs, ties broken by platform index.
    LeastLoaded,
    /// Smallest predicted runtime given current co-residents.
    GreedyFastest,
    /// Smallest *bound* among platforms where the placement is
    /// deadline-feasible for the job and all co-residents.
    DeadlineAware,
}

impl PolicyKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Random => "random",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::GreedyFastest => "greedy-fastest",
            PolicyKind::DeadlineAware => "deadline-aware",
        }
    }
}

/// The built-in baseline policies (randomized kinds carry their RNG).
#[derive(Debug, Clone)]
pub struct BaselinePolicy {
    kind: PolicyKind,
    rng: ChaCha8Rng,
}

impl BaselinePolicy {
    /// Uniformly random placement.
    pub fn random(seed: u64) -> Self {
        Self {
            kind: PolicyKind::Random,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Fewest-co-residents placement.
    pub fn least_loaded() -> Self {
        Self {
            kind: PolicyKind::LeastLoaded,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// Minimum-predicted-runtime placement.
    pub fn greedy_fastest() -> Self {
        Self {
            kind: PolicyKind::GreedyFastest,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// Bound-driven deadline-feasible placement.
    pub fn deadline_aware() -> Self {
        Self {
            kind: PolicyKind::DeadlineAware,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// Policy constructor from a kind (random policies get `seed`).
    pub fn of_kind(kind: PolicyKind, seed: u64) -> Self {
        Self {
            kind,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The policy's strategy.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Deadline-aware placement: feasibility for the new job *and* for every
    /// job it would slow down, then smallest bound among the feasible.
    fn place_deadline_aware(
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        let mut best_feasible: Option<(f64, usize)> = None;
        let mut best_any: Option<(f64, usize)> = None;

        for p in view.with_capacity() {
            let load = &view.platforms[p];
            let bound = predictor.bound_s(job.workload, p, &load.running);
            if best_any.is_none_or(|(b, _)| bound < b) {
                best_any = Some((bound, p));
            }

            // The job itself must fit its budget…
            if bound > job.deadline_s {
                continue;
            }
            // …and no co-resident may be pushed past its own deadline. The
            // co-resident's remaining runtime is approximated by its full
            // bounded runtime under the new set, scaled by remaining work.
            let mut set_with_new: Vec<u32> = load.running.clone();
            set_with_new.push(job.workload);
            let disturbs = load.running.iter().enumerate().any(|(slot, &other)| {
                let others: Vec<u32> = set_with_new
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(s, _)| s != slot)
                    .map(|(_, w)| w)
                    .collect();
                let full_bound = predictor.bound_s(other, p, &others);
                let remaining = full_bound * load.remaining_frac[slot];
                view.now_s + remaining > load.due_s[slot]
            });
            if disturbs {
                continue;
            }
            if best_feasible.is_none_or(|(b, _)| bound < b) {
                best_feasible = Some((bound, p));
            }
        }

        best_feasible.or(best_any).map(|(_, p)| p)
    }
}

impl PlacementPolicy for BaselinePolicy {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        let candidates = view.with_capacity();
        if candidates.is_empty() {
            return None;
        }
        match self.kind {
            PolicyKind::Random => Some(candidates[self.rng.gen_range(0..candidates.len())]),
            PolicyKind::LeastLoaded => candidates
                .into_iter()
                .min_by_key(|&p| view.platforms[p].running.len()),
            PolicyKind::GreedyFastest => candidates.into_iter().min_by(|&a, &b| {
                let ra = predictor.predict_s(job.workload, a, &view.platforms[a].running);
                let rb = predictor.predict_s(job.workload, b, &view.platforms[b].running);
                ra.total_cmp(&rb)
            }),
            PolicyKind::DeadlineAware => Self::place_deadline_aware(job, view, predictor),
        }
    }

    fn name(&self) -> &str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PlatformLoad;

    /// A predictor whose per-platform runtimes are table-driven, for policy
    /// unit tests that need exact control.
    struct TablePredictor {
        /// `runtime[p]` returned for every workload; interference adds 1s per
        /// interferer.
        runtime: Vec<f64>,
        /// Extra margin added by `bound_s`.
        margin: f64,
    }

    impl RuntimePredictor for TablePredictor {
        fn predict_s(&self, _w: u32, p: usize, interferers: &[u32]) -> f64 {
            self.runtime[p] + interferers.len() as f64
        }
        fn bound_s(&self, w: u32, p: usize, interferers: &[u32]) -> f64 {
            self.predict_s(w, p, interferers) + self.margin
        }
        fn name(&self) -> &str {
            "table"
        }
    }

    fn empty_view(n: usize) -> ClusterView {
        ClusterView {
            now_s: 0.0,
            platforms: (0..n)
                .map(|_| PlatformLoad {
                    running: vec![],
                    remaining_frac: vec![],
                    due_s: vec![],
                    free_slots: 4,
                })
                .collect(),
        }
    }

    fn job(deadline: f64) -> Job {
        Job {
            id: 0,
            workload: 0,
            arrival_s: 0.0,
            deadline_s: deadline,
        }
    }

    #[test]
    fn greedy_picks_fastest_platform() {
        let pred = TablePredictor {
            runtime: vec![5.0, 1.0, 3.0],
            margin: 0.0,
        };
        let mut policy = BaselinePolicy::greedy_fastest();
        assert_eq!(policy.place(&job(10.0), &empty_view(3), &pred), Some(1));
    }

    #[test]
    fn greedy_accounts_for_interference_via_predictor() {
        let pred = TablePredictor {
            runtime: vec![1.0, 1.5],
            margin: 0.0,
        };
        let mut view = empty_view(2);
        // Platform 0 is nominally faster but has two co-residents (+2s).
        view.platforms[0].running = vec![7, 8];
        view.platforms[0].remaining_frac = vec![0.5, 0.5];
        view.platforms[0].due_s = vec![100.0, 100.0];
        let mut policy = BaselinePolicy::greedy_fastest();
        assert_eq!(policy.place(&job(10.0), &view, &pred), Some(1));
    }

    #[test]
    fn least_loaded_balances() {
        let pred = TablePredictor {
            runtime: vec![1.0, 1.0],
            margin: 0.0,
        };
        let mut view = empty_view(2);
        view.platforms[0].running = vec![3];
        view.platforms[0].remaining_frac = vec![0.2];
        view.platforms[0].due_s = vec![9.0];
        let mut policy = BaselinePolicy::least_loaded();
        assert_eq!(policy.place(&job(10.0), &view, &pred), Some(1));
    }

    #[test]
    fn deadline_aware_respects_job_budget() {
        // Platform 0 is fast but its bound misses the deadline; platform 1 is
        // slower yet feasible.
        let pred = TablePredictor {
            runtime: vec![4.0, 5.0],
            margin: 3.0,
        };
        // deadline 6: bound on p0 = 7 (infeasible), p1 = 8 (infeasible) →
        // falls back to smallest bound (p0).
        let mut policy = BaselinePolicy::deadline_aware();
        assert_eq!(policy.place(&job(6.0), &empty_view(2), &pred), Some(0));
        // deadline 7.5: p0 bound 7 feasible, p1 bound 8 infeasible.
        assert_eq!(policy.place(&job(7.5), &empty_view(2), &pred), Some(0));
    }

    #[test]
    fn deadline_aware_protects_co_residents() {
        let pred = TablePredictor {
            runtime: vec![1.0, 2.0],
            margin: 0.0,
        };
        let mut view = empty_view(2);
        // Platform 0 hosts a job that due in 1.1s with full work remaining;
        // adding ours would make its bound 1×(1+1 interferer)=2 > 1.1.
        view.platforms[0].running = vec![5];
        view.platforms[0].remaining_frac = vec![1.0];
        view.platforms[0].due_s = vec![1.1];
        let mut policy = BaselinePolicy::deadline_aware();
        // Our job fits both (deadline 10), but platform 0 would break job 5.
        assert_eq!(policy.place(&job(10.0), &view, &pred), Some(1));
    }

    #[test]
    fn all_policies_return_none_when_full() {
        let pred = TablePredictor {
            runtime: vec![1.0],
            margin: 0.0,
        };
        let mut view = empty_view(1);
        view.platforms[0].free_slots = 0;
        for mut policy in [
            BaselinePolicy::random(0),
            BaselinePolicy::least_loaded(),
            BaselinePolicy::greedy_fastest(),
            BaselinePolicy::deadline_aware(),
        ] {
            assert_eq!(policy.place(&job(1.0), &view, &pred), None);
        }
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let pred = TablePredictor {
            runtime: vec![1.0; 8],
            margin: 0.0,
        };
        let view = empty_view(8);
        let picks = |seed| {
            let mut p = BaselinePolicy::random(seed);
            (0..20)
                .map(|_| p.place(&job(1.0), &view, &pred).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
    }
}
