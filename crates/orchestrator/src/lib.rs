//! Deadline-aware edge orchestration on top of Pitot runtime predictions.
//!
//! The paper's introduction motivates runtime prediction with edge
//! orchestration: "an industrial controller on a manufacturing line may need
//! to complete within a given timeframe with high probability", and
//! orchestration frameworks "aim to ensure workload performance by placing
//! them on different available platforms" (Sec 1). This crate closes that
//! loop: it implements the placement problem those frameworks solve and shows
//! how point predictions versus calibrated bounds change placement quality.
//!
//! The pieces:
//!
//! - [`Job`]s arrive over time, each a workload from the testbed catalog with
//!   a completion deadline ([`JobStream`] generates Poisson-ish arrivals with
//!   feasible-but-tight deadlines);
//! - a [`RuntimePredictor`] answers "how long would workload `i` take on
//!   platform `j` next to the set `K`?" — either cheating
//!   ([`OraclePredictor`]), via the scaling baseline alone
//!   ([`ScalingPredictor`]), or via a trained Pitot model with optional
//!   conformal bounds ([`PitotPredictor`]);
//! - a [`PlacementPolicy`] (the pluggable trait) turns predictions into
//!   placement decisions; [`BaselinePolicy`] ships the built-in family
//!   (random / least-loaded / greedy-fastest / deadline-aware), and the
//!   `pitot-sched` crate adds conformal risk-scoring policies;
//! - [`ClusterSim`] replays the stream against the testbed's ground truth
//!   with a rate-based interference model: co-located jobs slow each other
//!   down exactly as the data-collection physics dictate, so a policy that
//!   ignores interference pays for it;
//! - [`SimReport`] aggregates deadline violations, response times, and
//!   utilization;
//! - [`SiteFault`] windows ([`ClusterSim::with_site_faults`]) schedule
//!   fail-stop platform outages mid-run: running jobs are killed and
//!   re-queued (counted as [`SimReport::preemptions`]), and the platform
//!   offers no slots until its restore time — the cluster-side half of the
//!   fault-injection story (`pitot_serve::FaultPlan` is the serving half).
//!
//! The headline experiment (`pitot-repro orchestration`): a deadline-aware
//! policy driven by Pitot's conformal bounds at miscoverage ε keeps the
//! violation rate near ε while sustaining far higher goodput than
//! interference-blind greedy placement.
//!
//! # Examples
//!
//! ```
//! use pitot_orchestrator::{BaselinePolicy, ClusterSim, JobStream, OraclePredictor};
//! use pitot_testbed::{Testbed, TestbedConfig};
//!
//! let testbed = Testbed::generate(&TestbedConfig::small());
//! let jobs = JobStream::generate(&testbed, 50, 4.0, 0);
//! let oracle = OraclePredictor::new(&testbed);
//! let mut sim = ClusterSim::new(&testbed);
//! let report = sim.run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
//! assert_eq!(report.completed, 50);
//! ```
//!
//! For the *online* story — completions streaming back into a predictor
//! that recalibrates mid-run — see [`ClusterSim::run_with_observer`] and
//! the `pitot-serve` crate built on top of it.

// Every public item in this crate is part of the documented orchestration
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod job;
mod policy;
mod predictor;
mod report;
mod sim;

pub use job::{Job, JobStream};
pub use policy::{BaselinePolicy, PlacementPolicy, PolicyKind};
pub use predictor::{OraclePredictor, PitotPredictor, RuntimePredictor, ScalingPredictor};
pub use report::{PolicyComparison, SimReport};
pub use sim::{ClusterSim, ClusterView, PlatformLoad, RunningJob, SiteFault, DEFAULT_CAPACITY};
