//! Simulation outcome aggregation.

use crate::job::Job;
use serde::{Deserialize, Serialize};

/// Outcome of one completed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The submitted job.
    pub job: Job,
    /// Platform it ran on.
    pub platform: usize,
    /// Absolute completion time.
    pub completed_s: f64,
    /// Completion minus arrival.
    pub response_s: f64,
    /// Whether the deadline was missed.
    pub violated: bool,
}

impl JobOutcome {
    /// Builds an outcome from the completion time.
    pub fn new(job: Job, platform: usize, completed_s: f64) -> Self {
        let response_s = completed_s - job.arrival_s;
        let violated = completed_s > job.due_s() + 1e-9;
        Self {
            job,
            platform,
            completed_s,
            response_s,
            violated,
        }
    }

    /// Slack at completion (positive = finished early).
    pub fn slack_s(&self) -> f64 {
        self.job.due_s() - self.completed_s
    }
}

/// Aggregate metrics for one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Number of jobs that completed.
    pub completed: usize,
    /// Number of deadline violations.
    pub violations: usize,
    /// Mean response time (completion − arrival) in seconds.
    pub mean_response_s: f64,
    /// 99th-percentile response time in seconds.
    pub p99_response_s: f64,
    /// Mean completion slack in seconds (positive = early).
    pub mean_slack_s: f64,
    /// Busy-platform-time over total platform-time.
    pub utilization: f64,
    /// Time of the last completion.
    pub makespan_s: f64,
    /// Completed jobs per second of makespan.
    pub throughput: f64,
    /// Jobs killed and re-queued by a site failure
    /// ([`crate::ClusterSim::with_site_faults`]); zero in fault-free runs.
    #[serde(default)]
    pub preemptions: usize,
    /// Per-job outcomes (arrival order not guaranteed).
    pub outcomes: Vec<JobOutcome>,
}

impl SimReport {
    /// Aggregates per-job outcomes into a report.
    pub fn from_outcomes(
        outcomes: Vec<JobOutcome>,
        makespan_s: f64,
        busy_platform_time: f64,
        n_platforms: usize,
    ) -> Self {
        let completed = outcomes.len();
        let violations = outcomes.iter().filter(|o| o.violated).count();
        let mean = |f: &dyn Fn(&JobOutcome) -> f64| {
            if completed == 0 {
                0.0
            } else {
                outcomes.iter().map(f).sum::<f64>() / completed as f64
            }
        };
        let mean_response_s = mean(&|o| o.response_s);
        let mean_slack_s = mean(&|o| o.slack_s());
        let mut responses: Vec<f64> = outcomes.iter().map(|o| o.response_s).collect();
        responses.sort_by(f64::total_cmp);
        let p99_response_s = if responses.is_empty() {
            0.0
        } else {
            responses
                [((responses.len() as f64 * 0.99).ceil() as usize).clamp(1, responses.len()) - 1]
        };
        let platform_time = makespan_s * n_platforms as f64;
        Self {
            completed,
            violations,
            mean_response_s,
            p99_response_s,
            mean_slack_s,
            utilization: if platform_time > 0.0 {
                busy_platform_time / platform_time
            } else {
                0.0
            },
            makespan_s,
            throughput: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            preemptions: 0,
            outcomes,
        }
    }

    /// Fraction of completed jobs that missed their deadline.
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.violations as f64 / self.completed as f64
        }
    }
}

/// Named simulation results, for experiment tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyComparison {
    rows: Vec<(String, SimReport)>,
}

impl PolicyComparison {
    /// Empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named run.
    pub fn push(&mut self, label: impl Into<String>, report: SimReport) {
        self.rows.push((label.into(), report));
    }

    /// The collected rows.
    pub fn rows(&self) -> &[(String, SimReport)] {
        &self.rows
    }

    /// Renders a fixed-width comparison table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<34} {:>9} {:>10} {:>12} {:>12} {:>8}\n",
            "policy/predictor", "completed", "violations", "viol. rate", "mean resp", "util"
        );
        for (label, r) in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>9} {:>10} {:>11.1}% {:>11.2}s {:>7.1}%\n",
                label,
                r.completed,
                r.violations,
                100.0 * r.violation_rate(),
                r.mean_response_s,
                100.0 * r.utilization,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, arrival: f64, deadline: f64, completed: f64) -> JobOutcome {
        JobOutcome::new(
            Job {
                id,
                workload: 0,
                arrival_s: arrival,
                deadline_s: deadline,
            },
            0,
            completed,
        )
    }

    #[test]
    fn violations_counted_exactly() {
        let outcomes = vec![
            outcome(0, 0.0, 1.0, 0.5),  // ok
            outcome(1, 0.0, 1.0, 1.5),  // violated
            outcome(2, 1.0, 2.0, 2.9),  // ok (due at 3.0)
            outcome(3, 1.0, 0.5, 10.0), // violated
        ];
        let r = SimReport::from_outcomes(outcomes, 10.0, 5.0, 2);
        assert_eq!(r.completed, 4);
        assert_eq!(r.violations, 2);
        assert!((r.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = SimReport::from_outcomes(vec![], 0.0, 0.0, 4);
        assert_eq!(r.completed, 0);
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn p99_is_near_the_max() {
        let outcomes: Vec<JobOutcome> = (0..100)
            .map(|i| outcome(i, 0.0, 1000.0, (i + 1) as f64))
            .collect();
        let r = SimReport::from_outcomes(outcomes, 100.0, 50.0, 1);
        assert!((r.p99_response_s - 99.0).abs() < 1e-9);
        assert!((r.mean_response_s - 50.5).abs() < 1e-9);
    }

    #[test]
    fn slack_sign_matches_violation() {
        let ok = outcome(0, 0.0, 2.0, 1.0);
        assert!(ok.slack_s() > 0.0 && !ok.violated);
        let late = outcome(1, 0.0, 2.0, 3.0);
        assert!(late.slack_s() < 0.0 && late.violated);
    }

    #[test]
    fn comparison_table_renders_all_rows() {
        let mut cmp = PolicyComparison::new();
        cmp.push(
            "a",
            SimReport::from_outcomes(vec![outcome(0, 0.0, 1.0, 0.5)], 1.0, 0.5, 1),
        );
        cmp.push("b", SimReport::from_outcomes(vec![], 0.0, 0.0, 1));
        let table = cmp.to_table();
        assert!(table.contains("a") && table.contains("b"));
        assert_eq!(table.lines().count(), 3);
    }
}
