//! Event-driven cluster simulation with rate-based interference.
//!
//! Jobs execute according to the testbed's ground-truth physics: a job's
//! *work* is its measured isolation runtime on the platform it was placed on
//! (including measurement noise), and while co-located with the set `K` it
//! progresses at rate `exp(−slowdown(w, K, p))` — the same contention model
//! that generated the training data. Placement policies therefore live in
//! exactly the world Pitot was trained to predict: a policy that ignores
//! interference overcommits platforms and watches deadlines slip.
//!
//! The simulation alternates between two events — the next job arrival and
//! the earliest completion under current progress rates — advancing all
//! remaining-work counters between events. Jobs that cannot be placed on
//! arrival (every platform at capacity) wait in a FIFO queue that drains on
//! completions.

use crate::job::{Job, JobStream};
use crate::policy::PlacementPolicy;
use crate::predictor::RuntimePredictor;
use crate::report::{JobOutcome, SimReport};
use pitot_testbed::{Observation, Testbed, Workload, MAX_INTERFERERS};
use std::collections::VecDeque;

/// Default per-platform co-location capacity. Matches the data-collection
/// envelope (4-way sets: one primary + [`pitot_testbed::MAX_INTERFERERS`]
/// interferers), so predictors are never asked to extrapolate beyond the
/// interference arities they saw.
pub const DEFAULT_CAPACITY: usize = 4;

/// A scheduled failure window for one platform: the platform goes dark at
/// `at_s` (every job running there is killed and re-queued) and accepts
/// placements again from `restore_s` on. Pure data on the simulated clock —
/// the same plan always produces the same run.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteFault {
    /// Platform index that fails.
    pub platform: usize,
    /// Simulated time the failure begins.
    pub at_s: f64,
    /// Simulated time the platform accepts jobs again (must exceed `at_s`).
    pub restore_s: f64,
}

/// A job currently executing on some platform.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The submitted job.
    pub job: Job,
    /// Remaining work in seconds-of-solo-execution on this platform.
    pub remaining_work: f64,
    /// Total work assigned at placement.
    pub total_work: f64,
    /// Absolute time the job started executing.
    pub started_s: f64,
    /// Workloads co-resident on the platform when this job was placed — the
    /// interferer set the placement decision was predicted against, and the
    /// one an observation logged at completion reports.
    pub interferers_at_start: Vec<u32>,
}

impl RunningJob {
    /// Fraction of the job's work still outstanding, in `[0, 1]`.
    pub fn remaining_frac(&self) -> f64 {
        if self.total_work <= 0.0 {
            0.0
        } else {
            (self.remaining_work / self.total_work).clamp(0.0, 1.0)
        }
    }
}

/// Per-platform load snapshot exposed to placement policies.
#[derive(Debug, Clone)]
pub struct PlatformLoad {
    /// Workload indices currently running on the platform.
    pub running: Vec<u32>,
    /// Remaining-work fraction of each running job (parallel to `running`).
    pub remaining_frac: Vec<f64>,
    /// Absolute due time of each running job (parallel to `running`).
    pub due_s: Vec<f64>,
    /// Free co-location slots.
    pub free_slots: usize,
}

/// Cluster snapshot at a placement decision.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Current simulation time.
    pub now_s: f64,
    /// One entry per platform.
    pub platforms: Vec<PlatformLoad>,
}

impl ClusterView {
    /// Indices of platforms with at least one free slot.
    pub fn with_capacity(&self) -> Vec<usize> {
        self.platforms
            .iter()
            .enumerate()
            .filter(|(_, p)| p.free_slots > 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The simulator: owns per-platform run queues and replays a [`JobStream`].
#[derive(Debug)]
pub struct ClusterSim<'a> {
    testbed: &'a Testbed,
    capacity: usize,
    /// When set, only these platforms accept jobs (an edge *site* within the
    /// full catalog; disallowed platforms surface zero free slots).
    allowed: Option<Vec<bool>>,
    /// Multiplier on every sampled isolation runtime (1.0 = the testbed's
    /// ground truth). Lets experiments inject covariate drift — e.g. the
    /// serving experiments' `e^0.3` runtime shift — into the closed loop
    /// without regenerating the testbed.
    work_scale: f64,
    /// Scheduled platform failure windows (validated, per-platform disjoint).
    faults: Vec<SiteFault>,
}

impl<'a> ClusterSim<'a> {
    /// Simulator with [`DEFAULT_CAPACITY`] co-location slots per platform.
    pub fn new(testbed: &'a Testbed) -> Self {
        Self::with_capacity(testbed, DEFAULT_CAPACITY)
    }

    /// Simulator with an explicit per-platform capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(testbed: &'a Testbed, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            testbed,
            capacity,
            allowed: None,
            work_scale: 1.0,
            faults: Vec::new(),
        }
    }

    /// Scales every sampled isolation runtime by `scale` — drift injection
    /// for closed-loop experiments (e.g. `scale = e^0.3` reproduces the
    /// serving experiments' runtime shift inside the simulator).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "work scale must be finite and positive, got {scale}"
        );
        self.work_scale = scale;
        self
    }

    /// Restricts placement to the given platform indices — a deployment
    /// site of a few devices rather than the whole catalog. A realistic
    /// edge site has tens of slots, which is what makes co-location (and
    /// interference-aware prediction) unavoidable under load.
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is empty or contains an out-of-range index.
    pub fn restrict_to(mut self, platforms: &[usize]) -> Self {
        assert!(
            !platforms.is_empty(),
            "site must contain at least one platform"
        );
        let n = self.testbed.platforms().len();
        let mut allowed = vec![false; n];
        for &p in platforms {
            assert!(p < n, "platform index {p} out of range");
            allowed[p] = true;
        }
        self.allowed = Some(allowed);
        self
    }

    /// Injects scheduled platform failures into the run: at each fault's
    /// `at_s` the platform goes dark, every job running there is killed and
    /// pushed back to the head of the pending queue (fail-stop: progress is
    /// lost, the re-placed job restarts from scratch, possibly elsewhere),
    /// and the platform offers zero free slots until `restore_s`. Preempted
    /// jobs are counted in [`SimReport::preemptions`]. Fault transitions are
    /// ordinary simulation events, so runs stay deterministic.
    ///
    /// # Panics
    ///
    /// Panics if a fault names a platform outside the testbed, has an empty
    /// window (`restore_s <= at_s`), has a non-finite or negative `at_s`, or
    /// overlaps another fault window on the same platform.
    pub fn with_site_faults(mut self, faults: Vec<SiteFault>) -> Self {
        let n = self.testbed.platforms().len();
        for (k, f) in faults.iter().enumerate() {
            assert!(
                f.platform < n,
                "SiteFault[{k}].platform = {} is outside the testbed; valid indices: 0..{n}",
                f.platform
            );
            assert!(
                f.at_s.is_finite() && f.at_s >= 0.0,
                "SiteFault[{k}].at_s = {} must be a finite simulated time ≥ 0",
                f.at_s
            );
            assert!(
                f.restore_s.is_finite() && f.restore_s > f.at_s,
                "SiteFault[{k}].restore_s = {} does not end a failure that begins at at_s = {}; \
                 a fault window must be non-empty (use restore_s > at_s)",
                f.restore_s,
                f.at_s
            );
        }
        let mut by_platform: Vec<(usize, f64, f64)> = faults
            .iter()
            .map(|f| (f.platform, f.at_s, f.restore_s))
            .collect();
        by_platform.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite times"));
        for w in by_platform.windows(2) {
            let (p0, a0, r0) = w[0];
            let (p1, a1, _) = w[1];
            assert!(
                p0 != p1 || a1 >= r0,
                "SiteFault windows [{a0}, {r0}) and [{a1}, ..) on platform {p0} overlap; \
                 fault windows for one platform must be disjoint (merge them or stagger restore_s)"
            );
        }
        self.faults = faults;
        self
    }

    fn is_allowed(&self, pidx: usize) -> bool {
        self.allowed.as_ref().is_none_or(|a| a[pidx])
    }

    /// Partitions `n_platforms` into `sites` disjoint round-robin platform
    /// sets, each suitable for [`ClusterSim::restrict_to`]. Round-robin
    /// (rather than contiguous) assignment spreads each device class over
    /// every site, so per-site hardware mixes stay comparable — the
    /// multi-site layout a serving fleet shards its replicas over (one
    /// [`ClusterSim`] per site, one serving replica per site, disjoint
    /// completion streams by construction).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero or exceeds `n_platforms` (a site must hold
    /// at least one platform).
    pub fn partition_sites(n_platforms: usize, sites: usize) -> Vec<Vec<usize>> {
        assert!(sites > 0, "at least one site required");
        assert!(
            sites <= n_platforms,
            "{sites} sites cannot partition {n_platforms} platforms"
        );
        let mut out = vec![Vec::with_capacity(n_platforms.div_ceil(sites)); sites];
        for p in 0..n_platforms {
            out[p % sites].push(p);
        }
        out
    }

    /// Replays `stream` under `policy` + `predictor`, returning the report.
    ///
    /// Deterministic: work sampling uses a seed derived from the job id.
    ///
    /// # Panics
    ///
    /// Panics if a policy refuses to place a job while the cluster is
    /// otherwise idle (a policy contract violation that would deadlock the
    /// queue).
    pub fn run(
        &mut self,
        stream: &JobStream,
        policy: &mut dyn PlacementPolicy,
        predictor: &dyn RuntimePredictor,
    ) -> SimReport {
        self.run_with_observer(stream, policy, predictor, &mut |_, _| {})
    }

    /// [`ClusterSim::run`] that additionally reports every completed job
    /// back as an [`Observation`] — the closed serving loop: the predictor
    /// places jobs, the cluster executes them, and realized runtimes flow
    /// back so an online predictor (e.g. `pitot-serve`) can recalibrate its
    /// bounds and fine-tune its model mid-stream.
    ///
    /// The observation's `interferers` are the co-residents *at placement
    /// time* (what the predictor was actually asked about, truncated to the
    /// training envelope of [`MAX_INTERFERERS`]) and its `runtime_s` is the
    /// realized wall-clock execution time — co-residency churn between
    /// placement and completion lands in the measurement noise, exactly as
    /// it would for a real orchestrator's logs. The observer runs at the
    /// completion's simulation time (second argument), before queued jobs
    /// are drained, so feedback is available to the very next placement.
    ///
    /// # Panics
    ///
    /// Panics as [`ClusterSim::run`].
    pub fn run_with_observer(
        &mut self,
        stream: &JobStream,
        policy: &mut dyn PlacementPolicy,
        predictor: &dyn RuntimePredictor,
        observer: &mut dyn FnMut(Observation, f64),
    ) -> SimReport {
        let n_platforms = self.testbed.platforms().len();
        let mut running: Vec<Vec<RunningJob>> = vec![Vec::new(); n_platforms];
        let mut pending: VecDeque<Job> = VecDeque::new();
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(stream.len());
        let mut busy_platform_time = 0.0f64;
        let mut now = 0.0f64;
        let mut preemptions = 0usize;

        // Fault windows become ordinary simulation events: (time, platform,
        // goes_down), time-sorted, consumed once each.
        let mut transitions: Vec<(f64, usize, bool)> = self
            .faults
            .iter()
            .flat_map(|f| [(f.at_s, f.platform, true), (f.restore_s, f.platform, false)])
            .collect();
        transitions.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut next_tr = 0usize;
        let mut down = vec![false; n_platforms];

        let mut arrivals = stream.jobs().iter().peekable();

        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Fault,
            Arrival,
            Completion,
        }

        loop {
            let next_arrival = arrivals.peek().map(|j| j.arrival_s);
            let next_completion = self.earliest_completion(&running, now);
            let next_fault = transitions.get(next_tr).map(|t| t.0);

            // Earliest event wins; on ties faults apply first (an arrival at
            // the instant a platform dies must see it dark), then arrivals.
            let mut event: Option<(f64, Kind)> = None;
            for (t, kind) in [
                (next_fault, Kind::Fault),
                (next_arrival, Kind::Arrival),
                (next_completion.map(|(c, _, _)| c), Kind::Completion),
            ] {
                if let Some(t) = t {
                    if event.is_none_or(|(bt, _)| t < bt) {
                        event = Some((t, kind));
                    }
                }
            }
            let Some((event_time, kind)) = event else {
                break;
            };

            // Advance all running jobs to the event time.
            let dt = event_time - now;
            if dt > 0.0 {
                for (pidx, jobs) in running.iter_mut().enumerate() {
                    if jobs.is_empty() {
                        continue;
                    }
                    busy_platform_time += dt;
                    let rates = self.rates(pidx, jobs);
                    for (job, rate) in jobs.iter_mut().zip(rates) {
                        job.remaining_work = (job.remaining_work - dt * rate).max(0.0);
                    }
                }
                now = event_time;
            } else {
                now = event_time;
            }

            match kind {
                Kind::Fault => {
                    let (_, pidx, goes_down) = transitions[next_tr];
                    next_tr += 1;
                    down[pidx] = goes_down;
                    if goes_down {
                        // Fail-stop: kill everything on the platform and
                        // re-queue at the head (oldest preempted job first)
                        // so recovery placement prefers them.
                        let killed = std::mem::take(&mut running[pidx]);
                        preemptions += killed.len();
                        for rj in killed.into_iter().rev() {
                            pending.push_front(rj.job);
                        }
                    }
                    // Either way capacity changed somewhere (preempted jobs
                    // may fit elsewhere; a restore opens fresh slots).
                    while let Some(job) = pending.front() {
                        let job = job.clone();
                        if self.try_place(job, &mut running, policy, predictor, now, &down) {
                            pending.pop_front();
                        } else {
                            break;
                        }
                    }
                }
                Kind::Arrival => {
                    let job = arrivals.next().expect("peeked arrival").clone();
                    if !self.try_place(job.clone(), &mut running, policy, predictor, now, &down) {
                        pending.push_back(job);
                    }
                }
                Kind::Completion => {
                    // Complete every job that has (numerically) finished.
                    for (pidx, jobs) in running.iter_mut().enumerate() {
                        let mut slot = 0;
                        while slot < jobs.len() {
                            if jobs[slot].remaining_work <= 1e-12 {
                                let done = jobs.swap_remove(slot);
                                let mut interferers = done.interferers_at_start;
                                interferers.truncate(MAX_INTERFERERS);
                                observer(
                                    Observation {
                                        workload: done.job.workload,
                                        platform: pidx as u32,
                                        interferers,
                                        runtime_s: (now - done.started_s).max(1e-6) as f32,
                                    },
                                    now,
                                );
                                outcomes.push(JobOutcome::new(done.job, pidx, now));
                            } else {
                                slot += 1;
                            }
                        }
                    }
                    // Drain the FIFO queue while the head job places.
                    while let Some(job) = pending.front() {
                        let job = job.clone();
                        if self.try_place(job, &mut running, policy, predictor, now, &down) {
                            pending.pop_front();
                        } else {
                            break;
                        }
                    }
                }
            }

            // Deadlock guard: an idle cluster must accept the queue head —
            // unless a fault transition is still pending, in which case the
            // queue legitimately waits for a platform to come back.
            if pending.front().is_some()
                && arrivals.peek().is_none()
                && running.iter().all(|r| r.is_empty())
                && next_tr >= transitions.len()
            {
                assert!(
                    down.iter()
                        .enumerate()
                        .any(|(p, &d)| !d && self.is_allowed(p)),
                    "fault plan leaves every allowed platform dark with jobs still queued; \
                     add a SiteFault restore_s before the last arrival drains"
                );
                panic!(
                    "policy {} refused to place job {} on an idle cluster",
                    policy.name(),
                    pending.front().expect("non-empty queue").id
                );
            }
        }

        let mut report = SimReport::from_outcomes(outcomes, now, busy_platform_time, n_platforms);
        report.preemptions = preemptions;
        report
    }

    /// Attempts to place `job`; returns whether it started running.
    fn try_place(
        &self,
        job: Job,
        running: &mut [Vec<RunningJob>],
        policy: &mut dyn PlacementPolicy,
        predictor: &dyn RuntimePredictor,
        now: f64,
        down: &[bool],
    ) -> bool {
        let view = self.view(running, now, down);
        match policy.place(&job, &view, predictor) {
            Some(pidx)
                if running[pidx].len() < self.capacity && self.is_allowed(pidx) && !down[pidx] =>
            {
                let work = self.sample_work(&job, pidx);
                let interferers_at_start = running[pidx].iter().map(|r| r.job.workload).collect();
                running[pidx].push(RunningJob {
                    job,
                    remaining_work: work,
                    total_work: work,
                    started_s: now,
                    interferers_at_start,
                });
                true
            }
            _ => false,
        }
    }

    /// True isolation runtime on `pidx`, with measurement noise,
    /// deterministic in the job id.
    fn sample_work(&self, job: &Job, pidx: usize) -> f64 {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
            0x509B_ED00 ^ (job.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let w = &self.testbed.workloads()[job.workload as usize];
        self.testbed
            .truth()
            .sample_log_runtime(w, job.workload as usize, &[], &[], pidx, &mut rng)
            .exp() as f64
            * self.work_scale
    }

    /// Progress rate of each job on `pidx` given its current co-residents.
    fn rates(&self, pidx: usize, jobs: &[RunningJob]) -> Vec<f64> {
        let ws = self.testbed.workloads();
        let truth = self.testbed.truth();
        jobs.iter()
            .enumerate()
            .map(|(slot, rj)| {
                let others: Vec<&Workload> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(s, _)| *s != slot)
                    .map(|(_, o)| &ws[o.job.workload as usize])
                    .collect();
                let w = &ws[rj.job.workload as usize];
                (-truth.interference_log_slowdown(w, &others, pidx) as f64).exp()
            })
            .collect()
    }

    /// Earliest completion event as `(time, platform, slot)`.
    fn earliest_completion(
        &self,
        running: &[Vec<RunningJob>],
        now: f64,
    ) -> Option<(f64, usize, usize)> {
        let mut best: Option<(f64, usize, usize)> = None;
        for (pidx, jobs) in running.iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            let rates = self.rates(pidx, jobs);
            for (slot, (job, rate)) in jobs.iter().zip(rates).enumerate() {
                let t = now + job.remaining_work / rate.max(1e-12);
                if best.is_none_or(|(bt, _, _)| t < bt) {
                    best = Some((t, pidx, slot));
                }
            }
        }
        best
    }

    fn view(&self, running: &[Vec<RunningJob>], now: f64, down: &[bool]) -> ClusterView {
        ClusterView {
            now_s: now,
            platforms: running
                .iter()
                .enumerate()
                .map(|(pidx, jobs)| PlatformLoad {
                    running: jobs.iter().map(|j| j.job.workload).collect(),
                    remaining_frac: jobs.iter().map(RunningJob::remaining_frac).collect(),
                    due_s: jobs.iter().map(|j| j.job.due_s()).collect(),
                    free_slots: if self.is_allowed(pidx) && !down[pidx] {
                        self.capacity.saturating_sub(jobs.len())
                    } else {
                        0
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BaselinePolicy;
    use crate::predictor::OraclePredictor;
    use pitot_testbed::TestbedConfig;

    fn setup() -> Testbed {
        Testbed::generate(&TestbedConfig::small())
    }

    #[test]
    fn all_jobs_complete() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 120, 1.0, 0);
        let oracle = OraclePredictor::new(&tb);
        let mut sim = ClusterSim::new(&tb);
        let report = sim.run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        assert_eq!(report.completed, 120);
        assert!(report.makespan_s >= jobs.jobs().last().unwrap().arrival_s);
    }

    #[test]
    fn responses_are_positive_and_finite() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 60, 0.5, 1);
        let oracle = OraclePredictor::new(&tb);
        let mut sim = ClusterSim::new(&tb);
        let report = sim.run(&jobs, &mut BaselinePolicy::least_loaded(), &oracle);
        for o in &report.outcomes {
            assert!(o.response_s > 0.0 && o.response_s.is_finite());
            assert!(o.completed_s >= 0.0);
        }
    }

    #[test]
    fn capacity_is_respected_under_burst() {
        // All jobs arrive at effectively the same time; with capacity 1 the
        // completions must serialize per platform.
        let tb = setup();
        let jobs = JobStream::generate(&tb, 40, 1e-6, 2);
        let oracle = OraclePredictor::new(&tb);
        let mut sim = ClusterSim::with_capacity(&tb, 1);
        let report = sim.run(&jobs, &mut BaselinePolicy::random(7), &oracle);
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 50, 1.0, 3);
        let oracle = OraclePredictor::new(&tb);
        let a = ClusterSim::new(&tb).run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        let b = ClusterSim::new(&tb).run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.violations, b.violations);
        assert!((a.mean_response_s - b.mean_response_s).abs() < 1e-12);
    }

    #[test]
    fn greedy_oracle_beats_random_on_response_time() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 150, 0.8, 4);
        let oracle = OraclePredictor::new(&tb);
        let fast = ClusterSim::new(&tb).run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        let rand = ClusterSim::new(&tb).run(&jobs, &mut BaselinePolicy::random(1), &oracle);
        assert!(
            fast.mean_response_s < rand.mean_response_s,
            "greedy {} should beat random {}",
            fast.mean_response_s,
            rand.mean_response_s
        );
    }

    #[test]
    fn site_partition_is_disjoint_balanced_and_complete() {
        let sites = ClusterSim::partition_sites(10, 3);
        assert_eq!(sites.len(), 3);
        let mut seen = [false; 10];
        for site in &sites {
            assert!(!site.is_empty());
            assert!(site.len().abs_diff(10 / 3) <= 1);
            for &p in site {
                assert!(!seen[p], "platform {p} in two sites");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Each site feeds restrict_to directly.
        let tb = setup();
        let n = tb.platforms().len();
        for site in ClusterSim::partition_sites(n, 2) {
            let _ = ClusterSim::new(&tb).restrict_to(&site);
        }
    }

    #[test]
    fn restriction_confines_placement_to_the_site() {
        let tb = setup();
        let site: Vec<usize> = (0..6).collect();
        let jobs = JobStream::generate(&tb, 60, 0.2, 9);
        let oracle = OraclePredictor::new(&tb);
        let mut sim = ClusterSim::new(&tb).restrict_to(&site);
        let report = sim.run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        assert_eq!(report.completed, 60);
        for o in &report.outcomes {
            assert!(
                site.contains(&o.platform),
                "job escaped the site: {}",
                o.platform
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restriction_rejects_bad_platform() {
        let tb = setup();
        let _ = ClusterSim::new(&tb).restrict_to(&[usize::MAX]);
    }

    #[test]
    fn observer_sees_every_completion_with_valid_observations() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 80, 0.05, 11);
        let oracle = OraclePredictor::new(&tb);
        // A three-platform site under a bursty stream forces co-location.
        let mut sim = ClusterSim::new(&tb).restrict_to(&[0, 1, 2]);
        let mut seen: Vec<Observation> = Vec::new();
        let mut last_t = 0.0f64;
        let report = sim.run_with_observer(
            &jobs,
            &mut BaselinePolicy::least_loaded(),
            &oracle,
            &mut |obs, now| {
                assert!(now >= last_t, "observer times must be monotone");
                last_t = now;
                seen.push(obs);
            },
        );
        assert_eq!(seen.len(), report.completed);
        let n_platforms = tb.platforms().len() as u32;
        let n_workloads = tb.workloads().len() as u32;
        let mut with_interference = 0usize;
        for o in &seen {
            assert!(o.workload < n_workloads);
            assert!(o.platform < n_platforms);
            assert!(o.interferers.len() <= MAX_INTERFERERS);
            assert!(o.runtime_s > 0.0 && o.runtime_s.is_finite());
            if !o.interferers.is_empty() {
                with_interference += 1;
            }
        }
        // A bursty stream on a loaded cluster must co-locate sometimes —
        // otherwise the closed loop never exercises interference feedback.
        assert!(with_interference > 0, "no co-located completions observed");
    }

    #[test]
    fn observer_side_effects_do_not_perturb_the_simulation() {
        // The observer is a pure tap: whatever it does with the
        // observations it receives, the simulation's outcomes must be
        // identical to a run with a no-op observer.
        let tb = setup();
        let jobs = JobStream::generate(&tb, 60, 0.5, 12);
        let oracle = OraclePredictor::new(&tb);
        let a = ClusterSim::new(&tb).run_with_observer(
            &jobs,
            &mut BaselinePolicy::greedy_fastest(),
            &oracle,
            &mut |_, _| {},
        );
        let mut sink: Vec<(Observation, f64)> = Vec::new();
        let b = ClusterSim::new(&tb).run_with_observer(
            &jobs,
            &mut BaselinePolicy::greedy_fastest(),
            &oracle,
            &mut |obs, now| sink.push((obs, now)),
        );
        assert_eq!(sink.len(), a.completed);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.violations, b.violations);
        assert!((a.mean_response_s - b.mean_response_s).abs() < 1e-12);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn site_fault_preempts_requeues_and_still_completes_everything() {
        let tb = setup();
        // A small site under a steady stream, with one platform dying
        // mid-run: its jobs must be preempted, re-queued, and finish
        // elsewhere (or after restore) — none may be lost.
        let jobs = JobStream::generate(&tb, 80, 0.2, 21);
        let oracle = OraclePredictor::new(&tb);
        let mut sim = ClusterSim::new(&tb)
            .restrict_to(&[0, 1, 2])
            .with_site_faults(vec![SiteFault {
                platform: 1,
                at_s: 2.0,
                restore_s: 60.0,
            }]);
        let report = sim.run(&jobs, &mut BaselinePolicy::least_loaded(), &oracle);
        assert_eq!(report.completed, 80, "preempted jobs must not be lost");
        assert!(
            report.preemptions > 0,
            "the fault never caught a running job"
        );
        // No completion may land on the dark platform inside its window.
        for o in &report.outcomes {
            assert!(
                !(o.platform == 1 && o.completed_s > 2.0 && o.completed_s < 60.0),
                "job {} completed on platform 1 at {:.2}s while it was down",
                o.job.id,
                o.completed_s
            );
        }
    }

    #[test]
    fn whole_site_outage_waits_for_restore_without_deadlocking() {
        let tb = setup();
        // Every allowed platform dark over a window that spans arrivals:
        // the queue must wait for the restore, not trip the deadlock guard.
        let jobs = JobStream::generate(&tb, 30, 0.1, 22);
        let oracle = OraclePredictor::new(&tb);
        let faults = vec![
            SiteFault {
                platform: 0,
                at_s: 1.0,
                restore_s: 50.0,
            },
            SiteFault {
                platform: 1,
                at_s: 1.0,
                restore_s: 50.0,
            },
        ];
        let mut sim = ClusterSim::new(&tb)
            .restrict_to(&[0, 1])
            .with_site_faults(faults);
        let report = sim.run(&jobs, &mut BaselinePolicy::least_loaded(), &oracle);
        assert_eq!(report.completed, 30);
        assert!(
            report.makespan_s >= 50.0,
            "work cannot finish before restore"
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 60, 0.3, 23);
        let oracle = OraclePredictor::new(&tb);
        let faults = || {
            vec![SiteFault {
                platform: 2,
                at_s: 3.0,
                restore_s: 20.0,
            }]
        };
        let a = ClusterSim::new(&tb).with_site_faults(faults()).run(
            &jobs,
            &mut BaselinePolicy::greedy_fastest(),
            &oracle,
        );
        let b = ClusterSim::new(&tb).with_site_faults(faults()).run(
            &jobs,
            &mut BaselinePolicy::greedy_fastest(),
            &oracle,
        );
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.violations, b.violations);
        assert!((a.mean_response_s - b.mean_response_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "valid indices")]
    fn fault_validation_rejects_unknown_platform() {
        let tb = setup();
        let _ = ClusterSim::new(&tb).with_site_faults(vec![SiteFault {
            platform: usize::MAX,
            at_s: 0.0,
            restore_s: 1.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "restore_s > at_s")]
    fn fault_validation_rejects_empty_window() {
        let tb = setup();
        let _ = ClusterSim::new(&tb).with_site_faults(vec![SiteFault {
            platform: 0,
            at_s: 5.0,
            restore_s: 5.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "must be disjoint")]
    fn fault_validation_rejects_overlapping_windows() {
        let tb = setup();
        let _ = ClusterSim::new(&tb).with_site_faults(vec![
            SiteFault {
                platform: 0,
                at_s: 0.0,
                restore_s: 10.0,
            },
            SiteFault {
                platform: 0,
                at_s: 5.0,
                restore_s: 15.0,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "finite simulated time")]
    fn fault_validation_rejects_negative_start() {
        let tb = setup();
        let _ = ClusterSim::new(&tb).with_site_faults(vec![SiteFault {
            platform: 0,
            at_s: -1.0,
            restore_s: 1.0,
        }]);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let tb = setup();
        let jobs = JobStream::generate(&tb, 80, 0.5, 5);
        let oracle = OraclePredictor::new(&tb);
        let report = ClusterSim::new(&tb).run(&jobs, &mut BaselinePolicy::least_loaded(), &oracle);
        assert!(report.utilization >= 0.0 && report.utilization <= 1.0);
        assert!(report.utilization > 0.0);
    }
}
