//! Job arrivals: workloads with deadlines.
//!
//! A [`JobStream`] mimics the traffic an edge orchestrator sees: workloads
//! drawn from the benchmark catalog arrive continuously, each carrying a
//! relative deadline. Deadlines are assigned from the workload's *achievable*
//! runtime distribution across the cluster (a deadline no platform can meet
//! would make every policy look identical, and one every platform meets
//! trivially would too): the deadline is a multiplier on the cluster-median
//! isolation runtime of that workload.

use pitot_testbed::Testbed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One workload submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable identifier (index in the stream).
    pub id: usize,
    /// Workload catalog index.
    pub workload: u32,
    /// Absolute arrival time in seconds.
    pub arrival_s: f64,
    /// Relative deadline: the job must finish by `arrival_s + deadline_s`.
    pub deadline_s: f64,
}

impl Job {
    /// Absolute completion deadline.
    pub fn due_s(&self) -> f64 {
        self.arrival_s + self.deadline_s
    }
}

/// A finite, time-ordered stream of jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStream {
    jobs: Vec<Job>,
}

impl JobStream {
    /// Generates `n` jobs with exponential inter-arrival times of mean
    /// `mean_interarrival_s` seconds and deadlines between 1.5× and 6× the
    /// workload's cluster-median isolation runtime.
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the testbed has no workloads or `mean_interarrival_s` is not
    /// positive and finite.
    pub fn generate(testbed: &Testbed, n: usize, mean_interarrival_s: f64, seed: u64) -> Self {
        Self::generate_with_deadlines(testbed, n, mean_interarrival_s, (1.5, 6.0), seed)
    }

    /// Like [`JobStream::generate`] with an explicit deadline-multiplier
    /// range. Tight ranges (e.g. `(1.1, 1.6)`) stress the placement policy;
    /// loose ranges make most placements feasible.
    ///
    /// # Panics
    ///
    /// Panics on an empty workload catalog, a non-positive inter-arrival
    /// time, or an inverted multiplier range.
    pub fn generate_with_deadlines(
        testbed: &Testbed,
        n: usize,
        mean_interarrival_s: f64,
        deadline_mult: (f64, f64),
        seed: u64,
    ) -> Self {
        let workloads = testbed.workloads();
        assert!(!workloads.is_empty(), "empty workload catalog");
        assert!(
            mean_interarrival_s.is_finite() && mean_interarrival_s > 0.0,
            "inter-arrival time must be positive"
        );
        assert!(
            deadline_mult.0 > 0.0 && deadline_mult.1 >= deadline_mult.0,
            "invalid deadline multiplier range {deadline_mult:?}"
        );

        let medians = median_isolation_runtimes(testbed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x10B5_72EA);
        let mut jobs = Vec::with_capacity(n);
        let mut now = 0.0f64;
        for id in 0..n {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -mean_interarrival_s * u.ln();
            let widx = rng.gen_range(0..workloads.len());
            let mult = rng.gen_range(deadline_mult.0..=deadline_mult.1);
            jobs.push(Job {
                id,
                workload: widx as u32,
                arrival_s: now,
                deadline_s: medians[widx] * mult,
            });
        }
        Self { jobs }
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Partitions the stream into `shards` disjoint sub-streams,
    /// round-robin by arrival order. Each shard preserves arrival order and
    /// job ids, the shards' unions reconstruct the original stream exactly,
    /// and every shard sees the same workload mix in expectation — the
    /// partitioning a multi-replica serving fleet consumes (one shard per
    /// replica site).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn partition(&self, shards: usize) -> Vec<JobStream> {
        assert!(shards > 0, "at least one shard required");
        let mut out: Vec<JobStream> = (0..shards)
            .map(|_| JobStream {
                jobs: Vec::with_capacity(self.jobs.len().div_ceil(shards)),
            })
            .collect();
        for (i, job) in self.jobs.iter().enumerate() {
            out[i % shards].jobs.push(job.clone());
        }
        out
    }

    /// Number of jobs in the stream.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Cluster-median *clean* isolation runtime per workload, used to scale
/// deadlines. Uses the ground truth (stream generation is part of the
/// environment, not the predictor under test).
fn median_isolation_runtimes(testbed: &Testbed) -> Vec<f64> {
    let truth = testbed.truth();
    let n_platforms = testbed.platforms().len();
    testbed
        .workloads()
        .iter()
        .enumerate()
        .map(|(widx, w)| {
            let mut runtimes: Vec<f32> = (0..n_platforms)
                .map(|p| truth.clean_log_runtime(w, widx, p).exp())
                .collect();
            runtimes.sort_by(|a, b| a.total_cmp(b));
            runtimes[runtimes.len() / 2] as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::TestbedConfig;

    fn stream() -> (Testbed, JobStream) {
        let tb = Testbed::generate(&TestbedConfig::small());
        let js = JobStream::generate(&tb, 200, 2.0, 7);
        (tb, js)
    }

    #[test]
    fn arrivals_are_monotone_and_positive() {
        let (_, js) = stream();
        assert_eq!(js.len(), 200);
        let mut last = 0.0;
        for j in js.jobs() {
            assert!(j.arrival_s >= last, "arrivals must be time-ordered");
            assert!(j.deadline_s > 0.0);
            last = j.arrival_s;
        }
    }

    #[test]
    fn deadlines_scale_with_workload_runtime() {
        let (tb, js) = stream();
        let medians = median_isolation_runtimes(&tb);
        for j in js.jobs() {
            let m = medians[j.workload as usize];
            assert!(
                j.deadline_s >= 1.5 * m - 1e-9 && j.deadline_s <= 6.0 * m + 1e-9,
                "deadline {} outside multiplier range of median {m}",
                j.deadline_s
            );
        }
    }

    #[test]
    fn partition_is_disjoint_order_preserving_and_complete() {
        let (_, js) = stream();
        let shards = js.partition(3);
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, js.len());
        // Sizes balanced within one.
        for s in &shards {
            assert!(s.len().abs_diff(js.len() / 3) <= 1);
        }
        // Disjoint ids, arrival order preserved per shard.
        let mut seen = vec![false; js.len()];
        for s in &shards {
            let mut last = 0.0f64;
            for j in s.jobs() {
                assert!(!seen[j.id], "job {} in two shards", j.id);
                seen[j.id] = true;
                assert!(j.arrival_s >= last);
                last = j.arrival_s;
            }
        }
        assert!(seen.iter().all(|&b| b), "every job lands in some shard");
        // One shard is the identity partition.
        assert_eq!(js.partition(1)[0].jobs(), js.jobs());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let (_, js) = stream();
        let _ = js.partition(0);
    }

    #[test]
    fn deterministic_in_seed() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let a = JobStream::generate(&tb, 50, 2.0, 3);
        let b = JobStream::generate(&tb, 50, 2.0, 3);
        let c = JobStream::generate(&tb, 50, 2.0, 4);
        assert_eq!(a.jobs(), b.jobs());
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn mean_interarrival_is_roughly_respected() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let js = JobStream::generate(&tb, 2000, 3.0, 0);
        let span = js.jobs().last().unwrap().arrival_s;
        let mean = span / js.len() as f64;
        assert!(
            (2.4..=3.6).contains(&mean),
            "empirical mean inter-arrival {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interarrival() {
        let tb = Testbed::generate(&TestbedConfig::small());
        JobStream::generate(&tb, 1, 0.0, 0);
    }
}
