//! Property tests for the orchestration layer: every job stream, policy, and
//! capacity must drain completely, respect deadlines accounting, and keep the
//! simulator's bookkeeping consistent.

use pitot_orchestrator::{BaselinePolicy, ClusterSim, JobStream, OraclePredictor, PolicyKind};
use pitot_testbed::{Testbed, TestbedConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::generate(&TestbedConfig::small()))
}

fn policy_of(idx: usize, seed: u64) -> BaselinePolicy {
    let kind = [
        PolicyKind::Random,
        PolicyKind::LeastLoaded,
        PolicyKind::GreedyFastest,
        PolicyKind::DeadlineAware,
    ][idx % 4];
    BaselinePolicy::of_kind(kind, seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_job_completes(
        n in 5usize..60,
        seed in 0u64..1_000,
        capacity in 1usize..5,
        policy_idx in 0usize..4,
    ) {
        let tb = shared_testbed();
        let jobs = JobStream::generate(tb, n, 0.7, seed);
        let oracle = OraclePredictor::new(tb);
        let mut sim = ClusterSim::with_capacity(tb, capacity);
        let report = sim.run(&jobs, &mut policy_of(policy_idx, seed), &oracle);

        prop_assert_eq!(report.completed, n);
        prop_assert!(report.violations <= report.completed);
        prop_assert!(report.utilization >= 0.0 && report.utilization <= 1.0);
        prop_assert!(report.makespan_s.is_finite() && report.makespan_s > 0.0);
        // Every outcome id appears exactly once.
        let mut ids: Vec<usize> = report.outcomes.iter().map(|o| o.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn response_never_beats_physics(
        n in 5usize..40,
        seed in 0u64..1_000,
    ) {
        // A job can never finish faster than its placed platform could run it
        // in isolation without noise, divided by a generous noise allowance.
        let tb = shared_testbed();
        let jobs = JobStream::generate(tb, n, 1.0, seed);
        let oracle = OraclePredictor::new(tb);
        let mut sim = ClusterSim::new(tb);
        let report = sim.run(&jobs, &mut BaselinePolicy::greedy_fastest(), &oracle);
        let truth = tb.truth();
        for o in &report.outcomes {
            let w = &tb.workloads()[o.job.workload as usize];
            let clean = truth
                .clean_log_runtime(w, o.job.workload as usize, o.platform)
                .exp() as f64;
            prop_assert!(
                o.response_s > clean * 0.3,
                "job {} responded in {}s, clean isolation runtime {}s",
                o.job.id, o.response_s, clean
            );
        }
    }

    #[test]
    fn makespan_monotone_in_stream_length(
        n in 10usize..30,
        seed in 0u64..100,
    ) {
        // A prefix of a stream can never take longer than the whole stream.
        let tb = shared_testbed();
        let long = JobStream::generate(tb, 2 * n, 1.0, seed);
        let oracle = OraclePredictor::new(tb);
        let full = ClusterSim::new(tb).run(&long, &mut BaselinePolicy::least_loaded(), &oracle);
        let short = JobStream::generate(tb, n, 1.0, seed);
        let half = ClusterSim::new(tb).run(&short, &mut BaselinePolicy::least_loaded(), &oracle);
        prop_assert!(half.makespan_s <= full.makespan_s + 1e-9);
    }
}
