//! Quickstart: generate a simulated edge cluster, train Pitot, and predict
//! runtimes with calibrated upper bounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_testbed::{split::Split, Testbed, TestbedConfig};

fn main() {
    // 1. Simulate the heterogeneous WebAssembly cluster (paper Sec 4) and
    //    collect runtime observations with and without interference.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    println!(
        "dataset: {} observations over {} workloads × {} platforms",
        dataset.observations.len(),
        dataset.n_workloads,
        dataset.n_platforms
    );

    // 2. Split: 60% of observations are "historical" training data.
    let split = Split::stratified(&dataset, 0.6, 0);

    // 3. Train Pitot with the quantile-regression objective so we get both
    //    point predictions and conformal bounds.
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);
    println!("trained: {} parameters", trained.model.param_count());

    // 4. Point accuracy on held-out observations.
    let mape = trained.mape(&dataset, &split.test, None);
    println!("test MAPE: {:.1}%", 100.0 * mape);

    // 5. Calibrated upper bounds: a runtime budget sufficient with
    //    probability ≥ 90% (paper Sec 3.5).
    let epsilon = 0.1;
    let bounds = trained.fit_bounds(&dataset, epsilon, HeadSelection::TightestOnValidation);
    let sample: Vec<usize> = split.test.iter().copied().take(5).collect();
    let budgets = bounds.bounds_s(&trained, &dataset, &sample);
    let points = trained.predict_runtime(&dataset, &sample);
    println!("\nobservation                                  predicted   budget(ε=0.1)   actual");
    for ((&oi, pred), budget) in sample.iter().zip(&points).zip(&budgets) {
        let o = &dataset.observations[oi];
        println!(
            "{:<44} {:>8.3}s {:>12.3}s {:>8.3}s",
            format!(
                "workload {} on {}{}",
                o.workload,
                testbed.platform_name(o.platform as usize),
                if o.interferers.is_empty() {
                    String::new()
                } else {
                    format!(" (+{} interferers)", o.interferers.len())
                }
            ),
            pred,
            budget,
            o.runtime_s
        );
    }

    let coverage = bounds.coverage(&trained, &dataset, &split.test);
    println!(
        "\nempirical bound coverage: {:.1}% (target ≥ {:.0}%)",
        100.0 * coverage,
        100.0 * (1.0 - epsilon)
    );
}
