//! Poisoned-telemetry quickstart: run a guarded replica fleet through the
//! full data-fault schedule — NaN/negative runtimes, heavy downward
//! outlier bursts, replayed and clock-skewed merge summaries, and a
//! Byzantine replica — and watch the trust layer quarantine, reject, and
//! audit everything instead of silently absorbing it.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example poison
//! ```
//!
//! The final line prints `digest=<16 hex digits>` — an FNV-1a hash of
//! every admission decision, served bound, and coverage flag. For a fixed
//! fault seed the digest is bitwise identical regardless of
//! `PITOT_THREADS`; CI runs this example twice at different thread counts
//! and diffs the two lines.

use pitot::{train, Objective, PitotConfig};
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, FaultPlan, FleetConfig, FleetServer, ServeConfig,
};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Cluster, history, model — as in the chaos quickstart.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // 2. A 3-replica fleet in the guarded posture: ingest guard + MAD
    //    screen + miscoverage watchdog, plus the always-on summary
    //    integrity screen on the merge path. The fault plan corrupts 5%
    //    of runtimes to NaN/Inf/negative, fires heavy downward outlier
    //    bursts, replays/skews merge summaries, and turns replica 1
    //    Byzantine (tampered score segments) from observation 200.
    let epsilon = 0.1;
    let mut serve = ServeConfig::guarded(epsilon);
    serve.window = 128;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 16,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let plan = FaultPlan::none(0x0009_0150_5EED)
        .corrupt_observations(0.05)
        .outlier_bursts(0.25, -12.0, 8)
        .replay_summaries(0.15)
        .skew_clocks(0.10)
        .byzantine_replica(1, 200);
    let mut fleet = FleetServer::with_faults(trained, &dataset, cfg, plan);
    fleet.seed_calibration(&split.val);
    println!("fleet up: 3 replicas, guarded ingest, replica 1 Byzantine from obs 200");

    // 3. Stream 400 events through the poison: every event issues a
    //    deadline query resolved against the *clean* realized runtime;
    //    the fault layer corrupts what the replicas observe.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut stream = split.test.clone();
    stream.shuffle(&mut rng);
    stream.truncate(400);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |bytes: &[u8], d: &mut u64| {
        for &b in bytes {
            *d ^= u64::from(b);
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let (mut covered, mut judged) = (0usize, 0usize);
    for (t, &i) in stream.iter().enumerate() {
        let o = dataset.observations[i].clone();
        let deadline_s = f64::from(o.runtime_s) * rng.gen_range(0.75..3.0);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: o.workload,
            platform: o.platform,
            interferers: o.interferers.clone(),
            deadline_s,
        });
        fnv(&[u8::from(out.decision.admitted())], &mut digest);
        fnv(&out.prediction.bound_s.to_bits().to_le_bytes(), &mut digest);
        fleet.resolve(t as u64, f64::from(o.runtime_s));
        let (_, fb) = fleet.observe(t as f64, o);
        fnv(
            &[fb.as_ref().map_or(2, |f| u8::from(f.covered))],
            &mut digest,
        );
        if let Some(f) = fb {
            judged += 1;
            covered += usize::from(f.covered);
        }
    }

    // 4. The audit attributes every injected fault to a counter: nothing
    //    is silently dropped, nothing tampered is absorbed.
    let stats = fleet.stats();
    let g = &stats.guard;
    println!(
        "\nafter {} fleet observations ({} judged, coverage {:.3}, nominal {:.2}):",
        stats.observations,
        judged,
        covered as f32 / judged.max(1) as f32,
        1.0 - epsilon
    );
    println!(
        "  injected: {} corrupt runtimes, {} outliers, {} replays, {} skews, {} Byzantine emissions",
        stats.injected_corrupt,
        stats.injected_outliers,
        stats.injected_replays,
        stats.injected_skews,
        stats.byzantine_emissions
    );
    println!(
        "  quarantined {} (nonfinite {}, nonpositive {}, MAD outliers {}, watchdog {}); {} summaries rejected",
        g.quarantined,
        g.nonfinite_runtimes,
        g.nonpositive_runtimes,
        g.mad_outliers,
        g.watchdog_purged,
        stats.rejected_summaries
    );
    for r in fleet.rejected_audit().iter().take(5) {
        println!(
            "  rejected summary from replica {} at obs {}: {:?}",
            r.replica, r.at_obs, r.cause
        );
    }

    // Zero silent drops: delivered = judged + quarantined at ingest.
    let ingest_quarantined = g.nonfinite_runtimes + g.nonpositive_runtimes + g.mad_outliers;
    assert_eq!(stats.observations, stats.bounded + ingest_quarantined);
    assert_eq!(
        g.nonfinite_runtimes + g.nonpositive_runtimes,
        stats.injected_corrupt,
        "a corrupt runtime escaped quarantine"
    );
    assert!(stats.rejected_summaries > 0, "no tampered summary rejected");
    assert!(
        covered as f32 / judged.max(1) as f32 > 0.85,
        "poison collapsed guarded coverage"
    );
    // The CI-diffed replayability witness — keep this the last line.
    println!("digest={digest:016x}");
}
