//! Dataset export/import: snapshot a collection and work without the
//! simulator.
//!
//! The paper ships its measurements as an archival dataset so others can
//! train predictors without the physical cluster; this example does the same
//! for the synthetic testbed. It collects a dataset, prints its Sec 4-style
//! summary statistics, round-trips it through JSON on disk, and verifies a
//! model trained on the reloaded copy behaves identically.
//!
//! ```sh
//! cargo run --release --example dataset_export
//! ```

use pitot::{train, PitotConfig};
use pitot_testbed::{split::Split, Dataset, DatasetStats, Testbed, TestbedConfig};

fn main() {
    // Collect once from the simulator…
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    println!("== collected dataset ==");
    println!("{}\n", DatasetStats::compute(&dataset));

    // …snapshot to disk…
    let path = std::env::temp_dir().join("pitot_dataset_snapshot.json");
    dataset.save_json(&path).expect("write snapshot");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "snapshot: {} ({:.1} MiB)",
        path.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );

    // …and reload where no simulator exists.
    let reloaded = Dataset::load_json(&path).expect("read snapshot");
    assert_eq!(reloaded.observations.len(), dataset.observations.len());

    // Models trained on the snapshot are bit-identical to the original:
    // everything a predictor needs travels with the file.
    let split = Split::stratified(&reloaded, 0.5, 0);
    let mut config = PitotConfig::tiny();
    config.steps = 150;
    let from_original = train(&dataset, &split, &config);
    let from_snapshot = train(&reloaded, &split, &config);
    let idx: Vec<usize> = split.test.iter().copied().take(5).collect();
    assert_eq!(
        from_original.predict_runtime(&dataset, &idx),
        from_snapshot.predict_runtime(&reloaded, &idx),
        "training on the snapshot must match training on the original"
    );
    println!("\ntrained on snapshot: predictions identical to the original dataset ✓");

    let _ = std::fs::remove_file(&path);
}
