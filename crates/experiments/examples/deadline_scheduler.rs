//! Deadline scheduling under load: replay a job stream against the cluster
//! and compare placement policies.
//!
//! Where `edge_orchestrator` walks through a single placement decision, this
//! example runs the full closed loop from the `pitot-orchestrator` crate: a
//! Poisson stream of deadline-carrying jobs is placed by different
//! (policy, predictor) pairs and executed against the testbed's ground-truth
//! interference physics. The table at the end shows why calibrated bounds
//! matter: greedy placement on point predictions overcommits fast platforms,
//! while the deadline-aware policy backed by Pitot's conformal bounds keeps
//! the violation rate near the chosen miscoverage ε.
//!
//! ```sh
//! cargo run --release --example deadline_scheduler
//! ```

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_orchestrator::{
    BaselinePolicy, ClusterSim, JobStream, OraclePredictor, PitotPredictor, PolicyComparison,
    ScalingPredictor,
};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};

fn main() {
    // The simulated cluster and the historical observations an orchestrator
    // would have collected so far.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);

    // One Pitot model serves every policy: quantile heads give both point
    // predictions (median head) and conformal budgets.
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    println!("training Pitot on {} observations…", split.train.len());
    let trained = train(&dataset, &split, &config);
    let epsilon = 0.1;
    let bounds = trained.fit_bounds(&dataset, epsilon, HeadSelection::TightestOnValidation);

    // A realistic edge site — a dozen platforms, not the whole catalog — and
    // a near-saturating stream: jobs arrive every 20ms with deadlines only
    // 1.3–3x their cluster-median runtime, so sloppy placement shows.
    let n_platforms = testbed.platforms().len();
    let site: Vec<usize> = (0..n_platforms).step_by(n_platforms.div_ceil(12)).collect();
    let jobs = JobStream::generate_with_deadlines(&testbed, 300, 0.02, (1.3, 3.0), 7);
    println!(
        "replaying {} jobs on a {}-platform site (deadlines 1.3-3.0x median runtime)…\n",
        jobs.len(),
        site.len()
    );

    let oracle = OraclePredictor::with_epsilon(&testbed, epsilon);
    let scaling = ScalingPredictor::new(pitot::ScalingBaseline::fit(&dataset, &split.train));
    let pitot_point = PitotPredictor::new(&trained, &dataset);
    let pitot_bounds = PitotPredictor::with_bounds(&trained, &dataset, bounds);

    let mut table = PolicyComparison::new();
    let mut run = |label: &str,
                   mut policy: BaselinePolicy,
                   pred: &dyn pitot_orchestrator::RuntimePredictor| {
        let report = ClusterSim::new(&testbed)
            .restrict_to(&site)
            .run(&jobs, &mut policy, pred);
        table.push(label, report);
    };

    run("random / oracle", BaselinePolicy::random(1), &oracle);
    run(
        "least-loaded / oracle",
        BaselinePolicy::least_loaded(),
        &oracle,
    );
    run(
        "greedy / scaling (intf-blind)",
        BaselinePolicy::greedy_fastest(),
        &scaling,
    );
    run(
        "greedy / pitot",
        BaselinePolicy::greedy_fastest(),
        &pitot_point,
    );
    run(
        &format!("deadline-aware / pitot+conformal ε={epsilon}"),
        BaselinePolicy::deadline_aware(),
        &pitot_bounds,
    );
    run(
        "deadline-aware / oracle (floor)",
        BaselinePolicy::deadline_aware(),
        &oracle,
    );

    print!("{}", table.to_table());
    println!(
        "\nwith conformal budgets at ε={epsilon}, accepted placements miss their \
         deadline with probability ≲ {epsilon} — the knob an orchestrator actually needs."
    );
}
