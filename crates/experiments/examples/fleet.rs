//! Fleet quickstart: shard an event stream over multiple serving replicas,
//! merge their calibration windows into one fleet-level conformal fit, and
//! let the bounds drive SLO-aware admission.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example fleet
//! ```

use pitot::{train, Objective, PitotConfig};
use pitot_serve::{AdmissionConfig, DeadlineQuery, FleetConfig, FleetServer, ServeConfig};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Cluster, history, model — as in the quickstart.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // 2. Stand up a 3-replica fleet: disjoint event shards, per-replica
    //    windows of 128, a coordinator merge every 16 observations, and
    //    deadline admission by the conformal upper edge.
    let epsilon = 0.1;
    let mut serve = ServeConfig::at(epsilon);
    serve.window = 128;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 16,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let mut fleet = FleetServer::new(trained, &dataset, cfg);
    fleet.seed_calibration(&split.val);
    println!(
        "fleet up: {} replicas, fleet calibration installed after seeding",
        fleet.n_replicas()
    );

    // 3. Stream 400 events: each issues a deadline query (admitted or shed
    //    by the bound), then the realized runtime flows back into the
    //    shard's window; every 16th observation triggers a merge round.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut stream = split.test.clone();
    stream.shuffle(&mut rng);
    stream.truncate(400);
    for (t, &i) in stream.iter().enumerate() {
        let o = dataset.observations[i].clone();
        let deadline_s = f64::from(o.runtime_s) * rng.gen_range(0.75..3.0);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: o.workload,
            platform: o.platform,
            interferers: o.interferers.clone(),
            deadline_s,
        });
        fleet.resolve(t as u64, f64::from(o.runtime_s));
        if t < 4 {
            println!(
                "  query {t}: bound {:.3}s vs deadline {:.3}s → {:?} (replica {})",
                out.prediction.bound_s, deadline_s, out.decision, out.replica
            );
        }
        fleet.observe(t as f64, o);
    }

    // 4. Fleet-wide accounting: coverage of the merged calibration and how
    //    the admission decisions scored against realized runtimes.
    let stats = fleet.stats();
    println!(
        "\nafter {} observations across the fleet:",
        stats.observations
    );
    println!(
        "  {} merge rounds, prequential coverage {:.3} (nominal {:.2})",
        stats.merges,
        stats.coverage(),
        1.0 - epsilon
    );
    println!(
        "  admission: {} admitted / {} shed (shed rate {:.2})",
        stats.admission.admitted,
        stats.admission.shed(),
        stats.admission.shed_rate()
    );
    println!(
        "  SLO attainment among admitted: {:.3}; sheds that would have missed: {}/{}",
        stats.admission.attainment(),
        stats.admission.shed_would_have_missed,
        stats.admission.shed()
    );
    assert!(stats.coverage() > 0.8, "fleet coverage degenerated");
    assert!(stats.merges > 0, "coordinator never merged");
}
