//! Online adaptation: a new device joins the cluster.
//!
//! The paper's conclusion names efficient online learning as the key
//! extension for deployments. This example stages that event with
//! `pitot_testbed::device_arrival`: Pitot is trained on a cluster that has
//! never seen one of the devices, the device comes online and reports its
//! first observations, and three responses are compared on the device's
//! held-out data:
//!
//! - keep serving the stale model,
//! - fine-tune the deployed checkpoint at ~1/8 of the training budget
//!   (`TrainedPitot::fine_tune`, which keeps the scaling baseline frozen so
//!   conformal calibration stays comparable),
//! - retrain from scratch.
//!
//! ```sh
//! cargo run --release --example online_adaptation
//! ```

use pitot::{train, PitotConfig};
use pitot_testbed::{device_arrival, Testbed, TestbedConfig};

fn main() {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();

    // Pick the device backing the most platforms so the holdout is rich.
    let device = {
        let mut counts = vec![0usize; testbed.devices().len()];
        for p in testbed.platforms() {
            counts[p.device] += 1;
        }
        (0..counts.len()).max_by_key(|&d| counts[d]).unwrap()
    };
    println!(
        "new device: {} ({} platforms)",
        testbed.devices()[device].name,
        testbed
            .platforms()
            .iter()
            .filter(|p| p.device == device)
            .count()
    );

    // 25% of the new device's observations arrive as adaptation data.
    let arrival = device_arrival(&dataset, &testbed, device, 0.6, 0.25, 0);
    let config = PitotConfig::fast();
    let fine_tune_steps = config.steps / 8;

    println!("pre-training without the device ({} steps)…", config.steps);
    let stale = train(&dataset, &arrival.pretrain, &config);

    println!("fine-tuning on first observations ({fine_tune_steps} steps)…");
    let tuned = stale.fine_tune(&dataset, &arrival.adapt, fine_tune_steps);

    println!("retraining from scratch ({} steps)…", config.steps);
    let retrained = train(&dataset, &arrival.adapt, &config);

    let test = &arrival.new_device_test;
    println!("\nMAPE on {} held-out new-device observations:", test.len());
    for (label, model, steps) in [
        ("stale (no update)", &stale, 0usize),
        ("fine-tune (warm start)", &tuned, fine_tune_steps),
        ("retrain (from scratch)", &retrained, config.steps),
    ] {
        println!(
            "  {label:<24} {:>6.1}%   (+{steps} steps)",
            100.0 * model.mape(&dataset, test, None)
        );
    }
    println!(
        "\nfine-tuning recovers most of the retraining accuracy at a fraction of \
         the cost — the paper's online-learning extension in practice."
    );
}
