//! Chaos quickstart: run a replica fleet through a coordinator outage, a
//! replica crash with warm rejoin, and lossy merge rounds — and watch the
//! degradation ladder (fleet calibration → gossip → widened stale
//! fallback) keep the bounds honest.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example chaos
//! ```
//!
//! The final line prints `digest=<16 hex digits>` — an FNV-1a hash of
//! every admission decision, failover flag, and served bound. For a fixed
//! fault seed the digest is bitwise identical regardless of
//! `PITOT_THREADS`; CI runs this example twice at different thread counts
//! and diffs the two lines.

use pitot::{train, Objective, PitotConfig};
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, FaultPlan, FleetConfig, FleetServer, ServeConfig,
};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Cluster, history, model — as in the fleet quickstart.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // 2. A 3-replica fleet with a deterministic fault schedule keyed to
    //    the fleet-wide observation counter: the coordinator is dark over
    //    [120, 260), replica 1 crashes at 150 and rejoins warm at 230
    //    (inside the outage), and 10% of merge summaries are dropped
    //    (retried with backoff) throughout. Staleness fallback is armed
    //    as the ladder's last rung.
    let epsilon = 0.1;
    let mut serve = ServeConfig::at(epsilon);
    serve.window = 128;
    serve.staleness_threshold = serve.drift_min;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 16,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let plan = FaultPlan::none(0xC4A0_5EED)
        .coordinator_outage(120, 260)
        .crash(1, 150, 230)
        .drop_summaries(0.10);
    let mut fleet = FleetServer::with_faults(trained, &dataset, cfg, plan);
    fleet.seed_calibration(&split.val);
    println!("fleet up: 3 replicas, outage [120, 260), crash replica 1 @ 150 → rejoin 230");

    // 3. Stream 400 events through the faults: every event issues a
    //    deadline query (failing over if its home shard is down), then
    //    the realized runtime flows back in — unless its replica is down,
    //    in which case the observation is lost and audited as such.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut stream = split.test.clone();
    stream.shuffle(&mut rng);
    stream.truncate(400);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |bytes: &[u8], d: &mut u64| {
        for &b in bytes {
            *d ^= u64::from(b);
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (t, &i) in stream.iter().enumerate() {
        let o = dataset.observations[i].clone();
        let deadline_s = f64::from(o.runtime_s) * rng.gen_range(0.75..3.0);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: o.workload,
            platform: o.platform,
            interferers: o.interferers.clone(),
            deadline_s,
        });
        fnv(
            &[u8::from(out.decision.admitted()), u8::from(out.failover)],
            &mut digest,
        );
        fnv(&out.prediction.bound_s.to_bits().to_le_bytes(), &mut digest);
        fleet.resolve(t as u64, f64::from(o.runtime_s));
        let (_, fb) = fleet.observe(t as f64, o);
        fnv(&[fb.map_or(2, |f| u8::from(f.covered))], &mut digest);
    }

    // 4. The degraded-window audit attributes every loss to its fault.
    let stats = fleet.stats();
    println!(
        "\nafter {} fleet observations (+{} lost to the crash):",
        stats.observations, stats.lost_observations
    );
    println!(
        "  coverage {:.3} (nominal {:.2}); {} merges, {} skipped installs, {} gossip rounds",
        stats.coverage(),
        1.0 - epsilon,
        stats.merges,
        stats.skipped_installs,
        stats.gossip_rounds
    );
    println!(
        "  faults: {} failover queries, {} dropped summaries ({} retried, {} giveups), {} warm rejoin(s)",
        stats.failover_queries,
        stats.dropped_summaries,
        stats.retried_summaries,
        stats.merge_giveups,
        stats.recoveries
    );
    for (k, w) in fleet.degraded_audit().iter().enumerate() {
        println!(
            "  degraded window {k}: {:?} obs [{}, {:?}) — {} judged, coverage {:.3}, {} lost, {} degraded decisions, {} shed",
            w.cause, w.from_obs, w.until_obs, w.bounded, w.coverage(), w.lost_observations, w.degraded_decisions, w.shed
        );
    }

    assert_eq!(stats.recoveries, 1, "replica 1 must rejoin warm");
    assert!(stats.gossip_rounds > 0, "the outage must trigger gossip");
    assert!(stats.coverage() > 0.8, "chaos collapsed coverage");
    // The CI-diffed replayability witness — keep this the last line.
    println!("digest={digest:016x}");
}
