//! Serving quickstart: run the online prediction service closed-loop with
//! the placement simulator — calibrated bounds place jobs, realized
//! runtimes stream back, and the calibration window tracks the deployment
//! distribution instead of a frozen holdout.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example serving
//! ```

use pitot::{train, Objective, PitotConfig};
use pitot_orchestrator::{BaselinePolicy, JobStream};
use pitot_serve::{run_closed_loop, Event, PitotServer, ServeConfig};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // 1. Cluster, history, model — as in the quickstart.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);
    println!(
        "trained {} parameters over {} observations",
        trained.model.param_count(),
        dataset.observations.len()
    );

    // 2. Stand up the serving instance: ε = 0.1 bounds, a 400-observation
    //    sliding calibration window refreshed on every arrival, seeded from
    //    the model's validation holdout.
    let epsilon = 0.1;
    let mut serve_cfg = ServeConfig::at(epsilon);
    serve_cfg.window = 400;
    let mut server = PitotServer::new(trained, dataset.clone(), serve_cfg);
    server.seed_calibration(&split.val);

    // 3. Micro-batched queries: buffered until the batch fills (or a
    //    flush), then answered in one row-parallel prediction pass.
    for (q, &oi) in split.test.iter().take(8).enumerate() {
        let o = &dataset.observations[oi];
        server.on_event(
            q as f64,
            Event::Query {
                id: q as u64,
                workload: o.workload,
                platform: o.platform,
                interferers: o.interferers.clone(),
            },
        );
    }
    let answers = server.on_event(8.0, Event::Flush).predictions;
    println!("\nmicro-batched answers (point → budget at ε={epsilon}):");
    for p in &answers {
        println!(
            "  query {}: {:>8.3}s → {:>8.3}s (pool {})",
            p.id, p.point_s, p.bound_s, p.pool
        );
    }

    // 4. Close the loop: a deadline-aware policy places 200 jobs on a
    //    six-platform edge site using the server's live bounds; every
    //    completion streams back and recalibrates the window.
    let server = Rc::new(RefCell::new(server));
    let jobs = JobStream::generate(&testbed, 200, 0.25, 7);
    let site: Vec<usize> = (0..6).collect();
    let report = run_closed_loop(
        &testbed,
        &jobs,
        &mut BaselinePolicy::deadline_aware(),
        &server,
        Some(&site),
    );

    let server = server.borrow();
    let stats = server.stats();
    println!("\nclosed loop on a 6-platform site:");
    println!(
        "  {} jobs completed, {} deadline violations ({:.1}% vs ε = {:.0}%)",
        report.completed,
        report.violations,
        100.0 * report.violations as f64 / report.completed.max(1) as f64,
        100.0 * epsilon
    );
    println!(
        "  {} completions streamed back, rolling coverage {:.3}, {} conformal refreshes",
        stats.observations,
        server.rolling_coverage(),
        stats.refreshes
    );
    let mut lat: Vec<u64> = stats.refresh_ns.clone();
    lat.sort_unstable();
    if !lat.is_empty() {
        println!(
            "  refresh latency p50 {:.1} µs / p99 {:.1} µs",
            lat[(lat.len() - 1) / 2] as f64 / 1e3,
            lat[((lat.len() - 1) as f64 * 0.99).round() as usize] as f64 / 1e3
        );
    }
}
