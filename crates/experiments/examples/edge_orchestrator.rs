//! Edge orchestration scenario: deadline-aware workload placement.
//!
//! The paper motivates Pitot with edge orchestration frameworks that must
//! place latency-sensitive workloads on heterogeneous platforms (Sec 1).
//! This example deploys a workload under a deadline: the orchestrator asks
//! Pitot for a 95%-confidence runtime budget on every candidate platform —
//! *including the interference caused by what is already running there* —
//! and picks the fastest platform whose budget meets the deadline.
//!
//! ```sh
//! cargo run --release --example edge_orchestrator
//! ```

use pitot::{train, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::HeadSelection;
use pitot_testbed::{split::Split, Dataset, Observation, Testbed, TestbedConfig};

/// A candidate placement: the workload joins `running` on `platform`.
struct Placement {
    platform: usize,
    running: Vec<u32>,
}

/// Builds a hypothetical observation describing a placement so the model can
/// score it (the observation's runtime is a placeholder; only indices are
/// read at prediction time).
fn hypothetical(dataset: &mut Dataset, workload: u32, placement: &Placement) -> usize {
    dataset.observations.push(Observation {
        workload,
        platform: placement.platform as u32,
        interferers: placement.running.clone(),
        runtime_s: 1.0,
    });
    dataset.observations.len() - 1
}

fn budget_for(
    trained: &TrainedPitot,
    bounds: &pitot::RuntimeBounds,
    dataset: &Dataset,
    idx: usize,
) -> f32 {
    bounds.bounds_s(trained, dataset, &[idx])[0]
}

fn main() {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95, 0.98]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);
    let bounds = trained.fit_bounds(&dataset, 0.05, HeadSelection::TightestOnValidation);

    // The workload to place and the cluster's current occupancy (workload
    // ids wrap into the generated catalog so the example scales with it).
    let nw = dataset.n_workloads as u32;
    let np = dataset.n_platforms;
    let w = |i: u32| i % nw;
    let workload = w(17);
    let deadline_s = 2.0;
    let candidates = [
        Placement {
            platform: 3 % np,
            running: vec![],
        },
        Placement {
            platform: 40 % np,
            running: vec![w(5), w(9)],
        },
        Placement {
            platform: 90 % np,
            running: vec![w(22)],
        },
        Placement {
            platform: 140 % np,
            running: vec![w(2), w(61), w(88)],
        },
        Placement {
            platform: 200 % np,
            running: vec![],
        },
    ];

    println!("placing workload {workload} with a {deadline_s:.1}s deadline (95% confidence)\n");
    println!(
        "{:<52} {:>10} {:>12}  verdict",
        "candidate platform", "point est", "95% budget"
    );

    let mut ds = dataset.clone();
    let mut best: Option<(usize, f32)> = None;
    for (c, placement) in candidates.iter().enumerate() {
        let idx = hypothetical(&mut ds, workload, placement);
        let point = trained.predict_runtime(&ds, &[idx])[0];
        let budget = budget_for(&trained, &bounds, &ds, idx);
        let ok = budget <= deadline_s;
        println!(
            "{:<52} {:>9.3}s {:>11.3}s  {}",
            format!(
                "{}{}",
                testbed.platform_name(placement.platform),
                if placement.running.is_empty() {
                    " (idle)".to_string()
                } else {
                    format!(" ({} running)", placement.running.len())
                }
            ),
            point,
            budget,
            if ok { "meets deadline" } else { "REJECTED" }
        );
        if ok && best.is_none_or(|(_, b)| budget < b) {
            best = Some((c, budget));
        }
    }

    match best {
        Some((c, budget)) => println!(
            "\n→ placing on {} (budget {:.3}s ≤ deadline {:.1}s)",
            testbed.platform_name(candidates[c].platform),
            budget,
            deadline_s
        ),
        None => println!("\n→ no placement meets the deadline; workload must wait or offload"),
    }
}
