//! Embedding interpretation: clustering workloads and ranking platforms by
//! learned interference susceptibility (paper Sec 5.4 / Fig 12).
//!
//! ```sh
//! cargo run --release --example embedding_explorer
//! ```

use pitot::{train, PitotConfig};
use pitot_analysis::{interference_matrix_norm, neighborhood_purity, Tsne, TsneConfig};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use std::collections::HashMap;

fn main() {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.8, 0);
    let trained = train(&dataset, &split, &PitotConfig::fast());

    // Workload embeddings cluster by benchmark suite (paper Fig 7).
    let emb = trained.model.workload_embeddings(&dataset, 0);
    let mut suite_ids = HashMap::new();
    let labels: Vec<usize> = dataset
        .workload_suites
        .iter()
        .map(|s| {
            let next = suite_ids.len();
            *suite_ids.entry(s.clone()).or_insert(next)
        })
        .collect();
    let purity = neighborhood_purity(&emb, &labels, 8);
    println!(
        "workload embedding 8-NN suite purity: {purity:.3} ({} suites)",
        suite_ids.len()
    );

    // Project to 2-D for plotting (prints per-suite centroids).
    let coords = Tsne::new(TsneConfig {
        iterations: 250,
        ..TsneConfig::default()
    })
    .embed(&emb);
    println!("\nt-SNE suite centroids:");
    for (suite, id) in &suite_ids {
        let pts: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == *id)
            .map(|(i, _)| i)
            .collect();
        let cx: f32 = pts.iter().map(|&i| coords[(i, 0)]).sum::<f32>() / pts.len() as f32;
        let cy: f32 = pts.iter().map(|&i| coords[(i, 1)]).sum::<f32>() / pts.len() as f32;
        println!("  {suite:<12} ({cx:>7.2}, {cy:>7.2})  n={}", pts.len());
    }

    // Platforms ranked by learned interference magnitude ‖F_j‖₂ (Fig 12d):
    // the platforms Pitot considers most contention-prone.
    let pe = trained.model.platform_embeddings(&dataset);
    let mut norms: Vec<(usize, f32)> = (0..dataset.n_platforms)
        .map(|p| (p, interference_matrix_norm(&pe.vs, &pe.vg, p)))
        .collect();
    norms.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nmost interference-prone platforms by ‖F_j‖₂:");
    for (p, n) in norms.iter().take(5) {
        println!("  {:<48} {n:.3}", testbed.platform_name(*p));
    }
    println!("least interference-prone:");
    for (p, n) in norms.iter().rev().take(5) {
        println!("  {:<48} {n:.3}", testbed.platform_name(*p));
    }
}
