//! Compressed-towers quickstart: walk the compression ladder — dense,
//! int8-quantized, magnitude-pruned, pruned+int8 — recalibrate the
//! conformal layer on each compressed model's own residuals, and watch
//! coverage hold at every level while the interval width absorbs the
//! compression error. A stale arm (compressed predictions under the
//! *dense* calibration) shows the undercoverage recalibration fixes.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example compress
//! ```
//!
//! The final line prints `digest=<16 hex digits>` — an FNV-1a hash of
//! every served bound across every level. The int8 kernels accumulate in
//! exact i32 arithmetic, so the digest is bitwise identical regardless of
//! `PITOT_THREADS`; CI runs this example twice at different thread counts
//! and diffs the two lines.

use pitot::{train, CompressedTower, CompressionSpec, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::{HeadSelection, PooledConformal, PredictionSet, SweepCalibration};
use pitot_testbed::{split::Split, Dataset, Observation, Testbed, TestbedConfig};

const EPSILON: f32 = 0.1;

fn preds(
    trained: &TrainedPitot,
    dataset: &Dataset,
    cache: &pitot::TowerCache,
    idx: &[usize],
) -> Vec<Vec<f32>> {
    let refs: Vec<&Observation> = idx.iter().map(|&i| &dataset.observations[i]).collect();
    trained.predict_log_runtime_cached(cache, &refs)
}

fn calibrate(
    trained: &TrainedPitot,
    dataset: &Dataset,
    cache: &pitot::TowerCache,
) -> PooledConformal {
    // Interleave the validation holdout into calibration / selection
    // halves, exactly as `pitot::train` does for the dense model.
    let cal_idx: Vec<usize> = trained.split.val.iter().copied().step_by(2).collect();
    let sel_idx: Vec<usize> = trained
        .split
        .val
        .iter()
        .copied()
        .skip(1)
        .step_by(2)
        .collect();
    let tp = |idx: &[usize]| -> (Vec<f32>, Vec<usize>) {
        idx.iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                (o.log_runtime(), o.interferers.len())
            })
            .unzip()
    };
    let cal_preds = preds(trained, dataset, cache, &cal_idx);
    let sel_preds = preds(trained, dataset, cache, &sel_idx);
    let (cal_t, cal_pool) = tp(&cal_idx);
    let (sel_t, sel_pool) = tp(&sel_idx);
    SweepCalibration::new(
        &PredictionSet {
            predictions: &cal_preds,
            targets_log: &cal_t,
            pools: &cal_pool,
        },
        sel_preds,
        sel_t,
        sel_pool,
        trained.model.config().objective.xis(),
    )
    .fit(EPSILON, HeadSelection::TightestOnValidation)
}

fn main() {
    // 1. Testbed, split, one dense model — the quickstart fixture.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);
    let test: Vec<usize> = split.test.clone();
    println!(
        "trained dense model: {} test observations, ε = {EPSILON}",
        test.len()
    );

    // 2. Walk the ladder. Each level gets its own frozen tower cache and
    //    its own conformal calibration fit on *its* residuals.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |bytes: &[u8], d: &mut u64| {
        for &b in bytes {
            *d ^= u64::from(b);
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let levels = [
        CompressionSpec::none(),
        CompressionSpec::int8(),
        CompressionSpec::pruned(0.5),
        CompressionSpec::pruned_int8(0.5),
    ];
    let mut dense_conformal: Option<PooledConformal> = None;
    let mut coverages = Vec::new();
    let mut widths = Vec::new();
    let mut last_preds: Vec<Vec<f32>> = Vec::new();
    println!("\nlevel        coverage   width    weight bytes");
    for spec in &levels {
        let tower = CompressedTower::new(&trained, spec);
        let cache = tower.tower_cache(&dataset);
        let p = preds(&trained, &dataset, &cache, &test);
        let conformal = calibrate(&trained, &dataset, &cache);
        let (mut covered, mut width_sum) = (0usize, 0.0f64);
        for (b, &i) in test.iter().enumerate() {
            let o = &dataset.observations[i];
            let head: Vec<f32> = p.iter().map(|h| h[b]).collect();
            let bound = conformal.bound_log(&head, o.interferers.len());
            covered += usize::from(bound >= o.log_runtime());
            width_sum += f64::from(bound - head[0]);
            fnv(&bound.to_bits().to_le_bytes(), &mut digest);
        }
        let coverage = covered as f32 / test.len() as f32;
        let width = (width_sum / test.len() as f64) as f32;
        println!(
            "{:<12} {:.4}     {:.4}   {} ({}% of dense)",
            spec.name(),
            coverage,
            width,
            tower.weight_bytes(),
            100 * tower.weight_bytes() / tower.dense_weight_bytes().max(1)
        );
        coverages.push(coverage);
        widths.push(width);
        if spec.is_none() {
            dense_conformal = Some(conformal);
        }
        last_preds = p;
    }

    // 3. The broken deployment: pruned+int8 predictions served under the
    //    dense model's stale calibration.
    let stale_conformal = dense_conformal.expect("dense level ran first");
    let mut stale_covered = 0usize;
    for (b, &i) in test.iter().enumerate() {
        let o = &dataset.observations[i];
        let head: Vec<f32> = last_preds.iter().map(|h| h[b]).collect();
        let bound = stale_conformal.bound_log(&head, o.interferers.len());
        stale_covered += usize::from(bound >= o.log_runtime());
        fnv(&bound.to_bits().to_le_bytes(), &mut digest);
    }
    let stale_coverage = stale_covered as f32 / test.len() as f32;
    println!(
        "\nstale arm (pruned+int8 under dense calibration): coverage {stale_coverage:.4} \
         vs recalibrated {:.4}",
        coverages[3]
    );

    // Recalibration restores coverage at every level; the stale arm
    // demonstrates what it restores it *from*.
    for (spec, &c) in levels.iter().zip(&coverages) {
        assert!(
            c >= 0.88,
            "{}: recalibrated coverage {c} below 0.88",
            spec.name()
        );
    }
    assert!(
        stale_coverage < coverages[3],
        "stale calibration failed to undercover"
    );
    assert!(
        widths[2] > widths[0],
        "pruned width did not absorb compression error"
    );
    // The CI-diffed replayability witness — keep this the last line.
    println!("digest={digest:016x}");
}
