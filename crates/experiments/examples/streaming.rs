//! Concurrent serving quickstart: run one trace through the real
//! threaded runtime (`ConcurrentFleet`) **and** its deterministic
//! simulated-clock twin (`FleetServer`), assert they agree bit for bit,
//! and report throughput for both.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example streaming
//! ```
//!
//! The final line prints `digest=<16 hex digits>` — an FNV-1a hash over
//! every outcome of the concurrent run (admission decisions, served
//! bounds, coverage flags). The digest is bitwise identical regardless of
//! `PITOT_THREADS` and of the lane worker count; CI runs this example
//! twice at different thread counts and diffs the two lines.

use pitot::{train, Objective, PitotConfig};
use pitot_serve::{
    run_trace_simulated, AdmissionConfig, ConcurrentConfig, ConcurrentFleet, DeadlineQuery,
    FaultPlan, FleetConfig, FleetServer, ServeConfig, TraceEvent, TraceOutcome,
};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    // 1. Cluster, history, model — as in the fleet quickstart.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // 2. One trace, two runtimes. Every third event is a deadline query,
    //    resolved three events later; the rest stream observations. A
    //    crash with warm rejoin plus a 3% corrupt-runtime rate (the
    //    observation-path fault subset the concurrent runtime supports)
    //    keeps the audit machinery honest under load.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut stream = split.test.clone();
    stream.shuffle(&mut rng);
    stream.truncate(600);
    let mut events: Vec<TraceEvent> = Vec::with_capacity(stream.len());
    let mut open: Option<(u64, f64)> = None;
    for (t, &i) in stream.iter().enumerate() {
        let o = dataset.observations[i].clone();
        match t % 3 {
            0 => {
                let deadline_s = f64::from(o.runtime_s) * rng.gen_range(0.75..3.0);
                open = Some((t as u64, f64::from(o.runtime_s)));
                events.push(TraceEvent::Deadline(DeadlineQuery {
                    id: t as u64,
                    workload: o.workload,
                    platform: o.platform,
                    interferers: o.interferers.clone(),
                    deadline_s,
                }));
            }
            1 => events.push(TraceEvent::Observe(o)),
            _ => match open.take() {
                Some((id, realized_s)) => events.push(TraceEvent::Resolve { id, realized_s }),
                None => events.push(TraceEvent::Observe(o)),
            },
        }
    }
    let cfg = || {
        let mut serve = ServeConfig::guarded(0.1);
        serve.window = 128;
        serve.watchdog_z = 0.0; // replica-local rollbacks would diverge from the snapshot
        FleetConfig {
            serve,
            replicas: 4,
            merge_every: 16,
            admission: AdmissionConfig::default(),
            compression: Vec::new(),
        }
    };
    let plan = FaultPlan::none(0x057A_EA41)
        .crash(2, 40, 120)
        .corrupt_observations(0.03);

    // 3. The concurrent runtime: sharded replicas behind MPSC lanes,
    //    micro-batch coalescing, snapshot read path.
    let mut conc = ConcurrentFleet::with_faults(
        trained.clone(),
        &dataset,
        ConcurrentConfig {
            fleet: cfg(),
            workers: None, // one lane per available thread, capped at replicas
        },
        plan.clone(),
    );
    conc.seed_calibration(&split.val);
    let t0 = Instant::now();
    let concurrent = conc.run_trace(&events);
    let conc_elapsed = t0.elapsed();
    println!(
        "concurrent: {} lanes over 4 replicas — {} events in {:.1} ms ({:.0} events/s)",
        conc.workers(),
        events.len(),
        conc_elapsed.as_secs_f64() * 1e3,
        events.len() as f64 / conc_elapsed.as_secs_f64()
    );
    for (k, p) in conc.progress().iter().enumerate() {
        println!(
            "  lane {k}: {} observations in {} batches (largest {})",
            p.processed, p.batches, p.max_batch
        );
    }

    // 4. The deterministic twin on the same trace.
    let mut sim = FleetServer::with_faults(trained, &dataset, cfg(), plan);
    sim.seed_calibration(&split.val);
    let t0 = Instant::now();
    let simulated = run_trace_simulated(&mut sim, 0.0, &events);
    let sim_elapsed = t0.elapsed();
    println!(
        "simulated twin: {} events in {:.1} ms ({:.0} events/s)",
        events.len(),
        sim_elapsed.as_secs_f64() * 1e3,
        events.len() as f64 / sim_elapsed.as_secs_f64()
    );

    // 5. Bitwise equivalence: outcomes, stats, and audits.
    assert_eq!(concurrent, simulated, "the runtimes diverged");
    assert_eq!(conc.stats(), sim.stats(), "fleet stats diverged");
    assert_eq!(conc.degraded_audit(), sim.degraded_audit());
    let stats = conc.stats();
    println!(
        "\ntwin check passed: {} observations ({} lost, {} quarantined), {} queries, coverage {:.3}, {} merges, {} warm rejoin(s)",
        stats.observations,
        stats.lost_observations,
        stats.guard.quarantined,
        stats.queries,
        stats.coverage(),
        stats.merges,
        stats.recoveries
    );

    // 6. The CI-diffed replayability witness over the concurrent outcomes.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fnv = |bytes: &[u8], d: &mut u64| {
        for &b in bytes {
            *d ^= u64::from(b);
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for out in &concurrent {
        match out {
            TraceOutcome::Observed { replica, feedback } => {
                fnv(&[*replica as u8], &mut digest);
                fnv(
                    &[feedback.as_ref().map_or(2, |f| u8::from(f.covered))],
                    &mut digest,
                );
            }
            TraceOutcome::Decided(o) => {
                fnv(
                    &[u8::from(o.decision.admitted()), u8::from(o.failover)],
                    &mut digest,
                );
                fnv(&o.prediction.bound_s.to_bits().to_le_bytes(), &mut digest);
            }
            TraceOutcome::Resolved(r) => fnv(&[r.map_or(2, u8::from)], &mut digest),
        }
    }
    assert_eq!(stats.recoveries, 1, "replica 2 must rejoin warm");
    assert!(stats.coverage() > 0.8, "faults collapsed coverage");
    // Keep this the last line.
    println!("digest={digest:016x}");
}
