//! Capacity-planning scenario: how much slack must we provision?
//!
//! A fleet operator must budget compute time for a batch of workloads on a
//! specific platform. Over-provisioning wastes hardware; under-provisioning
//! risks deadline misses. This example sweeps the miscoverage rate ε and
//! reports the total budgeted seconds versus the actual consumption — the
//! overprovisioning-vs-risk trade-off of paper Sec 3.5 (Eq 11).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_testbed::{split::Split, Testbed, TestbedConfig};

fn main() {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // The "batch": all held-out isolation observations on one busy platform.
    let platform = split
        .test
        .iter()
        .map(|&i| dataset.observations[i].platform)
        .next()
        .expect("non-empty test set");
    let batch: Vec<usize> = split
        .test
        .iter()
        .copied()
        .filter(|&i| dataset.observations[i].platform == platform)
        .take(200)
        .collect();
    let actual_total: f32 = batch
        .iter()
        .map(|&i| dataset.observations[i].runtime_s)
        .sum();

    println!(
        "capacity plan for {} ({} queued workloads, true total {:.1}s)\n",
        testbed.platform_name(platform as usize),
        batch.len(),
        actual_total
    );
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>10}",
        "ε", "budgeted (s)", "overhead", "misses", "coverage"
    );

    for eps in [0.2, 0.1, 0.05, 0.02] {
        let bounds = trained.fit_bounds(&dataset, eps, HeadSelection::TightestOnValidation);
        let budgets = bounds.bounds_s(&trained, &dataset, &batch);
        let budget_total: f32 = budgets.iter().sum();
        let misses = batch
            .iter()
            .zip(&budgets)
            .filter(|(&i, &b)| dataset.observations[i].runtime_s > b)
            .count();
        println!(
            "{:>6.2} {:>13.1}s {:>13.1}% {:>10} {:>9.1}%",
            eps,
            budget_total,
            100.0 * (budget_total - actual_total) / actual_total,
            misses,
            100.0 * (1.0 - misses as f32 / batch.len() as f32),
        );
    }

    println!(
        "\nSmaller ε buys more certainty at the cost of slack; Pitot's conformalized\n\
         quantile regression keeps that slack adaptive instead of one-size-fits-all."
    );
}
