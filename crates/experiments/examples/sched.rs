//! Scheduling quickstart: race the `pitot-sched` placement policies on one
//! closed loop and print each policy's decision digest.
//!
//! ```sh
//! cargo run --release -p pitot-experiments --example sched
//! ```
//!
//! The digests are the workspace's cross-process determinism check:
//! placement decisions must be bitwise-identical across `PITOT_THREADS`
//! settings, and because the thread count is latched process-wide at first
//! use, the comparison has to span processes. CI runs this example twice —
//! `PITOT_THREADS=1` and the default — and diffs the printed `digest=`
//! lines.

use pitot::{train, Objective, PitotConfig};
use pitot_orchestrator::{ClusterSim, JobStream, PlacementPolicy};
use pitot_sched::{ConformalGreedy, LeastLoaded, PointGreedy, Random, Traced};
use pitot_serve::{Event, PitotServer, ServeConfig, ServingPredictor};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // 1. Cluster, history, model — as in the quickstart. Training runs
    //    through the parallel linalg plane, so the digest below covers the
    //    whole pipeline, not just the argmin scan.
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let config = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..PitotConfig::fast()
    };
    let trained = train(&dataset, &split, &config);

    // 2. One job stream, one edge site, four policies. Each policy gets a
    //    fresh serving instance so its calibration trajectory is its own.
    let jobs = JobStream::generate_with_deadlines(&testbed, 200, 0.05, (1.3, 3.0), 7);
    let site: Vec<usize> = (0..6).collect();
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(ConformalGreedy::new()),
        Box::new(PointGreedy::new()),
        Box::new(LeastLoaded::new()),
        Box::new(Random::new(7)),
    ];

    println!("closed loop: 200 jobs on a 6-platform site, live recalibration");
    for policy in policies {
        let mut serve_cfg = ServeConfig::at(0.1);
        serve_cfg.window = 256;
        let mut server = PitotServer::new(trained.clone(), dataset.clone(), serve_cfg);
        server.seed_calibration(&split.val);
        let server = Rc::new(RefCell::new(server));
        let predictor = ServingPredictor::new(Rc::clone(&server));

        let mut traced = Traced::new(policy);
        let report = ClusterSim::new(&testbed)
            .restrict_to(&site)
            .run_with_observer(&jobs, &mut traced, &predictor, &mut |obs, now| {
                let mut srv = server.borrow_mut();
                let at = now.max(srv.now_s());
                srv.on_event(at, Event::Observe(obs));
            });

        println!(
            "  {:<24} completed={} violations={:>3} mean_response={:>6.3}s \
             coverage={:.3} digest={:016x}",
            traced.name(),
            report.completed,
            report.violations,
            report.mean_response_s,
            server.borrow().rolling_coverage(),
            traced.digest()
        );
    }
}
