//! Conformal variants integrated with the real Pitot pipeline: every
//! calibration strategy in `pitot-conformal` must deliver its coverage
//! guarantee when wrapped around actual trained models on testbed data.

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::{
    conditional_coverage, coverage, head_spread, round_robin_folds, CoverageCurve, CvPlus,
    MondrianConformal, ScaledConformal, SplitConformal, TwoSidedCqr,
};
use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};
use std::sync::OnceLock;

struct Env {
    dataset: Dataset,
    split: Split,
    trained: pitot::TrainedPitot,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let dataset = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&dataset, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 600;
        let trained = train(&dataset, &split, &cfg);
        Env {
            dataset,
            split,
            trained,
        }
    })
}

fn log_targets(dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
    idx.iter()
        .map(|&i| dataset.observations[i].log_runtime())
        .collect()
}

fn test_subset(e: &Env, cap: usize) -> Vec<usize> {
    let stride = (e.split.test.len() / cap).max(1);
    e.split.test.iter().copied().step_by(stride).collect()
}

/// Scaled conformal (CQR-r) with head-spread dispersion covers on real data
/// and adapts: interference-heavy observations get wider bounds.
#[test]
fn scaled_conformal_covers_on_pitot_predictions() {
    let e = env();
    let eps = 0.1;
    let cal_preds = e.trained.predict_log_runtime(&e.dataset, &e.split.val);
    let cal_t = log_targets(&e.dataset, &e.split.val);
    let disp = head_spread(&cal_preds[0], &cal_preds[2]); // ξ=0.5 vs ξ=0.9
    let sc = ScaledConformal::fit(&cal_preds[0], &disp, &cal_t, eps);

    let test = test_subset(e, 4000);
    let test_preds = e.trained.predict_log_runtime(&e.dataset, &test);
    let test_t = log_targets(&e.dataset, &test);
    let test_disp = head_spread(&test_preds[0], &test_preds[2]);
    let bounds = sc.upper_bounds_log(&test_preds[0], &test_disp);
    let cov = coverage(&bounds, &test_t);
    assert!(cov >= 1.0 - eps - 0.03, "CQR-r coverage {cov}");
}

/// Mondrian calibration keyed by interference arity holds coverage in every
/// group — the generalized form of the paper's calibration pools.
#[test]
fn mondrian_by_arity_covers_per_group() {
    let e = env();
    let eps = 0.1;
    let groups_of = |idx: &[usize]| -> Vec<u64> {
        idx.iter()
            .map(|&i| e.dataset.observations[i].interferers.len() as u64)
            .collect()
    };
    let cal_preds = e.trained.predict_log_runtime(&e.dataset, &e.split.val);
    let cal_t = log_targets(&e.dataset, &e.split.val);
    let mc = MondrianConformal::fit(&cal_preds[0], &cal_t, &groups_of(&e.split.val), eps);

    let test = test_subset(e, 6000);
    let test_preds = e.trained.predict_log_runtime(&e.dataset, &test);
    let test_t = log_targets(&e.dataset, &test);
    let test_g = groups_of(&test);
    let bounds = mc.upper_bounds_log(&test_preds[0], &test_g);
    for (group, cov) in conditional_coverage(&bounds, &test_t, &test_g) {
        assert!(cov >= 1.0 - eps - 0.05, "arity {group} coverage {cov}");
    }
    // Noisier groups should need larger offsets.
    assert!(
        mc.gamma_for(3) > mc.gamma_for(0),
        "4-way interference should calibrate wider than isolation"
    );
}

/// CV+ over fold-trained Pitot models covers without a dedicated
/// calibration split.
#[test]
fn cv_plus_over_fold_trained_pitot_models() {
    let e = env();
    let eps = 0.15;
    let k = 3;
    // Fold assignment over the training pool; each fold model trains on the
    // other folds and provides out-of-fold scores.
    let pool: Vec<usize> = e.split.train.clone();
    let folds = round_robin_folds(pool.len(), k);
    let mut fold_models = Vec::new();
    for f in 0..k {
        let train_idx: Vec<usize> = pool
            .iter()
            .zip(&folds)
            .filter(|(_, &ff)| ff != f)
            .map(|(&i, _)| i)
            .collect();
        let sub = Split {
            train: train_idx,
            val: e.split.val.clone(),
            test: vec![],
            train_fraction: e.split.train_fraction,
            seed: f as u64,
        };
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 300;
        fold_models.push(train(&e.dataset, &sub, &cfg));
    }

    // Out-of-fold scores on a subsample (keep the test fast).
    let sample: Vec<usize> = (0..pool.len()).step_by(8).collect();
    let oof: Vec<f32> = sample
        .iter()
        .map(|&s| fold_models[folds[s]].predict_log_runtime(&e.dataset, &[pool[s]])[0][0])
        .collect();
    let targets: Vec<f32> = sample
        .iter()
        .map(|&s| e.dataset.observations[pool[s]].log_runtime())
        .collect();
    let fold_of: Vec<usize> = sample.iter().map(|&s| folds[s]).collect();
    let cv = CvPlus::fit(&oof, &targets, &fold_of, k, eps);

    let test = test_subset(e, 800);
    let per_fold: Vec<Vec<f32>> = fold_models
        .iter()
        .map(|m| m.predict_log_runtime(&e.dataset, &test)[0].clone())
        .collect();
    let bounds = cv.bounds_log(&per_fold);
    let cov = coverage(&bounds, &log_targets(&e.dataset, &test));
    // CV+'s worst case is 1−2ε; typical is ≈1−ε.
    assert!(cov >= 1.0 - 2.0 * eps, "CV+ coverage {cov}");
}

/// The coverage curve diagnostic validates the whole split-conformal grid on
/// real predictions.
#[test]
fn coverage_curve_is_valid_across_epsilons() {
    let e = env();
    let cal_preds = e.trained.predict_log_runtime(&e.dataset, &e.split.val);
    let cal_t = log_targets(&e.dataset, &e.split.val);
    let test = test_subset(e, 4000);
    let test_preds = e.trained.predict_log_runtime(&e.dataset, &test);
    let test_t = log_targets(&e.dataset, &test);

    let grid = [0.02f32, 0.05, 0.1, 0.2];
    let curve = CoverageCurve::evaluate(&grid, &test_t, |eps| {
        let sc = SplitConformal::fit(&cal_preds[0], &cal_t, eps);
        test_preds[0]
            .iter()
            .map(|&p| sc.upper_bound_log(p))
            .collect()
    });
    assert!(
        curve.valid_everywhere(0.03),
        "coverages {:?}",
        curve.coverage
    );
    assert!(curve.calibration_error() < 0.05);
}

/// Two-sided CQR around the median/high heads yields intervals that cover
/// and that flag artificially corrupted runtimes (the phase-shift detector).
#[test]
fn two_sided_intervals_cover_and_detect_anomalies() {
    let e = env();
    let eps = 0.1;
    let cal_preds = e.trained.predict_log_runtime(&e.dataset, &e.split.val);
    let cal_t = log_targets(&e.dataset, &e.split.val);
    let cqr = TwoSidedCqr::fit(&cal_preds[0], &cal_preds[2], &cal_t, eps);

    let test = test_subset(e, 4000);
    let test_preds = e.trained.predict_log_runtime(&e.dataset, &test);
    let test_t = log_targets(&e.dataset, &test);
    let ivs = cqr.intervals_log(&test_preds[0], &test_preds[2]);
    let cov = pitot_conformal::interval_coverage(&ivs, &test_t);
    assert!(cov >= 1.0 - eps - 0.03, "interval coverage {cov}");

    // Corrupt targets by 20x in either direction: detection must fire far
    // more often than the nominal false-positive rate.
    let fast: Vec<f32> = test_t.iter().map(|t| t - 3.0).collect();
    let slow: Vec<f32> = test_t.iter().map(|t| t + 3.0).collect();
    for corrupted in [fast, slow] {
        let flagged = ivs
            .iter()
            .zip(&corrupted)
            .filter(|(iv, &t)| !iv.contains(t))
            .count();
        let rate = flagged as f32 / corrupted.len() as f32;
        assert!(rate > 0.8, "anomaly detection rate {rate}");
    }
}
