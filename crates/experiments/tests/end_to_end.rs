//! End-to-end statistical properties of the full reproduction pipeline.

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_testbed::{split::Split, Testbed, TestbedConfig};

/// Conformal validity across epsilon values, on a model trained once.
#[test]
fn bounds_are_valid_across_epsilons() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.6, 3);
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 400;
    cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
    let trained = train(&ds, &split, &cfg);

    let test: Vec<usize> = split.test.iter().copied().take(6000).collect();
    for eps in [0.2f32, 0.1, 0.05] {
        let bounds = trained.fit_bounds(&ds, eps, HeadSelection::TightestOnValidation);
        let cov = bounds.coverage(&trained, &ds, &test);
        // 3.5σ finite-sample slack on both calibration and test sides.
        let slack = 3.5 * (2.0 * eps * (1.0 - eps) / 2000.0).sqrt() + 0.01;
        assert!(cov >= 1.0 - eps - slack, "coverage {cov} at eps {eps}");
    }
}

/// The quantile-selection machinery must never do worse than naive CQR by a
/// meaningful margin (paper App B.2 claims it helps).
#[test]
fn quantile_selection_is_no_worse_than_naive() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.6, 4);
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 400;
    cfg.objective = Objective::paper_quantiles();
    let trained = train(&ds, &split, &cfg);
    let test: Vec<usize> = split.test.iter().copied().take(5000).collect();

    let eps = 0.1;
    let tight = trained.fit_bounds(&ds, eps, HeadSelection::TightestOnValidation);
    let naive = trained.fit_bounds(&ds, eps, HeadSelection::NaiveXi);
    let m_tight = tight.margin(&trained, &ds, &test);
    let m_naive = naive.margin(&trained, &ds, &test);
    assert!(
        m_tight <= m_naive * 1.1,
        "selection margin {m_tight} much worse than naive {m_naive}"
    );
}

/// Training on more data must not make the model meaningfully worse
/// (monotone data-efficiency trend, Figs 4/6).
#[test]
fn more_data_helps() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 500;

    let eval = |fraction: f32| {
        let split = Split::stratified(&ds, fraction, 7);
        let trained = train(&ds, &split, &cfg.clone());
        let iso: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2500)
            .collect();
        trained.mape(&ds, &iso, None)
    };
    let low = eval(0.1);
    let high = eval(0.8);
    assert!(
        high < low * 1.15,
        "more data should not hurt: 10% → {low}, 80% → {high}"
    );
}

/// Replicates with different seeds must produce different models (no seed
/// leakage) while identical seeds reproduce exactly.
#[test]
fn replicate_independence() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.5, 0);
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 80;
    let a = train(&ds, &split, &cfg.clone().with_seed(0));
    let b = train(&ds, &split, &cfg.clone().with_seed(0));
    let c = train(&ds, &split, &cfg.with_seed(1));
    let idx = [split.test[0], split.test[1]];
    assert_eq!(
        a.predict_log_runtime(&ds, &idx),
        b.predict_log_runtime(&ds, &idx)
    );
    assert_ne!(
        a.predict_log_runtime(&ds, &idx),
        c.predict_log_runtime(&ds, &idx)
    );
}
