//! Cross-crate integration tests: simulator → features → model → conformal.

use pitot::{train, InterferenceMode, Objective, PitotConfig};
use pitot_baselines::{LogPredictor, MatrixFactorization, MfConfig};
use pitot_conformal::HeadSelection;
use pitot_experiments::{Harness, Method, PitotPredictor, Scale};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};

fn small() -> (pitot_testbed::Dataset, Split) {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.6, 0);
    (ds, split)
}

/// The full pipeline must beat the scaling baseline's residual alone and
/// produce valid bounds — the paper's core claims in miniature.
#[test]
fn end_to_end_accuracy_and_coverage() {
    let (ds, split) = small();
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 500;
    cfg.objective = Objective::Quantiles(vec![0.5, 0.9, 0.95]);
    let trained = train(&ds, &split, &cfg);

    let iso: Vec<usize> = split
        .test
        .iter()
        .copied()
        .filter(|&i| ds.observations[i].interferers.is_empty())
        .take(3000)
        .collect();
    let mape = trained.mape(&ds, &iso, None);
    assert!(mape < 0.5, "isolation MAPE {mape}");

    let bounds = trained.fit_bounds(&ds, 0.1, HeadSelection::TightestOnValidation);
    let cov = bounds.coverage(&trained, &ds, &split.test);
    assert!(cov >= 0.85, "coverage {cov} at eps=0.1");
}

/// Interference-aware training must beat interference-blind training on
/// interference-heavy test data (the Fig 4c ordering).
#[test]
fn interference_awareness_matters() {
    let (ds, split) = small();
    let mut aware_cfg = PitotConfig::tiny();
    // 500 steps leaves the interference term undertrained and the ordering
    // flips on some RNG streams; by 1500 steps the aware model wins cleanly.
    aware_cfg.steps = 1500;
    let mut ignore_cfg = aware_cfg.clone();
    ignore_cfg.interference = InterferenceMode::Ignore;

    let aware = train(&ds, &split, &aware_cfg);
    let ignore = train(&ds, &split, &ignore_cfg);

    let with_intf: Vec<usize> = split
        .test
        .iter()
        .copied()
        .filter(|&i| !ds.observations[i].interferers.is_empty())
        .take(4000)
        .collect();
    let m_aware = aware.mape(&ds, &with_intf, None);
    let m_ignore = ignore.mape(&ds, &with_intf, None);
    assert!(
        m_aware < m_ignore,
        "aware {m_aware} should beat ignore {m_ignore} under interference"
    );
}

/// Pitot must beat pure matrix factorization at a low train fraction — the
/// data-efficiency claim (Fig 6a), driven by side information.
#[test]
fn data_efficiency_vs_matrix_factorization() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.15, 0);
    let mut p_cfg = PitotConfig::tiny();
    p_cfg.steps = 500;
    let pitot_model = train(&ds, &split, &p_cfg);
    let mut mf_cfg = MfConfig::tiny();
    mf_cfg.train.steps = 2500;
    let mf = MatrixFactorization::train(&ds, &split, &mf_cfg);

    let iso: Vec<usize> = split
        .test
        .iter()
        .copied()
        .filter(|&i| ds.observations[i].interferers.is_empty())
        .take(3000)
        .collect();
    let m_pitot = pitot_model.mape(&ds, &iso, None);
    let m_mf = mf.mape(&ds, &iso);
    assert!(
        m_pitot < m_mf,
        "Pitot {m_pitot} should beat MF {m_mf} at 15% training data"
    );
}

/// The experiments harness end to end on one tiny configuration.
#[test]
fn harness_methods_are_comparable() {
    let mut h = Harness::new(Scale::Fast);
    h.replicates = 1;
    h.eval_cap = 1500;
    let split = h.split(0.5, 0);
    let mut cfg = h.pitot_config();
    cfg.steps = 200;
    cfg.eval_every = 100;
    let model = Method::Pitot(cfg).train(&h.dataset, &split, 0);
    let idx = h.test_without_interference(&split);
    let mape = model.mape(&h.dataset, &idx);
    assert!(mape.is_finite() && mape > 0.0 && mape < 1.0, "MAPE {mape}");
}

/// PitotPredictor adapter must agree with the underlying model.
#[test]
fn predictor_adapter_is_transparent() {
    let (ds, split) = small();
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 100;
    let trained = train(&ds, &split, &cfg);
    let idx: Vec<usize> = split.test.iter().copied().take(50).collect();
    let direct = trained.predict_log_runtime(&ds, &idx);
    let adapted = PitotPredictor(trained).predict_log(&ds, &idx);
    assert_eq!(direct, adapted);
}

/// Serialization round-trip across crate boundaries (model state is serde).
#[test]
fn dataset_serializes() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let json = serde_json::to_string(&ds.observations[..100].to_vec()).unwrap();
    let back: Vec<pitot_testbed::Observation> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 100);
    assert_eq!(back[0], ds.observations[0]);
}
