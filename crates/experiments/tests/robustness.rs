//! Failure injection and extreme-configuration robustness: the pipeline must
//! stay well-defined when the environment degrades — high crash rates,
//! zero noise, tiny timeouts, minimal data.

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_testbed::{split::Split, DatasetStats, Testbed, TestbedConfig};

/// A cluster where half of all (workload, platform) combinations crash:
/// collection must skip them and every model must still train.
#[test]
fn heavy_crash_rate_still_yields_a_trainable_dataset() {
    let cfg = TestbedConfig {
        crash_rate: 0.5,
        ..TestbedConfig::small()
    };
    let ds = Testbed::generate(&cfg).collect_dataset();
    let stats = DatasetStats::compute(&ds);
    assert!(stats.isolation_fill < 0.6, "crashes should leave holes");
    assert!(stats.per_mode[0] > 500, "enough isolation data survives");

    let split = Split::stratified(&ds, 0.6, 0);
    let mut pitot_cfg = PitotConfig::tiny();
    pitot_cfg.steps = 150;
    let trained = train(&ds, &split, &pitot_cfg);
    let idx: Vec<usize> = split.test.iter().copied().take(500).collect();
    let mape = trained.mape(&ds, &idx, None);
    assert!(mape.is_finite() && mape > 0.0);
}

/// Zero measurement noise: the learning problem becomes (nearly)
/// deterministic and error should drop well below the noisy setting.
#[test]
fn zero_noise_floor_improves_error() {
    let noisy_cfg = TestbedConfig::small();
    let clean_cfg = TestbedConfig {
        noise_scale: 0.0,
        ..TestbedConfig::small()
    };
    let mut pitot_cfg = PitotConfig::tiny();
    pitot_cfg.steps = 400;

    let mape_for = |cfg: &TestbedConfig| {
        let ds = Testbed::generate(cfg).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        let trained = train(&ds, &split, &pitot_cfg);
        let iso: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2000)
            .collect();
        trained.mape(&ds, &iso, None)
    };
    let noisy = mape_for(&noisy_cfg);
    let clean = mape_for(&clean_cfg);
    assert!(
        clean < noisy,
        "removing measurement noise must reduce error: clean {clean} vs noisy {noisy}"
    );
}

/// An aggressive timeout truncates the right tail of the runtime
/// distribution without corrupting what remains.
#[test]
fn tight_timeout_truncates_the_tail() {
    let cfg = TestbedConfig {
        timeout_s: 2.0,
        ..TestbedConfig::small()
    };
    let ds = Testbed::generate(&cfg).collect_dataset();
    assert!(!ds.observations.is_empty());
    for o in &ds.observations {
        assert!(o.runtime_s <= 2.0, "observation exceeds the timeout window");
    }
    let stats = DatasetStats::compute(&ds);
    assert!(stats.max_runtime_s <= 2.0);
}

/// Conformal calibration stays valid at the smallest workable holdout: the
/// finite-sample ⌈(n+1)(1−ε)⌉ rank must clamp, not panic, and coverage on
/// the training distribution must not collapse.
#[test]
fn conformal_with_minimal_calibration_data() {
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    // A 3% train fraction leaves only a sliver for validation/calibration.
    let split = Split::stratified(&ds, 0.03, 0);
    let mut cfg = PitotConfig::tiny();
    cfg.objective = Objective::Quantiles(vec![0.5, 0.9]);
    cfg.steps = 150;
    let trained = train(&ds, &split, &cfg);
    let bounds = trained.fit_bounds(&ds, 0.1, HeadSelection::TightestOnValidation);
    let test: Vec<usize> = split.test.iter().copied().take(3000).collect();
    let cov = bounds.coverage(&trained, &ds, &test);
    // With a tiny calibration set the conservative rank over-covers; it must
    // never *under*-cover badly.
    assert!(
        cov >= 0.8,
        "coverage {cov} collapsed with minimal calibration data"
    );
}

/// The workload-scale knob produces consistent catalogs at extremes.
#[test]
fn workload_scale_extremes_are_consistent() {
    for scale in [0.03f32, 1.0] {
        let cfg = TestbedConfig {
            workload_scale: scale,
            ..TestbedConfig::small()
        };
        let tb = Testbed::generate(&cfg);
        // Every suite keeps at least its 2-workload floor.
        assert!(tb.workloads().len() >= 12);
        let ds = tb.collect_dataset();
        let stats = DatasetStats::compute(&ds);
        assert_eq!(stats.per_suite.len(), 6);
        assert_eq!(stats.observed_workloads, tb.workloads().len());
    }
}

/// Training with every ablation switch at once (worst-case configuration
/// surface) must not panic or produce NaNs.
#[test]
fn ablation_switch_matrix_is_nan_free() {
    use pitot::{InterferenceMode, LossSpace};
    let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
    let split = Split::stratified(&ds, 0.5, 0);
    let idx: Vec<usize> = split.test.iter().copied().take(100).collect();
    for loss_space in [
        LossSpace::LogResidual,
        LossSpace::Log,
        LossSpace::NaiveProportional,
    ] {
        for interference in [
            InterferenceMode::Aware,
            InterferenceMode::Discard,
            InterferenceMode::Ignore,
        ] {
            for (use_w, use_p) in [(true, false), (false, true), (false, false)] {
                let mut cfg = PitotConfig::tiny();
                cfg.steps = 40;
                cfg.eval_every = 20;
                cfg.loss_space = loss_space;
                cfg.interference = interference;
                cfg.use_workload_features = use_w;
                cfg.use_platform_features = use_p;
                let trained = train(&ds, &split, &cfg);
                let preds = trained.predict_runtime(&ds, &idx);
                assert!(
                    preds.iter().all(|p| p.is_finite() && *p > 0.0),
                    "non-finite prediction under {loss_space:?}/{interference:?}/w={use_w}/p={use_p}"
                );
            }
        }
    }
}
