//! End-to-end orchestration: train Pitot, calibrate bounds, and place a job
//! stream on the simulated cluster — the full loop the paper motivates.

use pitot::{train, Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_orchestrator::{
    BaselinePolicy, ClusterSim, JobStream, OraclePredictor, PitotPredictor, PlacementPolicy,
    RuntimePredictor, ScalingPredictor,
};
use pitot_testbed::{split::Split, Testbed, TestbedConfig};
use std::sync::OnceLock;

struct Env {
    testbed: Testbed,
    dataset: pitot_testbed::Dataset,
    trained: pitot::TrainedPitot,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let testbed = Testbed::generate(&TestbedConfig::small());
        let dataset = testbed.collect_dataset();
        let split = Split::stratified(&dataset, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 600;
        let trained = train(&dataset, &split, &cfg);
        Env {
            testbed,
            dataset,
            trained,
        }
    })
}

fn site(testbed: &Testbed) -> Vec<usize> {
    let n = testbed.platforms().len();
    (0..n).step_by(n.div_ceil(12)).collect()
}

/// Every (policy, predictor) pair drains the stream completely on a
/// restricted site under pressure.
#[test]
fn all_configurations_complete_under_load() {
    let e = env();
    let jobs = JobStream::generate_with_deadlines(&e.testbed, 150, 0.02, (1.3, 3.0), 1);
    let oracle = OraclePredictor::new(&e.testbed);
    let pitot_pred = PitotPredictor::new(&e.trained, &e.dataset);
    let site = site(&e.testbed);

    for mut policy in [
        BaselinePolicy::random(3),
        BaselinePolicy::least_loaded(),
        BaselinePolicy::greedy_fastest(),
        BaselinePolicy::deadline_aware(),
    ] {
        for pred in [
            &oracle as &dyn pitot_orchestrator::RuntimePredictor,
            &pitot_pred,
        ] {
            let report =
                ClusterSim::new(&e.testbed)
                    .restrict_to(&site)
                    .run(&jobs, &mut policy, pred);
            assert_eq!(report.completed, 150, "{} / {}", policy.name(), pred.name());
        }
    }
}

/// The paper's core placement claim in miniature: interference-aware
/// prediction places strictly better than the interference-blind scaling
/// baseline under contention.
#[test]
fn interference_awareness_reduces_violations() {
    let e = env();
    let split = Split::stratified(&e.dataset, 0.6, 0);
    let scaling = ScalingPredictor::new(pitot::ScalingBaseline::fit(&e.dataset, &split.train));
    let pitot_pred = PitotPredictor::new(&e.trained, &e.dataset);
    let jobs = JobStream::generate_with_deadlines(&e.testbed, 250, 0.02, (1.3, 3.0), 2);
    let site = site(&e.testbed);

    let run = |pred: &dyn pitot_orchestrator::RuntimePredictor| {
        ClusterSim::new(&e.testbed).restrict_to(&site).run(
            &jobs,
            &mut BaselinePolicy::greedy_fastest(),
            pred,
        )
    };
    let blind = run(&scaling);
    let aware = run(&pitot_pred);
    assert!(
        aware.violation_rate() <= blind.violation_rate(),
        "aware {} vs blind {}",
        aware.violation_rate(),
        blind.violation_rate()
    );
    assert!(
        aware.mean_response_s <= blind.mean_response_s * 1.2,
        "aware response {} vs blind {}",
        aware.mean_response_s,
        blind.mean_response_s
    );
}

/// Conformal budgets keep the deadline-aware policy's violation rate near
/// the configured miscoverage under load.
#[test]
fn conformal_budgets_bound_violations() {
    let e = env();
    let eps = 0.1f32;
    let bounds = e
        .trained
        .fit_bounds(&e.dataset, eps, HeadSelection::TightestOnValidation);
    let pred = PitotPredictor::with_bounds(&e.trained, &e.dataset, bounds);
    let jobs = JobStream::generate_with_deadlines(&e.testbed, 250, 0.02, (1.3, 3.0), 3);
    let report = ClusterSim::new(&e.testbed)
        .restrict_to(&site(&e.testbed))
        .run(&jobs, &mut BaselinePolicy::deadline_aware(), &pred);
    // The guarantee is per accepted placement at placement-time co-location;
    // queueing and post-placement arrivals add slack, so assert 2ε.
    assert!(
        report.violation_rate() <= 2.0 * eps as f64 + 0.02,
        "violation rate {} at ε={eps}",
        report.violation_rate()
    );
}

/// Bound queries through the orchestrator facade agree with the dataset
/// path of `RuntimeBounds` for matching observations.
#[test]
fn predictor_facade_is_consistent_with_core_bounds() {
    let e = env();
    let bounds = e
        .trained
        .fit_bounds(&e.dataset, 0.1, HeadSelection::TightestOnValidation);
    let pred = PitotPredictor::with_bounds(&e.trained, &e.dataset, bounds.clone());
    let split = Split::stratified(&e.dataset, 0.6, 0);
    for &oi in split.test.iter().take(25) {
        let o = &e.dataset.observations[oi];
        let via_core = bounds.bounds_s(&e.trained, &e.dataset, &[oi])[0] as f64;
        let via_pred = pred.bound_s(o.workload, o.platform as usize, &o.interferers);
        assert!(
            (via_core - via_pred).abs() / via_core < 1e-4,
            "core {via_core} vs facade {via_pred}"
        );
    }
}
