//! Degraded-mode fleet serving under injected faults (extension).
//!
//! `ext-fleet` established that a merged-window fleet matches centralized
//! calibration when everything is healthy. This experiment asks the
//! operational question that actually decides whether the fleet is
//! deployable: **what do the bounds cost when things break?** The same
//! drift stream is replayed through a 3-replica fleet while a seeded
//! [`pitot_serve::FaultPlan`] injects a full coordinator outage with a
//! replica crash/rejoin inside it, plus lossy merge summaries throughout.
//!
//! Three arms isolate the degradation ladder:
//!
//! - **no faults** — the `ext-fleet` baseline under this stream;
//! - **chaos (gossip)** — during the outage replicas run pairwise gossip
//!   CRDT merges, so calibrations track the live union;
//! - **chaos (stale fallback)** — gossip disabled; replicas cross the
//!   staleness threshold and serve honestly *widened* local fallback
//!   bounds instead.
//!
//! Expected shape: coverage in the degraded segments stays bounded (the
//! acceptance floor is 0.80 at ε = 0.1 — gossip keeps bounds near the
//! union fit, and the widened fallback over-covers by construction) and
//! recovers to ≥ 0.88 once the faults clear and the crashed replica has
//! rejoined warm. Chaos runs are replayable: the per-arm decision digest
//! is bitwise-stable for a fixed fault seed regardless of `PITOT_THREADS`
//! (re-verified per run here, and diffed across thread counts in CI via
//! the `chaos` example).

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use crate::serving::{weighted_stream, DRIFT_LOG, SEGMENTS, SHIFT_MIX, WARM_MIX};
use pitot::{Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, FaultPlan, FleetConfig, FleetServer, ServeConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fleet size; the fault plan crashes replica 1 of these.
const REPLICAS: usize = 3;
/// Coordinator merge cadence (fleet-wide observations).
const MERGE_EVERY: usize = 16;
/// Per-replica sliding window. Small enough that the union window has
/// fully turned over to shifted scores before the faults begin, so the
/// degraded segments measure fault effects, not drift adaptation.
const WINDOW: usize = 128;
/// Deadline multiplier range on the realized runtime (as `ext-fleet`).
const DEADLINE_MULT: (f32, f32) = (0.75, 3.0);
/// Seed of every arm's fault-plan RNG (drops, delays, retry jitter,
/// gossip pairings). CI replays the `chaos` example under different
/// `PITOT_THREADS` with this seed and diffs the decision digests.
pub const FAULT_SEED: u64 = 0xC4A0_5EED;

/// The fault schedule, scaled to an `n`-event stream: a coordinator
/// outage over `[0.45n, 0.70n)`, replica 1 crashing at `0.50n` and
/// rejoining warm at `0.65n` (inside the outage), and 10%/5% of merge
/// summaries dropped/delayed throughout.
pub fn fault_plan(n: usize, gossip: bool) -> FaultPlan {
    let mut plan = FaultPlan::none(FAULT_SEED)
        .coordinator_outage((45 * n) / 100, (70 * n) / 100)
        .crash(1, n / 2, (65 * n) / 100)
        .drop_summaries(0.10)
        .delay_summaries(0.05, 2);
    plan.gossip_during_outage = gossip;
    plan
}

/// Segment indices (of the stream's 8 equal slices) that overlap the
/// fault schedule for
/// an `n`-event stream — where coverage is allowed to degrade (bounded).
pub fn degraded_segments(n: usize) -> Vec<usize> {
    let seg = n.div_ceil(SEGMENTS).max(1);
    let (from, until) = ((45 * n) / 100, (70 * n) / 100);
    (0..SEGMENTS)
        .filter(|s| s * seg < until && (s + 1) * seg > from)
        .collect()
}

fn fleet_config(eps: f32, stale_fallback: bool) -> FleetConfig {
    let mut serve = ServeConfig::at(eps);
    serve.window = WINDOW;
    serve.pool_by_arity = false;
    serve.selection = HeadSelection::NaiveXi;
    serve.fine_tune_steps = 0;
    if stale_fallback {
        // Cross into widened local fallback after one drift_min worth of
        // un-refreshed observations (the validation floor).
        serve.staleness_threshold = serve.drift_min;
        serve.stale_epsilon_factor = 0.5;
    }
    FleetConfig {
        serve,
        replicas: REPLICAS,
        merge_every: MERGE_EVERY,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// FNV-1a over every admission decision, failover flag, served bound, and
/// coverage flag — the replayability witness.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One arm's outcomes over the chaos stream.
struct ArmOutcome {
    /// Per-event coverage; `None` where the observation was lost to a
    /// down replica.
    flags: Vec<Option<bool>>,
    digest: u64,
    stats: pitot_serve::FleetStats,
    audit_coverages: Vec<f32>,
}

fn run_arm(
    fleet: &mut FleetServer,
    h: &Harness,
    stream: &[usize],
    rng: &mut ChaCha8Rng,
) -> ArmOutcome {
    let mut digest = Digest::new();
    let mut flags = Vec::with_capacity(stream.len());
    for (t, &i) in stream.iter().enumerate() {
        let mut obs = h.dataset.observations[i].clone();
        obs.runtime_s *= DRIFT_LOG.exp();
        let mult = rng.gen_range(DEADLINE_MULT.0..DEADLINE_MULT.1);
        let deadline_s = f64::from(obs.runtime_s) * f64::from(mult);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: obs.workload,
            platform: obs.platform,
            interferers: obs.interferers.clone(),
            deadline_s,
        });
        digest.push(&[u8::from(out.decision.admitted()), u8::from(out.failover)]);
        digest.push(&out.prediction.bound_s.to_bits().to_le_bytes());
        fleet.resolve(t as u64, f64::from(obs.runtime_s));
        let (_, fb) = fleet.observe(t as f64, obs);
        digest.push(&[fb.as_ref().map_or(2, |f| u8::from(f.covered))]);
        flags.push(fb.map(|f| f.covered));
    }
    ArmOutcome {
        flags,
        digest: digest.0,
        stats: fleet.stats(),
        audit_coverages: fleet
            .degraded_audit()
            .iter()
            .map(|w| w.coverage())
            .collect(),
    }
}

/// Per-segment coverage over the *judged* events (lost observations — a
/// down replica's shard — are excluded from the denominator).
fn segment_coverage_judged(flags: &[Option<bool>]) -> Vec<f32> {
    let seg = flags.len().div_ceil(SEGMENTS).max(1);
    flags
        .chunks(seg)
        .map(|c| {
            let judged: Vec<bool> = c.iter().filter_map(|&f| f).collect();
            judged.iter().filter(|&&b| b).count() as f32 / judged.len().max(1) as f32
        })
        .collect()
}

/// Extension figure: coverage over the chaos stream for a faulted fleet
/// (coordinator outage + replica crash + lossy merges) against the
/// fault-free baseline, with per-degraded-window audit coverages and the
/// replayability digests, at ε = 0.1.
pub fn ext_chaos(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-chaos",
        "Fleet serving under injected faults: crash/rejoin, coordinator outage, gossip vs \
         stale fallback (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let (warm_n, shift_n) = match h.scale {
        crate::harness::Scale::Fast => (600usize, 1600usize),
        crate::harness::Scale::Full => (1500, 4000),
    };

    struct ArmSpec {
        label: &'static str,
        faulted: bool,
        gossip: bool,
    }
    let specs = [
        ArmSpec {
            label: "no faults",
            faulted: false,
            gossip: true,
        },
        ArmSpec {
            label: "chaos (gossip)",
            faulted: true,
            gossip: true,
        },
        ArmSpec {
            label: "chaos (stale fallback)",
            faulted: true,
            gossip: false,
        },
    ];
    struct ArmAgg {
        cov: Vec<Vec<f32>>,
        audit_cov: Vec<Vec<f32>>,
        shed: Vec<f32>,
        lost: usize,
        recoveries: usize,
        gossip_rounds: usize,
        fallback_refits: usize,
    }
    let mut agg: Vec<ArmAgg> = specs
        .iter()
        .map(|_| ArmAgg {
            cov: vec![Vec::new(); SEGMENTS],
            audit_cov: Vec::new(),
            shed: Vec::new(),
            lost: 0,
            recoveries: 0,
            gossip_rounds: 0,
            fallback_refits: 0,
        })
        .collect();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(0xC4A0_5000 ^ rep as u64);
        let warm = weighted_stream(&h.dataset, &split.test, &WARM_MIX, warm_n, &mut rng);
        let shifted = weighted_stream(&h.dataset, &split.test, &SHIFT_MIX, shift_n, &mut rng);

        for (a, spec) in specs.iter().enumerate() {
            let run = |arm_seed: u64| {
                let fleet_cfg = fleet_config(eps, spec.faulted && !spec.gossip);
                let mut fleet = if spec.faulted {
                    FleetServer::with_faults(
                        trained.clone(),
                        &h.dataset,
                        fleet_cfg,
                        fault_plan(shift_n, spec.gossip),
                    )
                } else {
                    FleetServer::new(trained.clone(), &h.dataset, fleet_cfg)
                };
                fleet.seed_calibration(&warm);
                let mut arm_rng = ChaCha8Rng::seed_from_u64(arm_seed);
                run_arm(&mut fleet, h, &shifted, &mut arm_rng)
            };
            let arm_seed = (0xC4A0_5D00 + a as u64) ^ (rep as u64) << 8;
            let out = run(arm_seed);
            if spec.faulted && rep == 0 {
                // Replayability: the same fault seed must reproduce the
                // decision digest bitwise (the cross-PITOT_THREADS half of
                // this property is CI's digest diff on the example).
                let replay = run(arm_seed);
                assert_eq!(
                    out.digest, replay.digest,
                    "{}: chaos replay diverged for a fixed fault seed",
                    spec.label
                );
            }
            for (s, cov) in segment_coverage_judged(&out.flags).into_iter().enumerate() {
                agg[a].cov[s].push(cov);
            }
            for (w, &c) in out.audit_coverages.iter().enumerate() {
                if agg[a].audit_cov.len() <= w {
                    agg[a].audit_cov.push(Vec::new());
                }
                if c.is_finite() {
                    agg[a].audit_cov[w].push(c);
                }
            }
            agg[a].shed.push(out.stats.admission.shed_rate());
            agg[a].lost += out.stats.lost_observations;
            agg[a].recoveries += out.stats.recoveries;
            agg[a].gossip_rounds += out.stats.gossip_rounds;
            agg[a].fallback_refits += out.stats.fallback_refits;
            fig.notes.push(format!(
                "{} rep={rep}: digest={:016x} lost={} recoveries={} gossip_rounds={} \
                 fallback_refits={} dropped={} retried={} giveups={}",
                spec.label,
                out.digest,
                out.stats.lost_observations,
                out.stats.recoveries,
                out.stats.gossip_rounds,
                out.stats.fallback_refits,
                out.stats.dropped_summaries,
                out.stats.retried_summaries,
                out.stats.merge_giveups,
            ));
        }
    }

    for (spec, arm) in specs.iter().zip(agg) {
        fig.series.push(Series {
            label: spec.label.into(),
            panel: format!("coverage over chaos stream (ε={eps})"),
            metric: "empirical coverage (judged events)".into(),
            points: arm
                .cov
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
        if !arm.audit_cov.is_empty() {
            fig.series.push(Series {
                label: spec.label.into(),
                panel: "degraded-window coverage (audit)".into(),
                metric: "coverage inside fault window".into(),
                points: arm
                    .audit_cov
                    .into_iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(w, values)| Point::from_replicates(w as f32, values))
                    .collect(),
            });
        }
        fig.series.push(Series {
            label: spec.label.into(),
            panel: "shed rate (whole stream)".into(),
            metric: "fraction shed".into(),
            points: vec![Point::from_replicates(0.0, arm.shed)],
        });
    }
    fig.notes.push(format!(
        "fault schedule over the {shift_n}-event shifted stream: coordinator outage \
         [{}, {}), replica 1 crashes at {} and rejoins warm at {}, 10%/5% of merge \
         summaries dropped/delayed throughout (fault seed {FAULT_SEED:#x})",
        (45 * shift_n) / 100,
        (70 * shift_n) / 100,
        shift_n / 2,
        (65 * shift_n) / 100,
    ));
    fig.notes.push(format!(
        "degraded segments (fault overlap): {:?}; acceptance: coverage ≥ 0.80 there and \
         ≥ 0.88 in the final (post-clearance) segment at ε = {eps}",
        degraded_segments(shift_n)
    ));
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn chaos_coverage_degrades_bounded_and_recovers() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_chaos(&h);
        let cov_panel = format!("coverage over chaos stream (ε={})", 0.1);
        let shift_n = 1600;
        let degraded = degraded_segments(shift_n);
        assert!(!degraded.is_empty(), "fault schedule overlaps no segment");
        for label in ["chaos (gossip)", "chaos (stale fallback)"] {
            let series = fig
                .series_for(label, &cov_panel)
                .unwrap_or_else(|| panic!("{label} missing"));
            // Acceptance: coverage never drops below 0.80 in any degraded
            // segment at ε = 0.1 …
            for &s in &degraded {
                let cov = series.points[s].mean;
                assert!(
                    cov >= 0.80,
                    "{label}: degraded segment {s} coverage {cov} below 0.80"
                );
            }
            // … and recovers to ≥ 0.88 after fault clearance.
            let last = series.points.last().expect("segments present").mean;
            assert!(
                last >= 0.88,
                "{label}: post-clearance coverage {last} below 0.88"
            );
        }
        // The faulted arms actually exercised their ladder rung.
        let note = |needle: &str| {
            assert!(
                fig.notes.iter().any(|n| n.contains(needle)),
                "no note matches {needle}"
            );
        };
        note("digest=");
        let gossip_note = fig
            .notes
            .iter()
            .find(|n| n.starts_with("chaos (gossip) rep=0"))
            .expect("gossip arm note");
        assert!(
            !gossip_note.contains("gossip_rounds=0 "),
            "gossip arm never gossiped: {gossip_note}"
        );
        assert!(
            gossip_note.contains("recoveries=1"),
            "crashed replica never rejoined: {gossip_note}"
        );
        let stale_note = fig
            .notes
            .iter()
            .find(|n| n.starts_with("chaos (stale fallback) rep=0"))
            .expect("stale arm note");
        assert!(
            !stale_note.contains("fallback_refits=0 "),
            "stale arm never fell back: {stale_note}"
        );
    }

    #[test]
    fn degraded_segment_map_matches_schedule() {
        // 8 segments of 200 over 1600 events; faults span [720, 1120).
        assert_eq!(degraded_segments(1600), vec![3, 4, 5]);
        // The final segment is always clean — recovery is measurable.
        assert!(!degraded_segments(1600).contains(&(SEGMENTS - 1)));
    }
}
