//! Conformal placement closed-loop (extension): does scheduling on the
//! interval *edge* beat scheduling on the point estimate — or on nothing?
//!
//! `ext-orchestration` showed calibrated bounds help a deadline-aware
//! admission rule; this experiment closes the remaining loop and puts the
//! bound inside the *placement* decision itself. Four `pitot-sched`
//! policies race on the same drifted job stream:
//!
//! - **conformal-greedy** — risk argmin over the conformal upper edge,
//!   including the predicted interference delta induced on residents;
//! - **point-greedy** — the same risk structure read at the point estimate;
//! - **least-loaded** / **random** — prediction-free baselines.
//!
//! Every arm drives a live [`PitotServer`] through `ServingPredictor`: each
//! completion streams back as an observation, so the sliding calibration
//! window recalibrates mid-run and the very next placement sees the new
//! edge. The stream runs `DRIFT_LOG` (0.3) nats slower than the data the
//! model trained on (the PR 4 drift scenario) — exactly the regime where a
//! frozen point estimate lies and a recalibrating bound does not.
//!
//! Expected shape: conformal-greedy attains the most deadlines (the edge
//! absorbs drift that the point estimate silently eats), point-greedy sits
//! between it and the prediction-free baselines, and prequential coverage
//! recovers to ≈ 1−ε within a few segments as drifted scores displace the
//! warm calibration seed.
//!
//! Coverage is judged in *completion* order (that is when the runtime is
//! revealed), which puts a known artifact at each end of the trajectory:
//! the first segments show the genuine drift dip while the window turns
//! over, and the final segment is the backlog drain, whose completions are
//! selected for being the slowest stragglers — an order-statistic bias that
//! depresses measured coverage for every policy equally. The headline
//! coverage claim is therefore pinned on the adapted steady-state segments
//! between the two.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use crate::serving::{segment_coverage, DRIFT_LOG, SEGMENTS};
use pitot::{Objective, PitotConfig};
use pitot_orchestrator::{ClusterSim, JobStream, PlacementPolicy};
use pitot_sched::{ConformalGreedy, LeastLoaded, PointGreedy, Random};
use pitot_serve::{Event, PitotServer, ServeConfig, ServingPredictor};
use std::cell::RefCell;
use std::rc::Rc;

/// Jobs per simulation at each harness scale (mirrors `ext-orchestration`).
fn stream_len(h: &Harness) -> usize {
    match h.scale {
        crate::harness::Scale::Fast => 400,
        crate::harness::Scale::Full => 2000,
    }
}

/// The four policy arms, in report order.
const ARMS: [&str; 4] = ["conformal-greedy", "point-greedy", "least-loaded", "random"];

/// Builds the policy for one arm. Fresh per replicate so randomized
/// policies re-seed deterministically.
fn policy_for(arm: usize, rep: usize) -> Box<dyn PlacementPolicy> {
    match arm {
        0 => Box::new(ConformalGreedy::new()),
        1 => Box::new(PointGreedy::new()),
        2 => Box::new(LeastLoaded::new()),
        _ => Box::new(Random::new(0xC0FF_EE00 ^ rep as u64)),
    }
}

/// Per-arm accumulators across replicates.
struct ArmAgg {
    slo: Vec<f32>,
    makespan: Vec<f32>,
    response: Vec<f32>,
    cov: Vec<Vec<f32>>,
}

/// Extension figure: closed-loop makespan, SLO attainment, and prequential
/// interval coverage per placement policy under runtime drift, at ε = 0.1.
pub fn ext_sched(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-sched",
        "Conformal risk-minimizing placement under drift (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let n_jobs = stream_len(h);
    let interarrival = 0.02;

    // The same dozen-platform edge site as ext-orchestration: small enough
    // that co-location pressure makes the interference delta term matter.
    let n_platforms = h.testbed.platforms().len();
    let site: Vec<usize> = (0..n_platforms).step_by(n_platforms.div_ceil(12)).collect();

    let mut agg: Vec<ArmAgg> = ARMS
        .iter()
        .map(|_| ArmAgg {
            slo: Vec::new(),
            makespan: Vec::new(),
            response: Vec::new(),
            cov: vec![Vec::new(); SEGMENTS],
        })
        .collect();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let jobs = JobStream::generate_with_deadlines(
            &h.testbed,
            n_jobs,
            interarrival,
            (1.3, 3.0),
            rep as u64,
        );

        for arm in 0..ARMS.len() {
            // A fresh server per arm: each policy earns its own calibration
            // trajectory (placements decide which cells get observed). The
            // stream is short (one observation per job), so the window must
            // be small enough to fully turn over to drifted scores mid-run;
            // one global pool keeps every quantile well-sampled.
            let mut serve_cfg = ServeConfig::at(eps);
            serve_cfg.window = 128;
            serve_cfg.pool_by_arity = false;
            let mut server = PitotServer::new(trained.clone(), h.dataset.clone(), serve_cfg);
            server.seed_calibration(&split.val);
            let server = Rc::new(RefCell::new(server));
            let predictor = ServingPredictor::new(Rc::clone(&server));
            let mut policy = policy_for(arm, rep);

            let mut covered: Vec<bool> = Vec::with_capacity(n_jobs);
            let report = ClusterSim::new(&h.testbed)
                .restrict_to(&site)
                // The whole stream runs e^DRIFT_LOG slower than the
                // training data — the sustained-co-location slowdown of
                // the serving experiments, now inside the placement loop.
                .with_work_scale(f64::from(DRIFT_LOG).exp())
                .run_with_observer(&jobs, policy.as_mut(), &predictor, &mut |obs, now| {
                    let mut srv = server.borrow_mut();
                    let at = now.max(srv.now_s());
                    let fb = srv
                        .on_event(at, Event::Observe(obs))
                        .observed
                        .expect("observation feedback");
                    covered.push(fb.covered);
                });

            let a = &mut agg[arm];
            a.slo.push(1.0 - report.violation_rate() as f32);
            a.makespan.push(report.makespan_s as f32);
            a.response.push(report.mean_response_s as f32);
            for (s, cov) in segment_coverage(&covered).into_iter().enumerate() {
                a.cov[s].push(cov);
            }
        }
    }

    for (arm, a) in agg.into_iter().enumerate() {
        let label = ARMS[arm];
        for (metric, values) in [
            ("SLO attainment", a.slo),
            ("makespan (s)", a.makespan),
            ("mean response (s)", a.response),
        ] {
            fig.series.push(Series {
                label: label.into(),
                panel: "policies".into(),
                metric: metric.into(),
                points: vec![Point::from_replicates(0.0, values)],
            });
        }
        fig.series.push(Series {
            label: label.into(),
            panel: format!("prequential coverage (ε={eps})"),
            metric: "empirical coverage".into(),
            points: a
                .cov
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
    }

    fig.notes.push(format!(
        "{n_jobs} jobs, mean inter-arrival {interarrival}s, deadlines 1.3–3.0× median, \
         site of {} platforms, runtimes drifted by e^{DRIFT_LOG}",
        site.len()
    ));
    fig.notes.push(
        "each arm drives a live PitotServer: completions recalibrate the sliding window \
         mid-run, so later placements see drift-adjusted bounds"
            .into(),
    );
    fig.notes.push(
        "coverage is judged in completion order: early segments show the drift-adaptation \
         dip, and the final segment is the backlog drain (completion order selects the \
         slowest stragglers, depressing measured coverage for every policy equally); the \
         adapted steady state is the middle segments"
            .into(),
    );
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn conformal_placement_beats_prediction_free_baselines() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_sched(&h);
        let metric = |label: &str, metric: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label && s.metric == metric)
                .unwrap_or_else(|| panic!("{label}/{metric} missing"))
                .points[0]
                .mean
        };
        let slo_conformal = metric("conformal-greedy", "SLO attainment");
        let slo_random = metric("random", "SLO attainment");
        let slo_least = metric("least-loaded", "SLO attainment");

        // Headline: scheduling on the calibrated edge attains more
        // deadlines than prediction-free placement under drift.
        assert!(
            slo_conformal > slo_random,
            "conformal-greedy SLO {slo_conformal} should beat random {slo_random}"
        );
        assert!(
            slo_conformal > slo_least,
            "conformal-greedy SLO {slo_conformal} should beat least-loaded {slo_least}"
        );

        // The served intervals stay honest while driving placement: once
        // the sliding window has turned over to drifted scores, coverage is
        // back at nominal. The steady state is the middle segments — the
        // first segments are the genuine drift dip, and the last segment is
        // the backlog drain, where completion order selects the slowest
        // stragglers (an order-statistic artifact hitting every policy
        // equally; see the figure notes).
        let cov_points = &fig
            .series
            .iter()
            .find(|s| s.label == "conformal-greedy" && s.metric == "empirical coverage")
            .expect("coverage series present")
            .points;
        let steady = &cov_points[2..SEGMENTS - 1];
        let steady_cov = steady.iter().map(|p| p.mean).sum::<f32>() / steady.len() as f32;
        assert!(
            steady_cov >= 0.88,
            "steady-state coverage {steady_cov} below 0.88 at ε=0.1"
        );
    }
}
