//! Hyperparameter ablations (paper Fig 10 / App D.2): learned features `q`,
//! embedding dimension `r`, interference types `s`, and interference weight
//! `β`, with MAPE split by interference mode.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::PitotConfig;

/// Which hyperparameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sweep {
    /// Learned features q ∈ {0, 1, 2, 4, 8}.
    LearnedFeatures,
    /// Embedding dimension r ∈ {4, 8, 16, 32, 64}.
    EmbeddingDim,
    /// Interference types s ∈ {1, 2, 4, 8, 16}.
    InterferenceTypes,
    /// Interference weight β ∈ {0.1, 0.2, 0.5, 1.0, 2.0}.
    InterferenceWeight,
}

impl Sweep {
    /// All sweeps in paper order.
    pub const ALL: [Sweep; 4] = [
        Sweep::LearnedFeatures,
        Sweep::EmbeddingDim,
        Sweep::InterferenceTypes,
        Sweep::InterferenceWeight,
    ];

    /// Paper values for the sweep (Fig 10 rows).
    pub fn values(self) -> Vec<f32> {
        match self {
            Sweep::LearnedFeatures => vec![0.0, 1.0, 2.0, 4.0, 8.0],
            Sweep::EmbeddingDim => vec![4.0, 8.0, 16.0, 32.0, 64.0],
            Sweep::InterferenceTypes => vec![1.0, 2.0, 4.0, 8.0, 16.0],
            Sweep::InterferenceWeight => vec![0.1, 0.2, 0.5, 1.0, 2.0],
        }
    }

    /// Row label in the figure.
    pub fn label(self) -> &'static str {
        match self {
            Sweep::LearnedFeatures => "Learned Features q",
            Sweep::EmbeddingDim => "Embedding r",
            Sweep::InterferenceTypes => "Interference Types s",
            Sweep::InterferenceWeight => "Interference Weight beta",
        }
    }

    /// Applies the value to a configuration.
    pub fn apply(self, base: &PitotConfig, value: f32) -> PitotConfig {
        let mut cfg = base.clone();
        match self {
            Sweep::LearnedFeatures => cfg.learned_features = value as usize,
            Sweep::EmbeddingDim => cfg.embed_dim = value as usize,
            Sweep::InterferenceTypes => cfg.interference_types = value as usize,
            Sweep::InterferenceWeight => cfg.interference_weight = value,
        }
        cfg
    }
}

/// Runs one Fig 10 row: MAPE per interference mode across the sweep values,
/// at a single representative train fraction per x-point (the fast harness
/// uses 50%; the paper plots fraction on the x-axis, which the full-scale
/// runner reproduces by calling this per fraction).
pub fn fig10_row(h: &Harness, sweep: Sweep) -> Figure {
    let fractions: Vec<f32> = match h.scale {
        crate::harness::Scale::Fast => vec![0.5],
        crate::harness::Scale::Full => vec![0.2, 0.5, 0.8],
    };
    let mut fig = Figure::new(
        format!("fig10-{}", sweep.label().replace(' ', "-").to_lowercase()),
        format!("Hyperparameter ablation: {}", sweep.label()),
    );
    let base = h.pitot_config();
    for value in sweep.values() {
        let cfg = sweep.apply(&base, value);
        // Panels: MAPE by interference mode (paper columns).
        let mut by_mode: Vec<Vec<(f32, Vec<f32>)>> = vec![Vec::new(); 4];
        for &fraction in &fractions {
            let mut reps_by_mode: Vec<Vec<f32>> = vec![Vec::new(); 4];
            for rep in 0..h.replicates {
                let split = h.split(fraction, rep);
                let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
                let test: Vec<usize> = {
                    let mut t = h.test_without_interference(&split);
                    t.extend(h.test_with_interference(&split));
                    t
                };
                for k in 0..4 {
                    let m = trained.mape(&h.dataset, &test, Some(k));
                    if m.is_finite() {
                        reps_by_mode[k].push(m);
                    }
                }
            }
            for k in 0..4 {
                by_mode[k].push((fraction, reps_by_mode[k].clone()));
            }
        }
        for (k, fr) in by_mode.into_iter().enumerate() {
            let panel = match k {
                0 => "no interference".to_string(),
                k => format!("{}-way interference", k + 1),
            };
            fig.series.push(Series {
                label: format!("{} = {}", sweep.label(), value),
                panel,
                metric: "MAPE".into(),
                points: fr
                    .into_iter()
                    .map(|(x, reps)| Point::from_replicates(x, reps))
                    .collect(),
            });
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_valid_configs() {
        let base = PitotConfig::tiny();
        for sweep in Sweep::ALL {
            for v in sweep.values() {
                let cfg = sweep.apply(&base, v);
                if sweep == Sweep::LearnedFeatures && v == 0.0 {
                    // q=0 relies on side information being enabled.
                    assert!(cfg.use_workload_features);
                }
                cfg.validate();
            }
        }
    }

    #[test]
    fn sweep_labels_are_unique() {
        let labels: std::collections::HashSet<_> = Sweep::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
