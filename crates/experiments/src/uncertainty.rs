//! Uncertainty-quantification experiments (paper Figs 5, 6b, 8, 11).

use crate::harness::Harness;
use crate::methods::{Method, PitotPredictor};
use crate::report::{Figure, Point, Series};
use pitot::{Objective, PitotConfig};
use pitot_baselines::LogPredictor;
use pitot_conformal::{
    calibrate_gamma, overprovision_margin, HeadSelection, PooledConformal, PredictionSet,
    SweepCalibration,
};
use pitot_testbed::{split::Split, Dataset};

/// Miscoverage sweep used by the tightness figures.
pub fn epsilons(h: &Harness) -> Vec<f32> {
    match h.scale {
        crate::harness::Scale::Fast => vec![0.10, 0.08, 0.06, 0.04, 0.02],
        crate::harness::Scale::Full => (1..=10).rev().map(|i| i as f32 / 100.0).collect(),
    }
}

/// One predictor's calibration data, prepared once per replicate: the
/// holdout halves are predicted a single time and the nonconformity scores
/// pre-sorted per pool, so fitting at every miscoverage level of a sweep is
/// a rank lookup plus head selection (mirrors
/// `TrainedPitot::calibration`).
pub struct PredictorCalibration {
    sweep: SweepCalibration,
}

impl PredictorCalibration {
    /// Predicts the calibration/selection halves of `split.val` once and
    /// pre-sorts the scores.
    ///
    /// The val list is ordered by interference mode: interleave so both
    /// halves contain every calibration pool.
    pub fn prepare(model: &dyn LogPredictor, dataset: &Dataset, split: &Split) -> Self {
        let cal_idx: Vec<usize> = split.val.iter().copied().step_by(2).collect();
        let mut sel_idx: Vec<usize> = split.val.iter().copied().skip(1).step_by(2).collect();
        if sel_idx.is_empty() {
            sel_idx = cal_idx.clone();
        }
        let cal_preds = model.predict_log(dataset, &cal_idx);
        let sel_preds = model.predict_log(dataset, &sel_idx);
        let (cal_t, cal_p) = targets_pools(dataset, &cal_idx);
        let (sel_targets, sel_pools) = targets_pools(dataset, &sel_idx);
        Self {
            sweep: SweepCalibration::new(
                &PredictionSet {
                    predictions: &cal_preds,
                    targets_log: &cal_t,
                    pools: &cal_p,
                },
                sel_preds,
                sel_targets,
                sel_pools,
                model.quantile_levels(),
            ),
        }
    }

    /// Fits pooled CQR at one miscoverage level from the precomputed scores.
    pub fn fit(&self, epsilon: f32, selection: HeadSelection) -> PooledConformal {
        self.sweep.fit(epsilon, selection)
    }
}

/// A test set predicted once, for repeated margin/coverage evaluation
/// against different calibrations.
pub struct EvalSet {
    preds: Vec<Vec<f32>>,
    targets: Vec<f32>,
    pools: Vec<usize>,
}

impl EvalSet {
    /// Predicts `idx` once.
    pub fn prepare(model: &dyn LogPredictor, dataset: &Dataset, idx: &[usize]) -> Self {
        let preds = model.predict_log(dataset, idx);
        let (targets, pools) = targets_pools(dataset, idx);
        Self {
            preds,
            targets,
            pools,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Per-head predictions (head-major).
    pub fn preds(&self) -> &[Vec<f32>] {
        &self.preds
    }

    /// Log-space targets.
    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    /// Overprovisioning margin of `conformal` on this set.
    pub fn margin(&self, conformal: &PooledConformal) -> f32 {
        overprovision_margin(&self.bounds(conformal), &self.targets)
    }

    /// Empirical coverage of `conformal` on this set.
    pub fn coverage(&self, conformal: &PooledConformal) -> f32 {
        pitot_conformal::coverage(&self.bounds(conformal), &self.targets)
    }

    fn bounds(&self, conformal: &PooledConformal) -> Vec<f32> {
        conformal.bounds_log(&PredictionSet {
            predictions: &self.preds,
            targets_log: &self.targets,
            pools: &self.pools,
        })
    }
}

/// Fits pooled conformal bounds for any predictor, splitting the validation
/// half into calibration and selection halves (mirrors
/// `TrainedPitot::fit_bounds`). Sweeps over miscoverage levels should use
/// [`PredictorCalibration`] directly to predict once.
pub fn fit_bounds_generic(
    model: &dyn LogPredictor,
    dataset: &Dataset,
    split: &Split,
    epsilon: f32,
    selection: HeadSelection,
) -> PooledConformal {
    PredictorCalibration::prepare(model, dataset, split).fit(epsilon, selection)
}

/// Overprovisioning margin of calibrated bounds over `idx`.
pub fn margin_on(
    model: &dyn LogPredictor,
    conformal: &PooledConformal,
    dataset: &Dataset,
    idx: &[usize],
) -> f32 {
    EvalSet::prepare(model, dataset, idx).margin(conformal)
}

/// Empirical coverage of calibrated bounds over `idx`.
pub fn coverage_on(
    model: &dyn LogPredictor,
    conformal: &PooledConformal,
    dataset: &Dataset,
    idx: &[usize],
) -> f32 {
    EvalSet::prepare(model, dataset, idx).coverage(conformal)
}

fn targets_pools(dataset: &Dataset, idx: &[usize]) -> (Vec<f32>, Vec<usize>) {
    idx.iter()
        .map(|&i| {
            let o = &dataset.observations[i];
            (o.log_runtime(), o.interferers.len())
        })
        .unzip()
}

/// The three uncertainty strategies of Fig 5.
fn fig5_strategies(h: &Harness) -> Vec<(String, PitotConfig, HeadSelection)> {
    let quant = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let squared = h.pitot_config();
    vec![
        (
            "Pitot".to_string(),
            quant.clone(),
            HeadSelection::TightestOnValidation,
        ),
        ("Naive CQR".to_string(), quant, HeadSelection::NaiveXi),
        (
            "Non-quantile".to_string(),
            squared,
            HeadSelection::SingleHead,
        ),
    ]
}

/// Fig 5: bound tightness across miscoverage rates at the 50% train split,
/// comparing the paper's CQR (with quantile selection) against naive CQR and
/// conformalized squared regression.
pub fn fig5(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig5", "Bound tightness of CQR variants (50% split)");
    let eps_list = epsilons(h);
    for (label, cfg, selection) in fig5_strategies(h) {
        let mut pts_no: Vec<Vec<f32>> = vec![Vec::new(); eps_list.len()];
        let mut pts_with: Vec<Vec<f32>> = vec![Vec::new(); eps_list.len()];
        for rep in 0..h.replicates {
            let split = h.split(0.5, rep);
            let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
            let model = PitotPredictor(trained);
            // Predict calibration and test sets once; every ε reuses them.
            let calib = PredictorCalibration::prepare(&model, &h.dataset, &split);
            let eval_no =
                EvalSet::prepare(&model, &h.dataset, &h.test_without_interference(&split));
            let eval_with = EvalSet::prepare(&model, &h.dataset, &h.test_with_interference(&split));
            for (e, &eps) in eps_list.iter().enumerate() {
                let conformal = calib.fit(eps, selection);
                pts_no[e].push(eval_no.margin(&conformal));
                pts_with[e].push(eval_with.margin(&conformal));
            }
        }
        push_eps_series(&mut fig, &label, &eps_list, pts_no, pts_with);
    }
    fig
}

/// Fig 6b: bound tightness versus the baselines at the 50% split.
pub fn fig6b(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig6b", "Bound tightness vs baselines (50% split)");
    tightness_vs_baselines(h, &mut fig, 0.5);
    fig
}

/// Fig 11: the full grid — tightness vs baselines across train fractions.
/// The fast harness samples the grid at {10%, 50%, 90%}; `--full` covers
/// all nine splits like the paper.
pub fn fig11(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig11", "Bound tightness vs baselines across train splits");
    let fractions: Vec<f32> = match h.scale {
        crate::harness::Scale::Fast => vec![0.1, 0.5, 0.9],
        crate::harness::Scale::Full => h.fractions.clone(),
    };
    for &fraction in &fractions {
        tightness_vs_baselines(h, &mut fig, fraction);
    }
    fig
}

fn tightness_vs_baselines(h: &Harness, fig: &mut Figure, fraction: f32) {
    let eps_list = epsilons(h);
    let quant_pitot = Method::Pitot(PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    });
    let methods: Vec<(Method, HeadSelection)> = vec![
        (quant_pitot, HeadSelection::TightestOnValidation),
        (
            Method::NeuralNetwork(h.nn_config()),
            HeadSelection::SingleHead,
        ),
        (
            Method::Attention(h.attention_config()),
            HeadSelection::SingleHead,
        ),
        (
            Method::MatrixFactorization(h.mf_config()),
            HeadSelection::SingleHead,
        ),
    ];
    for (method, selection) in methods {
        let mut pts_no: Vec<Vec<f32>> = vec![Vec::new(); eps_list.len()];
        let mut pts_with: Vec<Vec<f32>> = vec![Vec::new(); eps_list.len()];
        for rep in 0..h.replicates {
            let split = h.split(fraction, rep);
            let model = method.train(&h.dataset, &split, rep as u64);
            let calib = PredictorCalibration::prepare(model.as_ref(), &h.dataset, &split);
            let eval_no = EvalSet::prepare(
                model.as_ref(),
                &h.dataset,
                &h.test_without_interference(&split),
            );
            let eval_with = EvalSet::prepare(
                model.as_ref(),
                &h.dataset,
                &h.test_with_interference(&split),
            );
            for (e, &eps) in eps_list.iter().enumerate() {
                let conformal = calib.fit(eps, selection);
                pts_no[e].push(eval_no.margin(&conformal));
                pts_with[e].push(eval_with.margin(&conformal));
            }
        }
        let label = format!("{} @ {:.0}%", method.label(), fraction * 100.0);
        push_eps_series(fig, &label, &eps_list, pts_no, pts_with);
    }
}

fn push_eps_series(
    fig: &mut Figure,
    label: &str,
    eps_list: &[f32],
    pts_no: Vec<Vec<f32>>,
    pts_with: Vec<Vec<f32>>,
) {
    fig.series.push(Series {
        label: label.to_string(),
        panel: "without interference".into(),
        metric: "bound tightness".into(),
        points: eps_list
            .iter()
            .zip(pts_no)
            .map(|(&x, v)| Point::from_replicates(x, v))
            .collect(),
    });
    fig.series.push(Series {
        label: label.to_string(),
        panel: "with interference".into(),
        metric: "bound tightness".into(),
        points: eps_list
            .iter()
            .zip(pts_with)
            .map(|(&x, v)| Point::from_replicates(x, v))
            .collect(),
    });
}

/// Fig 8: post-calibration tightness as a function of the quantile-regression
/// target quantile ξ, at ε = 0.05 (App B.2's motivation for quantile
/// selection).
pub fn fig8(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "fig8",
        "Bound tightness by target quantile (ε = 0.05, without interference)",
    );
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let xis = cfg.objective.xis();
    let eps = 0.05;
    let mut per_head: Vec<Vec<f32>> = vec![Vec::new(); xis.len()];
    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let model = PitotPredictor(trained);
        // Calibrate each head on the no-interference pool and measure margin
        // on the no-interference test set.
        let no_val: Vec<usize> = split
            .val
            .iter()
            .copied()
            .filter(|&i| h.dataset.observations[i].interferers.is_empty())
            .collect();
        let no_test = h.test_without_interference(&split);
        let cal_preds = model.predict_log(&h.dataset, &no_val);
        let test_preds = model.predict_log(&h.dataset, &no_test);
        let cal_t: Vec<f32> = no_val
            .iter()
            .map(|&i| h.dataset.observations[i].log_runtime())
            .collect();
        let test_t: Vec<f32> = no_test
            .iter()
            .map(|&i| h.dataset.observations[i].log_runtime())
            .collect();
        for (hd, head_preds) in cal_preds.iter().enumerate() {
            let scores: Vec<f32> = head_preds.iter().zip(&cal_t).map(|(p, t)| t - p).collect();
            let gamma = calibrate_gamma(&scores, eps);
            let bounds: Vec<f32> = test_preds[hd].iter().map(|p| p + gamma).collect();
            per_head[hd].push(overprovision_margin(&bounds, &test_t));
        }
    }
    fig.series.push(Series {
        label: "calibrated margin".into(),
        panel: "without interference".into(),
        metric: "bound tightness".into(),
        points: xis
            .iter()
            .zip(per_head)
            .map(|(&xi, v)| Point::from_replicates(xi, v))
            .collect(),
    });
    let best = fig.series[0]
        .points
        .iter()
        .min_by(|a, b| a.mean.total_cmp(&b.mean))
        .map(|p| p.x)
        .unwrap_or(f32::NAN);
    fig.notes.push(format!(
        "tightest target quantile ξ* = {best:.2} (naive CQR would use ξ = 0.95)"
    ));
    fig
}

/// Extension experiment (not in the paper's figures, motivated by its Sec 2
/// WCET discussion): measurement-based WCET bounds vs Pitot's conformal
/// bounds at matched coverage. WCET typically over-covers and pays an
/// order-of-magnitude larger overprovisioning margin.
pub fn wcet_extension(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-wcet",
        "WCET-style bounds vs conformal bounds (50% split)",
    );
    let eps = 0.05;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let mut rows: Vec<(String, Vec<f32>, Vec<f32>)> = vec![
        ("Pitot conformal".into(), Vec::new(), Vec::new()),
        ("WCET x1.2".into(), Vec::new(), Vec::new()),
        ("WCET x2.0".into(), Vec::new(), Vec::new()),
    ];
    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let no_idx = h.test_without_interference(&split);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let model = PitotPredictor(trained);
        let conformal = fit_bounds_generic(
            &model,
            &h.dataset,
            &split,
            eps,
            HeadSelection::TightestOnValidation,
        );
        rows[0]
            .1
            .push(margin_on(&model, &conformal, &h.dataset, &no_idx));
        rows[0]
            .2
            .push(coverage_on(&model, &conformal, &h.dataset, &no_idx));
        for (slot, factor) in [(1usize, 1.2f32), (2, 2.0)] {
            let wcet = pitot_baselines::WcetBaseline::from_split(&h.dataset, &split, factor);
            let bounds = wcet.predict_log(&h.dataset, &no_idx)[0].clone();
            let targets: Vec<f32> = no_idx
                .iter()
                .map(|&i| h.dataset.observations[i].log_runtime())
                .collect();
            rows[slot].1.push(overprovision_margin(&bounds, &targets));
            rows[slot]
                .2
                .push(pitot_conformal::coverage(&bounds, &targets));
        }
    }
    for (label, margins, coverages) in rows {
        fig.series.push(Series {
            label: label.clone(),
            panel: "without interference".into(),
            metric: "bound tightness".into(),
            points: vec![Point::from_replicates(eps, margins)],
        });
        fig.series.push(Series {
            label,
            panel: "without interference".into(),
            metric: "coverage".into(),
            points: vec![Point::from_replicates(eps, coverages)],
        });
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn generic_bounds_cover_for_a_baseline() {
        let mut h = Harness::new(Scale::Fast);
        h.eval_cap = 3000;
        let split = h.split(0.5, 0);
        let mut cfg = h.mf_config();
        cfg.train.steps = 300;
        let model = Method::MatrixFactorization(cfg).train(&h.dataset, &split, 0);
        let conformal = fit_bounds_generic(
            model.as_ref(),
            &h.dataset,
            &split,
            0.1,
            HeadSelection::SingleHead,
        );
        let idx = h.test_without_interference(&split);
        let cov = coverage_on(model.as_ref(), &conformal, &h.dataset, &idx);
        assert!(cov >= 0.85, "coverage {cov}");
        let m = margin_on(model.as_ref(), &conformal, &h.dataset, &idx);
        assert!(m > 0.0 && m.is_finite());
    }
}
