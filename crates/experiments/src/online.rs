//! Online learning: a new device joins the cluster (extension).
//!
//! The paper's conclusion names "efficient online learning" as the main
//! future-work item. This experiment stages the event that matters in
//! deployment: a device the model has never seen starts reporting
//! observations. Three responses are compared on the new device's held-out
//! data:
//!
//! - **stale**: keep serving the pre-trained model (lower bar);
//! - **fine-tune**: warm-start from the deployed checkpoint on the adapt
//!   data at a fraction of the training budget (the extension built into
//!   [`pitot::TrainedPitot::fine_tune`]);
//! - **retrain**: full training from scratch on the same adapt data (upper
//!   bar at full cost).
//!
//! Expected shape: fine-tuning recovers most of the retrain accuracy at
//! ~10–20% of the step budget; the stale model is far worse because the new
//! device's φ and scaling-baseline terms were never fit.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot_testbed::device_arrival;

/// Adapt fractions swept (fraction of the new device's data made available).
const ADAPT_FRACTIONS: [f32; 3] = [0.1, 0.25, 0.5];

/// Picks a device with rich platform coverage for the arrival scenario
/// (an x86 desktop: supports every runtime, so the holdout is large).
fn arrival_device(h: &Harness) -> usize {
    let mut counts = vec![0usize; h.testbed.devices().len()];
    for p in h.testbed.platforms() {
        counts[p.device] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(d, _)| d)
        .expect("non-empty device catalog")
}

/// Extension figure: MAPE on the new device for stale / fine-tune / retrain
/// across adapt fractions.
pub fn ext_online(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-online",
        "Online adaptation to a new device (extension)",
    );
    let device = arrival_device(h);
    let cfg = h.pitot_config();
    let fine_tune_steps = (cfg.steps / 8).max(50);

    let mut stale_pts: Vec<Vec<f32>> = vec![Vec::new(); ADAPT_FRACTIONS.len()];
    let mut tuned_pts: Vec<Vec<f32>> = vec![Vec::new(); ADAPT_FRACTIONS.len()];
    let mut retrain_pts: Vec<Vec<f32>> = vec![Vec::new(); ADAPT_FRACTIONS.len()];

    for rep in 0..h.replicates {
        for (a, &adapt_frac) in ADAPT_FRACTIONS.iter().enumerate() {
            let arrival =
                device_arrival(&h.dataset, &h.testbed, device, 0.5, adapt_frac, rep as u64);
            let test: Vec<usize> = if h.eval_cap > 0 && arrival.new_device_test.len() > h.eval_cap {
                let stride = arrival.new_device_test.len().div_ceil(h.eval_cap);
                arrival
                    .new_device_test
                    .iter()
                    .copied()
                    .step_by(stride)
                    .collect()
            } else {
                arrival.new_device_test.clone()
            };

            let cfg_rep = cfg.clone().with_seed(rep as u64);
            let stale = pitot::train(&h.dataset, &arrival.pretrain, &cfg_rep);
            stale_pts[a].push(stale.mape(&h.dataset, &test, None));

            let tuned = stale.fine_tune(&h.dataset, &arrival.adapt, fine_tune_steps);
            tuned_pts[a].push(tuned.mape(&h.dataset, &test, None));

            let retrained = pitot::train(&h.dataset, &arrival.adapt, &cfg_rep);
            retrain_pts[a].push(retrained.mape(&h.dataset, &test, None));
        }
    }

    for (label, pts) in [
        ("stale (no update)", stale_pts),
        ("fine-tune (warm start)", tuned_pts),
        ("retrain (from scratch)", retrain_pts),
    ] {
        fig.series.push(Series {
            label: label.into(),
            panel: "new-device test".into(),
            metric: "MAPE".into(),
            points: pts
                .into_iter()
                .zip(ADAPT_FRACTIONS)
                .map(|(values, frac)| Point::from_replicates(frac, values))
                .collect(),
        });
    }
    fig.notes.push(format!(
        "device {device} ({}); fine-tune budget {fine_tune_steps} steps vs {} from scratch",
        h.testbed.devices()[device].name,
        cfg.steps
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn fine_tuning_beats_stale_and_approaches_retrain() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_online(&h);
        let series = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let stale = series("stale (no update)");
        let tuned = series("fine-tune (warm start)");
        let retrain = series("retrain (from scratch)");

        // At the largest adapt fraction the ordering must be clear.
        let last = ADAPT_FRACTIONS.len() - 1;
        let (s, t, r) = (
            stale.points[last].mean,
            tuned.points[last].mean,
            retrain.points[last].mean,
        );
        assert!(
            t < s,
            "fine-tuning must beat the stale model on a new device: tuned {t} vs stale {s}"
        );
        // Fine-tuning at 1/8 the budget should land within 2x of retraining.
        assert!(t < r * 2.0 + 0.05, "fine-tune {t} too far from retrain {r}");
    }
}
