//! Calibration-pool robustness under interference-arity shift (extension).
//!
//! Sec 3.5 claims that conditioning calibration pools on the number of
//! simultaneously-running workloads "allows Pitot to maintain conditional
//! exchangeability even under distribution shift of I". This experiment
//! tests exactly that: the same trained model is calibrated once with the
//! paper's arity-keyed pools and once with a single global pool, then
//! evaluated on test sets whose arity mix shifts from calibration-like
//! (mostly isolation) to deployment-heavy (mostly 3–4-way interference).
//!
//! Expected shape: pooled calibration holds its nominal coverage at every
//! shift intensity; global calibration over-covers on easy mixes and
//! under-covers once heavy interference dominates.

use crate::harness::Harness;
use crate::methods::PitotPredictor;
use crate::report::{Figure, Point, Series};
use crate::uncertainty::fit_bounds_generic;
use pitot::{Objective, PitotConfig};
use pitot_baselines::LogPredictor;
use pitot_conformal::{coverage, HeadSelection, PooledConformal, PredictionSet};
use pitot_testbed::{arity_shift_split, split::Split, Dataset, MAX_INTERFERERS};

/// Test-set arity mixes, from calibration-like to heavily shifted.
/// (label, weight per interferer count 0..=3)
const SHIFTS: [(&str, [f32; MAX_INTERFERERS + 1]); 4] = [
    ("calibration-like", [3.0, 1.0, 1.0, 1.0]),
    ("balanced", [1.0, 1.0, 1.0, 1.0]),
    ("interference-heavy", [0.2, 0.8, 1.5, 1.5]),
    ("worst-case 4-way", [0.0, 0.0, 0.0, 1.0]),
];

/// Fits a *global* (single-pool) calibration by erasing the pool key.
fn fit_global(
    model: &dyn LogPredictor,
    dataset: &Dataset,
    split: &Split,
    epsilon: f32,
) -> PooledConformal {
    let cal_idx: Vec<usize> = split.val.iter().copied().step_by(2).collect();
    let mut sel_idx: Vec<usize> = split.val.iter().copied().skip(1).step_by(2).collect();
    if sel_idx.is_empty() {
        sel_idx = cal_idx.clone();
    }
    let cal_preds = model.predict_log(dataset, &cal_idx);
    let sel_preds = model.predict_log(dataset, &sel_idx);
    let cal_t: Vec<f32> = cal_idx
        .iter()
        .map(|&i| dataset.observations[i].log_runtime())
        .collect();
    let sel_t: Vec<f32> = sel_idx
        .iter()
        .map(|&i| dataset.observations[i].log_runtime())
        .collect();
    let zeros_cal = vec![0usize; cal_idx.len()];
    let zeros_sel = vec![0usize; sel_idx.len()];
    PooledConformal::fit(
        &PredictionSet {
            predictions: &cal_preds,
            targets_log: &cal_t,
            pools: &zeros_cal,
        },
        &PredictionSet {
            predictions: &sel_preds,
            targets_log: &sel_t,
            pools: &zeros_sel,
        },
        &model.quantile_levels(),
        HeadSelection::TightestOnValidation,
        epsilon,
    )
}

/// Coverage of a calibration on `idx`, with pools keyed by arity
/// (`keyed = true`) or all-zero (`keyed = false`, matching [`fit_global`]).
fn coverage_with_pools(
    model: &dyn LogPredictor,
    conformal: &PooledConformal,
    dataset: &Dataset,
    idx: &[usize],
    keyed: bool,
) -> f32 {
    let preds = model.predict_log(dataset, idx);
    let targets: Vec<f32> = idx
        .iter()
        .map(|&i| dataset.observations[i].log_runtime())
        .collect();
    let pools: Vec<usize> = if keyed {
        idx.iter()
            .map(|&i| dataset.observations[i].interferers.len())
            .collect()
    } else {
        vec![0usize; idx.len()]
    };
    let bounds = conformal.bounds_log(&PredictionSet {
        predictions: &preds,
        targets_log: &targets,
        pools: &pools,
    });
    coverage(&bounds, &targets)
}

/// Extension figure: coverage of pooled vs global calibration across arity
/// shifts at ε = 0.1.
pub fn ext_shift(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-shift",
        "Pool-conditional coverage under interference-arity shift (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };

    let mut pooled_cov: Vec<Vec<f32>> = vec![Vec::new(); SHIFTS.len()];
    let mut global_cov: Vec<Vec<f32>> = vec![Vec::new(); SHIFTS.len()];
    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let model = PitotPredictor(trained);
        let pooled = fit_bounds_generic(
            &model,
            &h.dataset,
            &split,
            eps,
            HeadSelection::TightestOnValidation,
        );
        let global = fit_global(&model, &h.dataset, &split, eps);

        for (s, (_, weights)) in SHIFTS.iter().enumerate() {
            let shifted = arity_shift_split(&h.dataset, 0.5, weights, rep as u64);
            let test: Vec<usize> = if h.eval_cap > 0 && shifted.test.len() > h.eval_cap {
                let stride = shifted.test.len().div_ceil(h.eval_cap);
                shifted.test.iter().copied().step_by(stride).collect()
            } else {
                shifted.test
            };
            pooled_cov[s].push(coverage_with_pools(
                &model, &pooled, &h.dataset, &test, true,
            ));
            global_cov[s].push(coverage_with_pools(
                &model, &global, &h.dataset, &test, false,
            ));
        }
    }

    for (label, covs) in [
        ("pooled (by arity)", pooled_cov),
        ("global (single pool)", global_cov),
    ] {
        fig.series.push(Series {
            label: label.into(),
            panel: format!("coverage at ε={eps}"),
            metric: "empirical coverage".into(),
            points: covs
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
    }
    for (s, (name, w)) in SHIFTS.iter().enumerate() {
        fig.notes
            .push(format!("x={s}: {name} (arity weights {w:?})"));
    }
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn pooled_calibration_survives_shift_better_than_global() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_shift(&h);
        let series = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let pooled = series("pooled (by arity)");
        let global = series("global (single pool)");
        assert_eq!(pooled.points.len(), SHIFTS.len());

        // Pooled coverage stays near nominal at the heaviest shift;
        // global must be strictly worse there.
        let last = SHIFTS.len() - 1;
        let p_cov = pooled.points[last].mean;
        let g_cov = global.points[last].mean;
        assert!(
            p_cov >= 0.85,
            "pooled coverage {p_cov} under worst-case shift"
        );
        assert!(
            g_cov < p_cov,
            "global calibration should break under shift: {g_cov} vs pooled {p_cov}"
        );
    }
}
