//! Compressed inference towers with conformal compensation (extension).
//!
//! The serving stack can run its frozen tower caches compressed —
//! magnitude-pruned weights, int8 per-row quantized tower matmuls, or both
//! ([`pitot::CompressionSpec`]). Compression perturbs every prediction, so
//! the question this experiment answers is the one that matters for the
//! paper's calibration promise: **does the conformal machinery keep its
//! coverage guarantee over a compressed model?**
//!
//! The answer is yes, *provided calibration is refit on the compressed
//! model's own residuals*: conformal validity needs only exchangeability
//! of the nonconformity scores, not model quality, so recalibrating
//! restores coverage at every compression level while the interval
//! *width* absorbs the compression error. The control arm makes the
//! mechanism visible: serving compressed predictions under the **dense**
//! model's stale calibration undercovers, because the dense residual
//! quantile is too small for the compressed model's larger residuals.
//!
//! Arms (all at ε = 0.1):
//!
//! - **recalibrated** — for each level (`none`, `int8`, `pruned`,
//!   `pruned+int8`): predictions from the compressed tower cache,
//!   calibration scores *also* from the compressed cache. Acceptance:
//!   clean coverage ≥ 0.88 for every level, width non-decreasing in the
//!   measured compression error.
//! - **stale calibration** — `pruned+int8` predictions bounded with the
//!   dense model's calibration: the broken deployment this experiment
//!   warns against.
//!
//! The per-level notes record the memory side of the tradeoff
//! ([`pitot::CompressedTower::weight_bytes`]); wall-clock throughput for
//! the same kernels is measured by `crates/bench/benches/compress.rs`
//! (`BENCH_compress.json`). Runs are replayable: a per-level FNV-1a
//! digest over every served bound is bitwise-stable across
//! `PITOT_THREADS` (diffed in CI via the `compress` example).

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::{CompressedTower, CompressionSpec, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::{HeadSelection, PooledConformal, PredictionSet, SweepCalibration};
use pitot_testbed::Dataset;

/// Miscoverage level of every arm.
const EPSILON: f32 = 0.1;
/// Sparsity of the pruning levels.
pub const SPARSITY: f32 = 0.5;
/// Test-set cap per replicate (keeps Fast-scale wall clock sane).
const TEST_CAP: usize = 4000;

/// The compression ladder, least to most aggressive.
pub fn levels() -> [CompressionSpec; 4] {
    [
        CompressionSpec::none(),
        CompressionSpec::int8(),
        CompressionSpec::pruned(SPARSITY),
        CompressionSpec::pruned_int8(SPARSITY),
    ]
}

/// Head predictions for `idx` scored through a (possibly compressed)
/// tower cache.
fn preds_cached(
    trained: &TrainedPitot,
    dataset: &Dataset,
    cache: &pitot::TowerCache,
    idx: &[usize],
) -> Vec<Vec<f32>> {
    let refs: Vec<&pitot_testbed::Observation> =
        idx.iter().map(|&i| &dataset.observations[i]).collect();
    trained.predict_log_runtime_cached(cache, &refs)
}

/// Interleaves the validation holdout into (calibration, selection)
/// halves, mirroring the core crate's split so dense and compressed
/// calibrations see identical index sets.
fn split_holdout(val: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let cal: Vec<usize> = val.iter().copied().step_by(2).collect();
    let sel: Vec<usize> = val.iter().copied().skip(1).step_by(2).collect();
    if sel.is_empty() {
        (cal.clone(), cal)
    } else {
        (cal, sel)
    }
}

fn targets_and_pools(dataset: &Dataset, idx: &[usize]) -> (Vec<f32>, Vec<usize>) {
    idx.iter()
        .map(|&i| {
            let o = &dataset.observations[i];
            (o.log_runtime(), o.interferers.len())
        })
        .unzip()
}

/// Conformal calibration fit on the residuals of the given tower cache —
/// the "recalibrate on the compressed model" step.
fn calibrate_on_cache(
    trained: &TrainedPitot,
    dataset: &Dataset,
    cache: &pitot::TowerCache,
) -> PooledConformal {
    let (cal_idx, sel_idx) = split_holdout(&trained.split.val);
    let cal_preds = preds_cached(trained, dataset, cache, &cal_idx);
    let sel_preds = preds_cached(trained, dataset, cache, &sel_idx);
    let (cal_t, cal_pool) = targets_and_pools(dataset, &cal_idx);
    let (sel_t, sel_pool) = targets_and_pools(dataset, &sel_idx);
    SweepCalibration::new(
        &PredictionSet {
            predictions: &cal_preds,
            targets_log: &cal_t,
            pools: &cal_pool,
        },
        sel_preds,
        sel_t,
        sel_pool,
        trained.model.config().objective.xis(),
    )
    .fit(EPSILON, HeadSelection::TightestOnValidation)
}

/// One (predictions, calibration) pairing judged over the test set.
struct ArmOutcome {
    coverage: f32,
    /// Mean log-space interval width, `bound − median prediction`.
    width: f32,
    /// FNV-1a over every served bound's bits — the replayability witness.
    digest: u64,
}

fn judge(
    dataset: &Dataset,
    test: &[usize],
    preds: &[Vec<f32>],
    conformal: &PooledConformal,
) -> ArmOutcome {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let (mut covered, mut width_sum) = (0usize, 0.0f64);
    for (b, &i) in test.iter().enumerate() {
        let o = &dataset.observations[i];
        let head_preds: Vec<f32> = preds.iter().map(|h| h[b]).collect();
        let bound = conformal.bound_log(&head_preds, o.interferers.len());
        covered += usize::from(bound >= o.log_runtime());
        width_sum += f64::from(bound - head_preds[0]);
        for &byte in &bound.to_bits().to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    ArmOutcome {
        coverage: covered as f32 / test.len().max(1) as f32,
        width: (width_sum / test.len().max(1) as f64) as f32,
        digest,
    }
}

/// Mean absolute deviation of compressed median predictions from the
/// dense ones — the realized compression error the widths must absorb.
fn compression_error(dense: &[Vec<f32>], compressed: &[Vec<f32>]) -> f32 {
    let n = dense[0].len().max(1);
    dense[0]
        .iter()
        .zip(&compressed[0])
        .map(|(d, c)| (d - c).abs())
        .sum::<f32>()
        / n as f32
}

/// Extension figure: conformal coverage and interval width across the
/// compression ladder, recalibrated vs stale-calibrated, at ε = 0.1.
pub fn ext_compress(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-compress",
        "Compressed inference towers: int8 + magnitude pruning with conformal \
         compensation — recalibration restores coverage, width absorbs the error \
         (extension)",
    );
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let specs = levels();
    let n_levels = specs.len();

    struct LevelAgg {
        coverage: Vec<f32>,
        width: Vec<f32>,
        error: Vec<f32>,
    }
    let mut agg: Vec<LevelAgg> = (0..n_levels)
        .map(|_| LevelAgg {
            coverage: Vec::new(),
            width: Vec::new(),
            error: Vec::new(),
        })
        .collect();
    let mut stale_cov: Vec<f32> = Vec::new();
    let mut stale_width: Vec<f32> = Vec::new();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let test: Vec<usize> = split.test.iter().copied().take(TEST_CAP).collect();

        let mut dense_preds: Option<Vec<Vec<f32>>> = None;
        let mut dense_conformal: Option<PooledConformal> = None;
        for (l, spec) in specs.iter().enumerate() {
            let tower = CompressedTower::new(&trained, spec);
            let cache = tower.tower_cache(&h.dataset);
            let preds = preds_cached(&trained, &h.dataset, &cache, &test);
            let conformal = calibrate_on_cache(&trained, &h.dataset, &cache);
            let out = judge(&h.dataset, &test, &preds, &conformal);
            let error = dense_preds
                .as_ref()
                .map_or(0.0, |d| compression_error(d, &preds));
            fig.notes.push(format!(
                "{} rep={rep}: digest={:016x} coverage={:.4} width={:.4} error={:.4} \
                 weight_bytes={} ({}% of dense)",
                spec.name(),
                out.digest,
                out.coverage,
                out.width,
                error,
                tower.weight_bytes(),
                100 * tower.weight_bytes() / tower.dense_weight_bytes().max(1),
            ));
            agg[l].coverage.push(out.coverage);
            agg[l].width.push(out.width);
            agg[l].error.push(error);
            // The stale arm: the most aggressive level's predictions under
            // the dense model's calibration.
            if l == 0 {
                dense_preds = Some(preds);
                dense_conformal = Some(conformal);
            } else if l == n_levels - 1 {
                let stale = judge(
                    &h.dataset,
                    &test,
                    &preds,
                    dense_conformal.as_ref().expect("dense arm ran first"),
                );
                fig.notes.push(format!(
                    "stale ({}) rep={rep}: digest={:016x} coverage={:.4} width={:.4}",
                    spec.name(),
                    stale.digest,
                    stale.coverage,
                    stale.width,
                ));
                stale_cov.push(stale.coverage);
                stale_width.push(stale.width);
            }
        }
    }

    for (panel, metric, values) in [
        (
            "test coverage (ε=0.1)",
            "empirical coverage",
            agg.iter().map(|a| a.coverage.clone()).collect::<Vec<_>>(),
        ),
        (
            "interval width",
            "mean log-space width",
            agg.iter().map(|a| a.width.clone()).collect::<Vec<_>>(),
        ),
        (
            "compression error",
            "mean |Δ median log prediction| vs dense",
            agg.iter().map(|a| a.error.clone()).collect::<Vec<_>>(),
        ),
    ] {
        fig.series.push(Series {
            label: "recalibrated".into(),
            panel: panel.into(),
            metric: metric.into(),
            points: values
                .into_iter()
                .enumerate()
                .map(|(l, v)| Point::from_replicates(l as f32, v))
                .collect(),
        });
    }
    fig.series.push(Series {
        label: "stale (dense calibration)".into(),
        panel: "test coverage (ε=0.1)".into(),
        metric: "empirical coverage".into(),
        points: vec![Point::from_replicates((n_levels - 1) as f32, stale_cov)],
    });
    fig.series.push(Series {
        label: "stale (dense calibration)".into(),
        panel: "interval width".into(),
        metric: "mean log-space width".into(),
        points: vec![Point::from_replicates((n_levels - 1) as f32, stale_width)],
    });
    fig.notes.push(format!(
        "levels (x axis): {}; sparsity {SPARSITY} on the pruning levels",
        specs
            .iter()
            .map(CompressionSpec::name)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    fig.notes.push(format!(
        "acceptance: recalibrated coverage ≥ 0.88 at ε = {EPSILON} for every level; \
         width non-decreasing in measured compression error; stale arm undercovers"
    ));
    fig.notes
        .push(format!("nominal coverage: {}", 1.0 - EPSILON));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn recalibration_restores_coverage_at_every_level() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_compress(&h);
        let recal = |panel: &str| -> Vec<(f32, f32)> {
            fig.series_for("recalibrated", panel)
                .unwrap_or_else(|| panic!("{panel} missing"))
                .points
                .iter()
                .map(|p| (p.x, p.mean))
                .collect()
        };

        // The ISSUE's gate: clean coverage ≥ 0.88 at ε = 0.1 for *every*
        // compression level once calibration is refit on the compressed
        // model's residuals.
        let coverage = recal("test coverage (ε=0.1)");
        for (spec, &(_, cov)) in levels().iter().zip(&coverage) {
            assert!(
                cov >= 0.88,
                "{}: recalibrated coverage {cov} below 0.88",
                spec.name()
            );
        }

        // Width absorbs the compression error monotonically: sorting the
        // levels by measured prediction error must leave the mean widths
        // non-decreasing (0.5% noise-floor slack for the near-lossless
        // int8 level).
        let width = recal("interval width");
        let error = recal("compression error");
        let mut order: Vec<usize> = (0..width.len()).collect();
        order.sort_by(|&a, &b| error[a].1.total_cmp(&error[b].1));
        for w in order.windows(2) {
            let (lo, hi) = (width[w[0]].1, width[w[1]].1);
            assert!(
                hi >= lo * 0.995,
                "width not monotone in compression error: {lo} then {hi}"
            );
        }
        // The pruning levels carry real error, so their widths must be
        // strictly wider than dense.
        assert!(
            error[2].1 > error[1].1,
            "pruning should dominate int8 error"
        );
        assert!(width[2].1 > width[0].1, "pruned width did not absorb error");

        // The stale arm demonstrates the failure recalibration fixes:
        // compressed predictions under the dense calibration undercover.
        let stale = fig
            .series_for("stale (dense calibration)", "test coverage (ε=0.1)")
            .expect("stale arm missing")
            .points[0]
            .mean;
        let recal_last = coverage.last().unwrap().1;
        assert!(
            stale < recal_last - 0.02,
            "stale calibration should undercover: stale {stale} vs recalibrated {recal_last}"
        );
    }

    #[test]
    fn digests_are_replayable() {
        // Two runs over the same harness must reproduce every digest note
        // bitwise — the in-process half of the CI cross-thread diff.
        let h = Harness::new(Scale::Fast);
        let a = ext_compress(&h);
        let b = ext_compress(&h);
        let digests = |f: &Figure| -> Vec<String> {
            f.notes
                .iter()
                .filter(|n| n.contains("digest="))
                .cloned()
                .collect()
        };
        assert!(!digests(&a).is_empty());
        assert_eq!(digests(&a), digests(&b), "compress replay diverged");
    }
}
