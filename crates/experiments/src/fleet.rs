//! Multi-replica serving under drift: merged windows and SLO-aware
//! admission (extension).
//!
//! `ext-serving` established that a *single* sliding-window server recovers
//! coverage under the arity-shift + e^0.3 runtime-drift stream. This
//! experiment scales that result out: the same drift stream is sharded over
//! N replica servers (disjoint event streams, as in a fleet of edge sites),
//! each replica keeps only its local window, and a coordinator merges
//! window summaries (`pitot_conformal::MergeableWindow`) every
//! `merge_every` observations into one fleet-level calibration — the merged
//! fit is bitwise identical to a centralized fit on the union, so the only
//! degrees of freedom are *staleness* (merge cadence) and *effective window
//! size* (replicas × per-replica window).
//!
//! Alongside coverage, every event also issues a deadline query: the fleet
//! admits or sheds it by the conformal bound's upper edge
//! (`pitot_serve::AdmissionQueue`), and the decision is scored against the
//! realized (drifted) runtime. Honest bounds translate directly into SLO
//! attainment among admitted jobs — the control-decision payoff of keeping
//! the fleet calibrated.
//!
//! Expected shape: all fleet arms dip after the shift and recover as
//! shifted scores displace warm ones; more replicas recover a touch slower
//! (bigger union window) but average away per-shard noise, and sparser
//! merge cadences lag by at most one cadence. SLO attainment tracks
//! coverage; shed rate spikes during the dip (bounds widen) and settles.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use crate::serving::{segment_coverage, weighted_stream, DRIFT_LOG, SEGMENTS, SHIFT_MIX, WARM_MIX};
use pitot::{Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_serve::{AdmissionConfig, DeadlineQuery, FleetConfig, FleetServer, ServeConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `(replicas, merge cadence)` sweep: replica count at a fixed cadence,
/// cadence at a fixed replica count.
const ARMS: [(usize, usize); 5] = [(1, 32), (2, 32), (4, 32), (2, 8), (2, 128)];

/// Deadline multiplier range on the realized runtime: below 1 the job is
/// infeasible by ground truth (an honest bound should shed it), well above
/// 1 it is comfortable.
const DEADLINE_MULT: (f32, f32) = (0.75, 3.0);

/// Per-replica sliding window (the fleet calibration set holds
/// `replicas × WINDOW` scores).
const WINDOW: usize = 256;

fn fleet_config(eps: f32, replicas: usize, merge_every: usize) -> FleetConfig {
    let mut serve = ServeConfig::at(eps);
    serve.window = WINDOW;
    // One global pool, as in ext-serving: the comparison isolates the
    // window protocol; arity pooling is measured by ext-shift.
    serve.pool_by_arity = false;
    serve.selection = HeadSelection::NaiveXi;
    serve.fine_tune_steps = 0;
    FleetConfig {
        serve,
        replicas,
        merge_every,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// One arm's per-segment outcomes over the shifted stream.
struct ArmOutcome {
    covered: Vec<bool>,
    slo_met: Vec<bool>,
    admitted: Vec<bool>,
}

fn run_arm(
    fleet: &mut FleetServer,
    h: &Harness,
    stream: &[usize],
    rng: &mut ChaCha8Rng,
) -> ArmOutcome {
    let mut covered = Vec::with_capacity(stream.len());
    let mut slo_met = Vec::with_capacity(stream.len());
    let mut admitted = Vec::with_capacity(stream.len());
    for (t, &i) in stream.iter().enumerate() {
        let mut obs = h.dataset.observations[i].clone();
        obs.runtime_s *= DRIFT_LOG.exp();
        // 1. An SLO query for this job, decided on the *current* fleet
        //    calibration (prequential, like the coverage judgement).
        let mult = rng.gen_range(DEADLINE_MULT.0..DEADLINE_MULT.1);
        let deadline_s = f64::from(obs.runtime_s) * f64::from(mult);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: obs.workload,
            platform: obs.platform,
            interferers: obs.interferers.clone(),
            deadline_s,
        });
        let was_admitted = out.decision.admitted();
        fleet.resolve(t as u64, f64::from(obs.runtime_s));
        admitted.push(was_admitted);
        slo_met.push(was_admitted && f64::from(obs.runtime_s) <= deadline_s);
        // 2. The realized runtime streams back as an observation.
        let (_, fb) = fleet.observe(t as f64, obs);
        covered.push(fb.expect("ext-fleet runs without faults").covered);
    }
    ArmOutcome {
        covered,
        slo_met,
        admitted,
    }
}

/// Per-segment SLO attainment: fraction of *admitted* queries in each
/// segment that met their deadline.
fn segment_attainment(met: &[bool], admitted: &[bool]) -> Vec<f32> {
    let seg = admitted.len().div_ceil(SEGMENTS).max(1);
    met.chunks(seg)
        .zip(admitted.chunks(seg))
        .map(|(m, a)| {
            let n = a.iter().filter(|&&x| x).count();
            if n == 0 {
                f32::NAN
            } else {
                m.iter().filter(|&&x| x).count() as f32 / n as f32
            }
        })
        .collect()
}

/// Extension figure: coverage and SLO attainment over the shifted stream
/// for a fleet of merged-window replicas (replica count × merge cadence
/// sweep) at ε = 0.1.
pub fn ext_fleet(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-fleet",
        "Multi-replica merged-window serving under arity shift + runtime drift (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let (warm_n, shift_n) = match h.scale {
        crate::harness::Scale::Fast => (600usize, 1600usize),
        crate::harness::Scale::Full => (1500, 4000),
    };

    // label → (per-segment coverages, per-segment attainments, shed rates).
    struct ArmAgg {
        label: String,
        cov: Vec<Vec<f32>>,
        slo: Vec<Vec<f32>>,
        shed: Vec<f32>,
    }
    let mut arms: Vec<ArmAgg> = ARMS
        .iter()
        .map(|&(r, c)| ArmAgg {
            label: format!("replicas={r} merge={c}"),
            cov: vec![Vec::new(); SEGMENTS],
            slo: vec![Vec::new(); SEGMENTS],
            shed: Vec::new(),
        })
        .collect();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE_7000 ^ rep as u64);
        let warm = weighted_stream(&h.dataset, &split.test, &WARM_MIX, warm_n, &mut rng);
        let shifted = weighted_stream(&h.dataset, &split.test, &SHIFT_MIX, shift_n, &mut rng);

        for (a, &(replicas, merge_every)) in ARMS.iter().enumerate() {
            let mut fleet = FleetServer::new(
                trained.clone(),
                &h.dataset,
                fleet_config(eps, replicas, merge_every),
            );
            fleet.seed_calibration(&warm);
            let mut arm_rng =
                ChaCha8Rng::seed_from_u64((0x0DEA_D11E * (a as u64 + 1)) ^ rep as u64);
            let out = run_arm(&mut fleet, h, &shifted, &mut arm_rng);
            for (s, cov) in segment_coverage(&out.covered).into_iter().enumerate() {
                arms[a].cov[s].push(cov);
            }
            for (s, slo) in segment_attainment(&out.slo_met, &out.admitted)
                .into_iter()
                .enumerate()
            {
                if slo.is_finite() {
                    arms[a].slo[s].push(slo);
                }
            }
            arms[a].shed.push(fleet.stats().admission.shed_rate());
        }
    }

    for arm in arms {
        fig.series.push(Series {
            label: arm.label.clone(),
            panel: format!("coverage over shifted stream (ε={eps})"),
            metric: "empirical coverage".into(),
            points: arm
                .cov
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
        fig.series.push(Series {
            label: arm.label.clone(),
            panel: "SLO attainment among admitted".into(),
            metric: "attainment".into(),
            points: arm
                .slo
                .into_iter()
                .enumerate()
                .filter(|(_, v)| !v.is_empty())
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
        fig.series.push(Series {
            label: arm.label,
            panel: "shed rate (whole stream)".into(),
            metric: "fraction shed".into(),
            points: vec![Point::from_replicates(0.0, arm.shed)],
        });
    }
    fig.notes.push(format!(
        "stream: {warm_n} warm events seed the replicas round-robin, then {shift_n} shifted \
         events (arity weights {SHIFT_MIX:?}, runtimes slowed by e^{DRIFT_LOG}) are sharded by \
         (workload, platform) hash; every event also issues a deadline query \
         (deadline = realized runtime × U{DEADLINE_MULT:?}) admitted/shed by the conformal \
         upper edge"
    ));
    fig.notes.push(format!(
        "per-replica window {WINDOW}, one global calibration pool; the merged fleet fit is \
         bitwise identical to a centralized fit on the union of replica windows, so arms \
         differ only in staleness (merge cadence) and union size (replica count)"
    ));
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn fleet_recovers_coverage_and_attains_slos_under_drift() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_fleet(&h);
        let cov_panel = format!("coverage over shifted stream (ε={})", 0.1);
        let last_cov = |label: &str| {
            fig.series_for(label, &cov_panel)
                .unwrap_or_else(|| panic!("{label} missing"))
                .points
                .last()
                .expect("segments present")
                .mean
        };
        // Acceptance: ≥ 0.88 coverage at ε = 0.1 by the end of the drift
        // stream for every multi-replica arm (the windows have fully
        // turned over to shifted scores by the final segment).
        for label in [
            "replicas=2 merge=32",
            "replicas=4 merge=32",
            "replicas=2 merge=8",
        ] {
            let cov = last_cov(label);
            assert!(
                cov >= 0.88,
                "{label}: final-segment coverage {cov} below 0.88"
            );
        }
        // The single-replica arm is the ext-serving baseline: the fleet
        // arms must match it within noise (merging costs no validity).
        let single = last_cov("replicas=1 merge=32");
        let two = last_cov("replicas=2 merge=32");
        assert!(
            (single - two).abs() < 0.08,
            "1-replica {single} vs 2-replica {two} diverge beyond noise"
        );
        // SLO attainment among admitted queries must end near/above
        // nominal: the admission decision inherits the bound's calibration.
        let slo = fig
            .series_for("replicas=2 merge=32", "SLO attainment among admitted")
            .expect("slo series")
            .points
            .last()
            .expect("slo points")
            .mean;
        assert!(slo >= 0.85, "final SLO attainment {slo} too low");
        // Admission must be doing real work: some sheds, not everything.
        let shed = fig
            .series_for("replicas=2 merge=32", "shed rate (whole stream)")
            .expect("shed series")
            .points[0]
            .mean;
        assert!(
            (0.02..0.6).contains(&shed),
            "shed rate {shed} outside plausible band"
        );
    }
}
