//! A uniform interface over Pitot and the baselines for comparisons.

use pitot::{PitotConfig, TrainedPitot};
use pitot_baselines::{
    AttentionConfig, AttentionNet, LogPredictor, MatrixFactorization, MfConfig, NeuralNetwork,
    NnConfig,
};
use pitot_testbed::{split::Split, Dataset};

/// Adapter making a [`TrainedPitot`] usable through the [`LogPredictor`]
/// trait the baselines share.
pub struct PitotPredictor(pub TrainedPitot);

impl LogPredictor for PitotPredictor {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        self.0.predict_log_runtime(dataset, idx)
    }

    fn quantile_levels(&self) -> Vec<f32> {
        self.0.model.config().objective.xis()
    }

    fn method_name(&self) -> &'static str {
        "Pitot"
    }
}

/// A trainable method in the Fig 6 comparison.
#[derive(Debug, Clone)]
pub enum Method {
    /// The paper's method.
    Pitot(PitotConfig),
    /// Pure matrix factorization (App B.4).
    MatrixFactorization(MfConfig),
    /// Neural-network baseline (App B.4).
    NeuralNetwork(NnConfig),
    /// Attention baseline (App B.4).
    Attention(AttentionConfig),
}

impl Method {
    /// Display label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Pitot(_) => "Pitot",
            Method::MatrixFactorization(_) => "Matrix Factorization",
            Method::NeuralNetwork(_) => "Neural Network",
            Method::Attention(_) => "Attention",
        }
    }

    /// Trains the method on a split, with `seed` controlling replicate
    /// randomness.
    pub fn train(&self, dataset: &Dataset, split: &Split, seed: u64) -> Box<dyn LogPredictor> {
        match self {
            Method::Pitot(cfg) => {
                let cfg = cfg.clone().with_seed(seed);
                Box::new(PitotPredictor(pitot::train(dataset, split, &cfg)))
            }
            Method::MatrixFactorization(cfg) => {
                let mut cfg = cfg.clone();
                cfg.train = cfg.train.with_seed(seed);
                Box::new(MatrixFactorization::train(dataset, split, &cfg))
            }
            Method::NeuralNetwork(cfg) => {
                let mut cfg = cfg.clone();
                cfg.train = cfg.train.with_seed(seed);
                Box::new(NeuralNetwork::train(dataset, split, &cfg))
            }
            Method::Attention(cfg) => {
                let mut cfg = cfg.clone();
                cfg.train = cfg.train.with_seed(seed);
                Box::new(AttentionNet::train(dataset, split, &cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    #[test]
    fn all_methods_train_and_predict() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let methods = vec![
            Method::Pitot(PitotConfig::tiny()),
            Method::MatrixFactorization(MfConfig::tiny()),
            Method::NeuralNetwork(NnConfig::tiny()),
            Method::Attention(AttentionConfig::tiny()),
        ];
        let idx: Vec<usize> = split.test.iter().copied().take(50).collect();
        for m in methods {
            let model = m.train(&ds, &split, 0);
            let preds = model.predict_log(&ds, &idx);
            assert_eq!(preds[0].len(), idx.len(), "{}", m.label());
            assert!(preds[0].iter().all(|p| p.is_finite()), "{}", m.label());
        }
    }
}
