//! Streaming recalibration under workload shift (extension).
//!
//! Gui et al.'s *conformalized matrix completion* grounds the validity of
//! recalibrating on a moving calibration set; this experiment measures what
//! that buys in deployment. A trained model serves a stream that shifts
//! mid-run: the interference-arity mix flips from calibration-like (mostly
//! isolation) to worst-case (all 4-way co-location), and the shifted phase
//! runs `DRIFT_LOG` (0.3) nats slower — the sustained-co-location slowdown
//! (thermal throttling, cache pollution) a long-lived edge site accumulates
//! and no frozen holdout ever saw. Two calibrators race:
//!
//! - **static split**: fit once on the warm prefix, never touched again —
//!   the offline deployment the paper's pipeline produces;
//! - **sliding window** (`pitot-serve`): the same warm seed, but every
//!   arriving observation enters a ring-buffer calibration set and the
//!   served bounds refresh on a cadence.
//!
//! Both use a single *global* calibration pool, so the comparison isolates
//! the effect of windowing itself (arity-keyed pools would hide the shift —
//! that defense is measured by `ext_shift`; serving composes both). The
//! sweep covers window sizes × refresh cadences.
//!
//! Expected shape: every calibrator starts at nominal coverage; after the
//! shift the static calibrator under-covers for the rest of the stream,
//! while sliding windows dip and recover as shifted scores displace warm
//! ones — faster for smaller windows and denser refresh cadences.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::{Objective, PitotConfig};
use pitot_serve::{Event, PitotServer, ServeConfig};
use pitot_testbed::{Dataset, MAX_INTERFERERS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Warm-phase arity weights (calibration-like: isolation-heavy).
pub(crate) const WARM_MIX: [f32; MAX_INTERFERERS + 1] = [3.0, 1.0, 1.0, 1.0];
/// Shifted-phase arity weights (worst case: everything 4-way co-located).
pub(crate) const SHIFT_MIX: [f32; MAX_INTERFERERS + 1] = [0.0, 0.0, 0.0, 1.0];
/// Log-space slowdown of the shifted phase: every observed runtime grows by
/// `e^DRIFT_LOG` (~35%), modelling the sustained-co-location degradation a
/// deployment accumulates after its calibration snapshot.
pub(crate) const DRIFT_LOG: f32 = 0.3;
/// Post-shift stream segments reported as coverage-over-time points.
pub(crate) const SEGMENTS: usize = 8;

/// `(window size, refresh cadence)` sweep.
const ARMS: [(usize, usize); 4] = [(256, 1), (256, 32), (1024, 1), (1024, 32)];

/// Samples `n` observation indices from `idx`, drawing interference arities
/// according to `weights` (with replacement — a stream re-measures).
pub(crate) fn weighted_stream(
    dataset: &Dataset,
    idx: &[usize],
    weights: &[f32; MAX_INTERFERERS + 1],
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<usize> {
    let mut by_mode: Vec<Vec<usize>> = vec![Vec::new(); MAX_INTERFERERS + 1];
    for &i in idx {
        by_mode[dataset.observations[i].interferers.len()].push(i);
    }
    let active: Vec<(usize, f32)> = weights
        .iter()
        .enumerate()
        .filter(|&(k, &w)| w > 0.0 && !by_mode[k].is_empty())
        .map(|(k, &w)| (k, w))
        .collect();
    assert!(
        !active.is_empty(),
        "no arity mode matches the requested mix"
    );
    let total: f32 = active.iter().map(|&(_, w)| w).sum();
    (0..n)
        .map(|_| {
            let mut draw = rng.gen_range(0.0..total);
            let mut mode = active[active.len() - 1].0;
            for &(k, w) in &active {
                if draw < w {
                    mode = k;
                    break;
                }
                draw -= w;
            }
            by_mode[mode][rng.gen_range(0..by_mode[mode].len())]
        })
        .collect()
}

/// Prequential covered-flags of one serving arm over `stream`, with every
/// observed runtime slowed by `drift_log` nats.
fn run_arm(
    server: &mut PitotServer,
    dataset: &Dataset,
    stream: &[usize],
    drift_log: f32,
) -> Vec<bool> {
    stream
        .iter()
        .enumerate()
        .map(|(t, &i)| {
            let mut obs = dataset.observations[i].clone();
            obs.runtime_s *= drift_log.exp();
            server
                .on_event(t as f64, Event::Observe(obs))
                .observed
                .expect("observation feedback")
                .covered
        })
        .collect()
}

/// Mean coverage of each of [`SEGMENTS`] equal slices of `covered`.
pub(crate) fn segment_coverage(covered: &[bool]) -> Vec<f32> {
    let seg = covered.len().div_ceil(SEGMENTS).max(1);
    covered
        .chunks(seg)
        .map(|c| c.iter().filter(|&&b| b).count() as f32 / c.len() as f32)
        .collect()
}

/// Extension figure: coverage over the shifted stream for sliding-window
/// serving (window × cadence sweep) versus the static split calibrator, at
/// ε = 0.1.
pub fn ext_serving(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-serving",
        "Sliding-window recalibration under arity shift + runtime drift (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let (warm_n, shift_n) = match h.scale {
        crate::harness::Scale::Fast => (600usize, 1600usize),
        crate::harness::Scale::Full => (1500, 4000),
    };

    // label → per-segment replicate coverages.
    let mut arm_cov: Vec<(String, Vec<Vec<f32>>)> = ARMS
        .iter()
        .map(|&(w, c)| {
            (
                format!("window={w} refresh={c}"),
                vec![Vec::new(); SEGMENTS],
            )
        })
        .collect();
    arm_cov.push(("static split".into(), vec![Vec::new(); SEGMENTS]));

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E21_1E55 ^ rep as u64);
        let warm = weighted_stream(&h.dataset, &split.test, &WARM_MIX, warm_n, &mut rng);
        let shifted = weighted_stream(&h.dataset, &split.test, &SHIFT_MIX, shift_n, &mut rng);

        let serve_cfg = |window: usize, cadence: usize| {
            let mut sc = ServeConfig::at(eps);
            sc.window = window;
            sc.refresh_every = cadence;
            // One global pool: isolate windowing from arity pooling.
            sc.pool_by_arity = false;
            sc.fine_tune_steps = 0;
            sc
        };

        for (a, &(window, cadence)) in ARMS.iter().enumerate() {
            let mut server = PitotServer::new(
                trained.clone(),
                h.dataset.clone(),
                serve_cfg(window, cadence),
            );
            server.seed_calibration(&warm);
            let covered = run_arm(&mut server, &h.dataset, &shifted, DRIFT_LOG);
            for (s, cov) in segment_coverage(&covered).into_iter().enumerate() {
                arm_cov[a].1[s].push(cov);
            }
        }

        // Static split calibrator: same warm seed, refresh frozen after it.
        let mut sc = serve_cfg(usize::MAX, usize::MAX);
        sc.window = warm_n; // retain the whole warm prefix
        let mut server = PitotServer::new(trained.clone(), h.dataset.clone(), sc);
        server.seed_calibration(&warm);
        let covered = run_arm(&mut server, &h.dataset, &shifted, DRIFT_LOG);
        let last = arm_cov.len() - 1;
        for (s, cov) in segment_coverage(&covered).into_iter().enumerate() {
            arm_cov[last].1[s].push(cov);
        }
    }

    for (label, per_seg) in arm_cov {
        fig.series.push(Series {
            label,
            panel: format!("coverage over shifted stream (ε={eps})"),
            metric: "empirical coverage".into(),
            points: per_seg
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
    }
    fig.notes.push(format!(
        "stream: {warm_n} warm events (arity weights {WARM_MIX:?}) seed the calibrator, \
         then {shift_n} shifted events (weights {SHIFT_MIX:?}, runtimes slowed by \
         e^{DRIFT_LOG}) are judged prequentially"
    ));
    fig.notes.push(
        "single global calibration pool on every arm — the comparison isolates windowing; \
         arity-keyed pools are measured by ext-shift"
            .into(),
    );
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn sliding_window_holds_coverage_where_static_split_degrades() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_serving(&h);
        let final_cov = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .points
                .last()
                .expect("segments present")
                .mean
        };
        let sliding = final_cov("window=256 refresh=1");
        let lazy = final_cov("window=1024 refresh=32");
        let static_split = final_cov("static split");

        // By the last segment the tight sliding window has fully turned
        // over to shifted scores: coverage back within binomial slack of
        // nominal (segments are ~200 observations × replicates).
        assert!(
            sliding >= 0.82,
            "sliding-window coverage {sliding} did not recover"
        );
        // The static calibrator keeps serving warm-mix quantiles against a
        // slower, noisier world: it must sit far below both the adapted
        // window and nominal (measured ≈0.50 at Fast scale).
        assert!(
            static_split < sliding - 0.1,
            "static split {static_split} should degrade vs sliding {sliding}"
        );
        assert!(
            static_split < 0.75,
            "static split {static_split} unexpectedly held nominal under shift"
        );
        // Even the laziest arm (big window, sparse refresh) must beat
        // frozen calibration by the end of the stream.
        assert!(
            lazy >= static_split,
            "lazy arm {lazy} should not fall below static {static_split}"
        );
    }
}
