//! Method ablations (paper Fig 4a–d): loss formulation, side information,
//! interference handling, and the interference activation function.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::{InterferenceMode, LossSpace, PitotConfig};
use pitot_nn::Activation;

/// Runs an error-vs-train-fraction sweep over named Pitot variants and
/// reports MAPE with and without interference as separate panels (the
/// paper's two-panel layout).
pub fn pitot_error_curve(
    h: &Harness,
    id: &str,
    title: &str,
    variants: &[(String, PitotConfig)],
) -> Figure {
    let mut fig = Figure::new(id, title);
    for (label, cfg) in variants {
        let mut no_points = Vec::new();
        let mut with_points = Vec::new();
        for &fraction in &h.fractions {
            let mut no_reps = Vec::new();
            let mut with_reps = Vec::new();
            for rep in 0..h.replicates {
                let split = h.split(fraction, rep);
                let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
                let no_idx = h.test_without_interference(&split);
                let with_idx = h.test_with_interference(&split);
                no_reps.push(trained.mape(&h.dataset, &no_idx, None));
                with_reps.push(trained.mape(&h.dataset, &with_idx, None));
            }
            no_points.push(Point::from_replicates(fraction, no_reps));
            with_points.push(Point::from_replicates(fraction, with_reps));
        }
        fig.series.push(Series {
            label: label.clone(),
            panel: "without interference".into(),
            metric: "MAPE".into(),
            points: no_points,
        });
        fig.series.push(Series {
            label: label.clone(),
            panel: "with interference".into(),
            metric: "MAPE".into(),
            points: with_points,
        });
    }
    fig
}

/// Fig 4a: log-residual objective vs plain log objective vs naive
/// proportional loss.
pub fn fig4a(h: &Harness) -> Figure {
    let base = h.pitot_config();
    let variants = vec![
        ("Log-Residual Objective".to_string(), base.clone()),
        (
            "Log Objective".to_string(),
            PitotConfig {
                loss_space: LossSpace::Log,
                ..base.clone()
            },
        ),
        (
            "Naive Proportional Loss".to_string(),
            PitotConfig {
                loss_space: LossSpace::NaiveProportional,
                ..base
            },
        ),
    ];
    pitot_error_curve(h, "fig4a", "Loss formulation ablation", &variants)
}

/// Fig 4b (and its uncropped twin Fig 9a): workload/platform side
/// information ablation.
pub fn fig4b(h: &Harness) -> Figure {
    let base = h.pitot_config();
    let variants = vec![
        ("All Features".to_string(), base.clone()),
        (
            "Platform Features Only".to_string(),
            PitotConfig {
                use_workload_features: false,
                ..base.clone()
            },
        ),
        (
            "Workload Features Only".to_string(),
            PitotConfig {
                use_platform_features: false,
                ..base.clone()
            },
        ),
        (
            "No Features".to_string(),
            PitotConfig {
                use_workload_features: false,
                use_platform_features: false,
                // Without side information the learned features carry the
                // whole embedding; give them a little more width.
                learned_features: base.learned_features.max(4),
                ..base
            },
        ),
    ];
    pitot_error_curve(h, "fig4b", "Side information ablation", &variants)
}

/// Fig 4c: interference-aware vs discard vs ignore.
pub fn fig4c(h: &Harness) -> Figure {
    let base = h.pitot_config();
    let variants = vec![
        ("Interference-Aware".to_string(), base.clone()),
        (
            "Discard".to_string(),
            PitotConfig {
                interference: InterferenceMode::Discard,
                ..base.clone()
            },
        ),
        (
            "Ignore".to_string(),
            PitotConfig {
                interference: InterferenceMode::Ignore,
                ..base
            },
        ),
    ];
    pitot_error_curve(h, "fig4c", "Interference handling ablation", &variants)
}

/// Fig 4d: interference activation function vs simple multiplicative model.
pub fn fig4d(h: &Harness) -> Figure {
    let base = h.pitot_config();
    let variants = vec![
        ("With Activation Function".to_string(), base.clone()),
        (
            "Simple Multiplicative".to_string(),
            PitotConfig {
                interference_activation: Activation::Identity,
                ..base
            },
        ),
    ];
    pitot_error_curve(h, "fig4d", "Interference activation ablation", &variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    /// One miniature end-to-end ablation run exercising the shared loop.
    #[test]
    fn error_curve_shape() {
        let mut h = Harness::new(Scale::Fast);
        h.fractions = vec![0.5];
        h.replicates = 1;
        h.eval_cap = 2000;
        let mut cfg = h.pitot_config();
        cfg.steps = 120;
        cfg.eval_every = 60;
        let fig = pitot_error_curve(&h, "t", "t", &[("Pitot".into(), cfg)]);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), 1);
        assert!(fig.series[0].points[0].mean.is_finite());
    }
}
