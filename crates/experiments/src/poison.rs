//! Fleet serving under poisoned telemetry: trustworthy-telemetry guards
//! vs blind trust (extension).
//!
//! `ext-chaos` stressed the fleet's *control* plane (crashes, outages,
//! lossy merges). This experiment poisons the *data* plane instead: the
//! same closed admission loop runs while a seeded
//! [`pitot_serve::FaultPlan`] corrupts runtimes (NaN/Inf/negative),
//! injects heavy downward scale-outlier bursts, replays and clock-skews
//! merge summaries, and turns one replica Byzantine (tampered score
//! segments). Coverage is judged on the **clean** events only — poisoned
//! events are identified by diffing the fleet's injection counters around
//! each observation — because the conformal promise under attack is to
//! the honest telemetry, and downward outliers are trivially "covered"
//! by any upper bound.
//!
//! Three arms:
//!
//! - **no faults** — the clean baseline under this stream;
//! - **guarded (full schedule)** — [`pitot_serve::ServeConfig::guarded`]
//!   posture: ingest guard + MAD screen + miscoverage watchdog, with the
//!   always-on summary-integrity screen rejecting the Byzantine replica's
//!   tampered segments;
//! - **unguarded (outlier bursts)** — the pre-guard fail-stop server fed
//!   the finite-valued subset of the schedule (outlier bursts only; the
//!   fail-stop contract would crash outright on NaN — the subset is the
//!   *favourable* case for it, and it still collapses).
//!
//! Expected shape: the guarded arm quarantines the poison on arrival
//! (its calibration window never ingests it) and holds clean-event
//! coverage ≥ 0.88 at ε = 0.1; the unguarded arm's window fills with
//! deeply negative scores that drag the calibration quantile down, and
//! its clean-event coverage collapses below 0.80. Zero silent drops:
//! every injected fault lands in a quarantine or rejection counter.
//! Poison runs are replayable: the per-arm decision digest is
//! bitwise-stable for a fixed fault seed regardless of `PITOT_THREADS`
//! (re-verified in-process here, and diffed across thread counts in CI
//! via the `poison` example).

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::{Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, FaultPlan, FleetConfig, FleetServer, ServeConfig,
};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fleet size; the fault plan turns replica 1 of these Byzantine.
const REPLICAS: usize = 3;
/// Coordinator merge cadence (fleet-wide observations).
const MERGE_EVERY: usize = 16;
/// Per-replica sliding window.
const WINDOW: usize = 128;
/// Deadline multiplier range on the realized runtime (as `ext-chaos`).
const DEADLINE_MULT: (f32, f32) = (0.75, 3.0);
/// Stream slices for the coverage panel.
const SEGMENTS: usize = 8;
/// Seed of every arm's fault-plan RNGs (control and data streams). CI
/// replays the `poison` example under different `PITOT_THREADS` with
/// this seed and diffs the decision digests.
pub const FAULT_SEED: u64 = 0x0009_0150_5EED;

/// Probability an observation starts a scale-outlier burst.
const OUTLIER_PROB: f32 = 0.25;
/// Outlier severity: `runtime ← runtime · e^{-12}` (~6·10⁻⁶×). Downward,
/// so the poison drags the calibration quantile *down* — the direction
/// that breaks coverage for honest events — while each poisoned event is
/// itself trivially under any upper bound.
const OUTLIER_LOG_SCALE: f32 = -12.0;
/// Maximum burst length; with [`OUTLIER_PROB`] this contaminates ~60% of
/// the stream — beyond what rank-displacement robustness absorbs, while
/// the guarded window stays clean because every burst is screened against
/// the (clean) seeded calibration before it can enter.
const OUTLIER_BURST_MAX: usize = 8;
/// Probability a runtime is corrupted to NaN/Inf/negative (guarded arm
/// only: the fail-stop contract would crash on these).
const CORRUPT_PROB: f32 = 0.05;

/// The full data-fault schedule, scaled to an `n`-event stream: runtime
/// corruption and heavy downward outlier bursts throughout, replayed and
/// clock-skewed merge summaries, and replica 1 turning Byzantine at the
/// stream's midpoint.
pub fn full_plan(n: usize) -> FaultPlan {
    FaultPlan::none(FAULT_SEED)
        .corrupt_observations(CORRUPT_PROB)
        .outlier_bursts(OUTLIER_PROB, OUTLIER_LOG_SCALE, OUTLIER_BURST_MAX)
        .replay_summaries(0.15)
        .skew_clocks(0.10)
        .byzantine_replica(1, n / 2)
}

/// The finite-valued subset of [`full_plan`] the unguarded fail-stop
/// server can survive: outlier bursts only.
pub fn outlier_only_plan() -> FaultPlan {
    FaultPlan::none(FAULT_SEED).outlier_bursts(OUTLIER_PROB, OUTLIER_LOG_SCALE, OUTLIER_BURST_MAX)
}

fn fleet_config(eps: f32, guarded: bool) -> FleetConfig {
    let mut serve = if guarded {
        ServeConfig::guarded(eps)
    } else {
        ServeConfig::at(eps)
    };
    serve.window = WINDOW;
    serve.pool_by_arity = false;
    serve.selection = HeadSelection::NaiveXi;
    serve.fine_tune_steps = 0;
    FleetConfig {
        serve,
        replicas: REPLICAS,
        merge_every: MERGE_EVERY,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// FNV-1a over every admission decision, served bound, and coverage
/// flag — the replayability witness.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One arm's outcomes over the poisoned stream.
struct ArmOutcome {
    /// Per-event coverage on **clean** events only; `None` where the
    /// event was poisoned at injection or quarantined at ingest.
    clean_flags: Vec<Option<bool>>,
    digest: u64,
    stats: pitot_serve::FleetStats,
}

fn run_arm(
    fleet: &mut FleetServer,
    h: &Harness,
    stream: &[usize],
    rng: &mut ChaCha8Rng,
) -> ArmOutcome {
    let mut digest = Digest::new();
    let mut clean_flags = Vec::with_capacity(stream.len());
    for (t, &i) in stream.iter().enumerate() {
        let obs = h.dataset.observations[i].clone();
        let mult = rng.gen_range(DEADLINE_MULT.0..DEADLINE_MULT.1);
        let deadline_s = f64::from(obs.runtime_s) * f64::from(mult);
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: obs.workload,
            platform: obs.platform,
            interferers: obs.interferers.clone(),
            deadline_s,
        });
        digest.push(&[u8::from(out.decision.admitted())]);
        digest.push(&out.prediction.bound_s.to_bits().to_le_bytes());
        // Admission is resolved against the *clean* realized runtime: the
        // injected fault corrupts what the server observes, not what the
        // job actually did.
        fleet.resolve(t as u64, f64::from(obs.runtime_s));
        let before = fleet.stats();
        let (_, fb) = fleet.observe(t as f64, obs);
        let after = fleet.stats();
        let poisoned = after.injected_corrupt + after.injected_outliers
            > before.injected_corrupt + before.injected_outliers;
        digest.push(&[fb.as_ref().map_or(2, |f| u8::from(f.covered))]);
        clean_flags.push(if poisoned {
            None
        } else {
            fb.map(|f| f.covered)
        });
    }
    ArmOutcome {
        clean_flags,
        digest: digest.0,
        stats: fleet.stats(),
    }
}

/// Per-segment coverage over the judged clean events.
fn segment_coverage_clean(flags: &[Option<bool>]) -> Vec<f32> {
    let seg = flags.len().div_ceil(SEGMENTS).max(1);
    flags
        .chunks(seg)
        .map(|c| {
            let judged: Vec<bool> = c.iter().filter_map(|&f| f).collect();
            judged.iter().filter(|&&b| b).count() as f32 / judged.len().max(1) as f32
        })
        .collect()
}

fn overall_coverage_clean(flags: &[Option<bool>]) -> f32 {
    let judged: Vec<bool> = flags.iter().filter_map(|&f| f).collect();
    judged.iter().filter(|&&b| b).count() as f32 / judged.len().max(1) as f32
}

/// Extension figure: clean-event coverage under poisoned telemetry for a
/// guarded fleet (ingest guard + summary integrity + watchdog) against
/// an unguarded fleet and the fault-free baseline, at ε = 0.1.
pub fn ext_poison(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-poison",
        "Fleet serving under poisoned telemetry: ingest guard, Byzantine merge rejection, \
         miscoverage watchdog vs blind trust (extension)",
    );
    let eps = 0.1f32;
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let n = match h.scale {
        crate::harness::Scale::Fast => 1200usize,
        crate::harness::Scale::Full => 3000,
    };

    struct ArmSpec {
        label: &'static str,
        guarded: bool,
        plan: Option<fn(usize) -> FaultPlan>,
    }
    let specs = [
        ArmSpec {
            label: "no faults",
            guarded: false,
            plan: None,
        },
        ArmSpec {
            label: "guarded (full schedule)",
            guarded: true,
            plan: Some(full_plan),
        },
        ArmSpec {
            label: "unguarded (outlier bursts)",
            guarded: false,
            plan: Some(|_| outlier_only_plan()),
        },
    ];
    struct ArmAgg {
        cov: Vec<Vec<f32>>,
        overall: Vec<f32>,
    }
    let mut agg: Vec<ArmAgg> = specs
        .iter()
        .map(|_| ArmAgg {
            cov: vec![Vec::new(); SEGMENTS],
            overall: Vec::new(),
        })
        .collect();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(0x9015_0000 ^ rep as u64);
        let mut stream = split.test.clone();
        stream.shuffle(&mut rng);
        while stream.len() < n {
            stream.extend_from_within(0..stream.len().min(n - stream.len()));
        }
        stream.truncate(n);

        for (a, spec) in specs.iter().enumerate() {
            let run = |arm_seed: u64| {
                let fleet_cfg = fleet_config(eps, spec.guarded);
                let mut fleet = match spec.plan {
                    Some(plan) => {
                        FleetServer::with_faults(trained.clone(), &h.dataset, fleet_cfg, plan(n))
                    }
                    None => FleetServer::new(trained.clone(), &h.dataset, fleet_cfg),
                };
                fleet.seed_calibration(&split.val);
                let mut arm_rng = ChaCha8Rng::seed_from_u64(arm_seed);
                run_arm(&mut fleet, h, &stream, &mut arm_rng)
            };
            let arm_seed = (0x9015_0D00 + a as u64) ^ (rep as u64) << 8;
            let out = run(arm_seed);
            if spec.plan.is_some() && rep == 0 {
                // Replayability: the same fault seed must reproduce the
                // decision digest bitwise (the cross-PITOT_THREADS half of
                // this property is CI's digest diff on the example).
                let replay = run(arm_seed);
                assert_eq!(
                    out.digest, replay.digest,
                    "{}: poison replay diverged for a fixed fault seed",
                    spec.label
                );
            }
            for (s, cov) in segment_coverage_clean(&out.clean_flags)
                .into_iter()
                .enumerate()
            {
                agg[a].cov[s].push(cov);
            }
            agg[a]
                .overall
                .push(overall_coverage_clean(&out.clean_flags));
            let g = &out.stats.guard;
            fig.notes.push(format!(
                "{} rep={rep}: digest={:016x} injected corrupt={} outliers={} replays={} \
                 skews={} byz_emissions={}; quarantined={} (nonfinite={} nonpositive={} \
                 mad={} watchdog={}) rejected_summaries={}",
                spec.label,
                out.digest,
                out.stats.injected_corrupt,
                out.stats.injected_outliers,
                out.stats.injected_replays,
                out.stats.injected_skews,
                out.stats.byzantine_emissions,
                g.quarantined,
                g.nonfinite_runtimes,
                g.nonpositive_runtimes,
                g.mad_outliers,
                g.watchdog_purged,
                out.stats.rejected_summaries,
            ));
            // Zero silent drops: every delivered observation is judged or
            // sits in an ingest quarantine counter (watchdog purges
            // re-audit already-judged entries and are excluded).
            let s = &out.stats;
            let ingest_quarantined = g.nonfinite_runtimes + g.nonpositive_runtimes + g.mad_outliers;
            assert_eq!(
                s.observations,
                s.bounded + ingest_quarantined,
                "{}: silent drop — delivered != judged + quarantined",
                spec.label
            );
            assert!(g.is_consistent(), "{}: guard counters disagree", spec.label);
        }
    }

    for (spec, arm) in specs.iter().zip(agg) {
        fig.series.push(Series {
            label: spec.label.into(),
            panel: format!("clean-event coverage under poison (ε={eps})"),
            metric: "empirical coverage (clean judged events)".into(),
            points: arm
                .cov
                .into_iter()
                .enumerate()
                .map(|(s, values)| Point::from_replicates(s as f32, values))
                .collect(),
        });
        fig.series.push(Series {
            label: spec.label.into(),
            panel: "overall clean-event coverage".into(),
            metric: "empirical coverage (whole stream)".into(),
            points: vec![Point::from_replicates(0.0, arm.overall)],
        });
    }
    fig.notes.push(format!(
        "full schedule over the {n}-event stream: {CORRUPT_PROB} runtime corruption, \
         {OUTLIER_PROB} outlier bursts (≤{OUTLIER_BURST_MAX} events at e^{OUTLIER_LOG_SCALE}), \
         15%/10% replayed/skewed summaries, replica 1 Byzantine from {} \
         (fault seed {FAULT_SEED:#x})",
        n / 2
    ));
    fig.notes.push(format!(
        "acceptance: guarded arm clean-event coverage ≥ 0.88 at ε = {eps} under the full \
         schedule; unguarded arm < 0.80 on its favourable (finite-valued) subset"
    ));
    fig.notes.push(format!("nominal coverage: {}", 1.0 - eps));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn poison_guarded_holds_and_unguarded_collapses() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_poison(&h);
        let overall = |label: &str| {
            fig.series_for(label, "overall clean-event coverage")
                .unwrap_or_else(|| panic!("{label} missing"))
                .points[0]
                .mean
        };
        // The ISSUE's gates at ε = 0.1.
        let guarded = overall("guarded (full schedule)");
        assert!(
            guarded >= 0.88,
            "guarded clean-event coverage {guarded} below 0.88"
        );
        let unguarded = overall("unguarded (outlier bursts)");
        assert!(
            unguarded < 0.80,
            "unguarded arm failed to collapse: coverage {unguarded}"
        );
        let baseline = overall("no faults");
        assert!(
            baseline >= 0.88,
            "fault-free baseline {baseline} below 0.88"
        );

        // The schedule actually fired every fault class on the guarded arm.
        let guard_note = fig
            .notes
            .iter()
            .find(|n| n.starts_with("guarded (full schedule) rep=0"))
            .expect("guarded arm note");
        for needle in [
            "corrupt=0 ",
            "outliers=0 ",
            "replays=0 ",
            "skews=0 ",
            "byz_emissions=0;",
        ] {
            assert!(
                !guard_note.contains(needle),
                "fault class never fired: {needle} in {guard_note}"
            );
        }
        assert!(
            !guard_note.contains("rejected_summaries=0"),
            "no tampered summary was rejected: {guard_note}"
        );
    }

    #[test]
    fn plans_validate_and_differ_only_in_data_faults() {
        let full = full_plan(1000);
        full.validate(REPLICAS);
        let subset = outlier_only_plan();
        subset.validate(REPLICAS);
        assert_eq!(full.outlier_prob, subset.outlier_prob);
        assert_eq!(full.outlier_log_scale, subset.outlier_log_scale);
        assert_eq!(subset.corrupt_prob, 0.0);
        assert!(subset.byzantine.is_none());
    }
}
