//! Optimizer ablation (extension): is AdaMax load-bearing?
//!
//! The paper trains everything with AdaMax at default hyperparameters
//! (App B.3) without justifying the choice. This ablation retrains the same
//! Pitot configuration under Adam and SGD-with-momentum and compares test
//! error and the validation-loss trace. Expected shape: AdaMax and Adam are
//! interchangeable (the paper's choice is a convenience); plain SGD needs
//! more steps at the same rate because per-coordinate step bounds are what
//! lets embedding-style parameters traverse the multi-nat log-runtime
//! spread quickly.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::OptimizerKind;

/// The optimizers compared.
const OPTIMIZERS: [OptimizerKind; 3] = [
    OptimizerKind::AdaMax,
    OptimizerKind::Adam,
    OptimizerKind::SgdMomentum,
];

/// Extension figure: MAPE (with/without interference) per optimizer, plus
/// the best validation loss reached.
pub fn ext_optimizer(h: &Harness) -> Figure {
    let mut fig = Figure::new("ext-optimizer", "Optimizer ablation (extension)");
    let base = h.pitot_config();

    for kind in OPTIMIZERS {
        let mut mape_no = Vec::new();
        let mut mape_with = Vec::new();
        let mut best_val = Vec::new();
        for rep in 0..h.replicates {
            let split = h.split(0.5, rep);
            let mut cfg = base.clone().with_seed(rep as u64);
            cfg.optimizer = kind;
            // SGD needs a larger raw step to cover the same distance as the
            // per-coordinate-normalized methods at lr 1e-3.
            if kind == OptimizerKind::SgdMomentum {
                cfg.learning_rate = base.learning_rate * 10.0;
            }
            let trained = pitot::train(&h.dataset, &split, &cfg);
            let no_idx = h.test_without_interference(&split);
            let with_idx = h.test_with_interference(&split);
            mape_no.push(trained.mape(&h.dataset, &no_idx, None));
            mape_with.push(trained.mape(&h.dataset, &with_idx, None));
            best_val.push(trained.final_val_loss());
        }
        for (panel, values) in [
            ("without interference", mape_no),
            ("with interference", mape_with),
        ] {
            fig.series.push(Series {
                label: kind.name().into(),
                panel: panel.into(),
                metric: "MAPE".into(),
                points: vec![Point::from_replicates(0.5, values)],
            });
        }
        fig.series.push(Series {
            label: kind.name().into(),
            panel: "validation".into(),
            metric: "best val loss".into(),
            points: vec![Point::from_replicates(0.5, best_val)],
        });
    }
    fig.notes
        .push("SGD runs at 10x the base rate; Adam/AdaMax at the paper's 1e-3".into());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn adam_matches_adamax_within_tolerance() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_optimizer(&h);
        let mape = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label && s.panel == "without interference")
                .unwrap_or_else(|| panic!("{label} missing"))
                .points[0]
                .mean
        };
        let adamax = mape("adamax");
        let adam = mape("adam");
        // The paper's choice should not be load-bearing.
        assert!(
            (adam - adamax).abs() < adamax.max(0.05) * 0.75,
            "Adam {adam} vs AdaMax {adamax} diverge more than expected"
        );
        // Every optimizer must actually learn (beat 80% MAPE comfortably).
        for kind in OPTIMIZERS {
            let m = mape(kind.name());
            assert!(m < 0.8, "{} failed to learn: MAPE {m}", kind.name());
        }
    }
}
