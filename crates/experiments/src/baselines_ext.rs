//! Extended baseline comparison (extension): every predictor in the
//! workspace at the 50% split.
//!
//! Beyond the paper's three comparators (Fig 6a), this experiment adds the
//! methodological neighbours each of Pitot's design choices displaced:
//!
//! - **kNN collaborative filtering** — training-free; how much of the
//!   problem is raw collaborative structure?
//! - **Inductive matrix completion** (Chiang et al., cited Sec 3.3) — the
//!   analytic bilinear model; the gap to Pitot isolates tower nonlinearity
//!   plus learned features φ.
//! - **CP tensor completion** (footnote 6) — the "just complete the
//!   3-way tensor" approach the paper argues cannot survive sparsity.
//!
//! Measured shape (fast harness, see EXPERIMENTS.md): Pitot leads on the
//! interference panel and is within noise of the best on isolation; kNN CF
//! actually *wins* isolation (pure collaborative structure is strong when
//! half the matrix is observed) but pays ~3.7x error under interference;
//! the linear IMC cannot even beat the per-entity scaling floor — the
//! clearest evidence that tower nonlinearity plus learned features φ is
//! where Pitot's isolation accuracy comes from; tensor completion trails
//! interference-aware methods exactly as footnote 6 predicts.

use crate::harness::Harness;
use crate::methods::{Method, PitotPredictor};
use crate::report::{Figure, Point, Series};
use pitot_baselines::{
    ImcConfig, InductiveMc, KnnCollaborative, KnnConfig, LogPredictor, TensorCompletion,
    TensorConfig,
};
use pitot_testbed::split::Split;

/// Extension figure: MAPE with/without interference for all eight
/// predictors at the 50% split.
pub fn ext_baselines(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-baselines",
        "All predictors at the 50% split (extension)",
    );

    // (label, per-replicate trainer)
    type Trainer<'a> = Box<dyn Fn(&Split, u64) -> Box<dyn LogPredictor> + 'a>;
    let knn_cfg = KnnConfig::default();
    let imc_cfg = match h.scale {
        crate::harness::Scale::Fast => ImcConfig::fast(),
        crate::harness::Scale::Full => ImcConfig {
            rank: 8,
            max_obs: 40_000,
            ..ImcConfig::fast()
        },
    };
    let tensor_cfg = match h.scale {
        crate::harness::Scale::Fast => {
            let mut c = TensorConfig::fast();
            // Free-embedding models need the step budget to traverse the
            // log-runtime spread (same reasoning as the MF baseline).
            c.train.steps = 4000;
            c
        }
        crate::harness::Scale::Full => TensorConfig::paper(),
    };

    let methods: Vec<(&str, Trainer)> = vec![
        (
            "Pitot",
            Box::new(|s: &Split, seed| Method::Pitot(h.pitot_config()).train(&h.dataset, s, seed)),
        ),
        (
            "Neural Network",
            Box::new(|s: &Split, seed| {
                Method::NeuralNetwork(h.nn_config()).train(&h.dataset, s, seed)
            }),
        ),
        (
            "Attention",
            Box::new(|s: &Split, seed| {
                Method::Attention(h.attention_config()).train(&h.dataset, s, seed)
            }),
        ),
        (
            "Matrix Factorization",
            Box::new(|s: &Split, seed| {
                Method::MatrixFactorization(h.mf_config()).train(&h.dataset, s, seed)
            }),
        ),
        (
            "kNN CF",
            Box::new(|s: &Split, _| {
                Box::new(KnnCollaborative::fit(&h.dataset, s, &knn_cfg)) as Box<dyn LogPredictor>
            }),
        ),
        (
            "Inductive MC",
            Box::new(|s: &Split, seed| {
                let mut cfg = imc_cfg.clone();
                cfg.seed = seed;
                Box::new(InductiveMc::fit(&h.dataset, s, &cfg)) as Box<dyn LogPredictor>
            }),
        ),
        (
            "Tensor CP",
            Box::new(|s: &Split, seed| {
                let mut cfg = tensor_cfg.clone();
                cfg.train = cfg.train.with_seed(seed);
                Box::new(TensorCompletion::train(&h.dataset, s, &cfg)) as Box<dyn LogPredictor>
            }),
        ),
        (
            "Scaling baseline only",
            Box::new(|s: &Split, _| {
                let scaling = pitot::ScalingBaseline::fit(&h.dataset, s.train.as_slice());
                Box::new(ScalingOnly(scaling)) as Box<dyn LogPredictor>
            }),
        ),
    ];

    for (label, trainer) in methods {
        let mut no_reps = Vec::new();
        let mut with_reps = Vec::new();
        for rep in 0..h.replicates {
            let split = h.split(0.5, rep);
            let model = trainer(&split, rep as u64);
            no_reps.push(model.mape(&h.dataset, &h.test_without_interference(&split)));
            with_reps.push(model.mape(&h.dataset, &h.test_with_interference(&split)));
        }
        for (panel, reps) in [
            ("without interference", no_reps),
            ("with interference", with_reps),
        ] {
            fig.series.push(Series {
                label: label.to_string(),
                panel: panel.into(),
                metric: "MAPE".into(),
                points: vec![Point::from_replicates(0.5, reps)],
            });
        }
    }
    let _ = PitotPredictor; // re-exported adapter used by Method::Pitot
    let grab = |label: &str, panel: &str| {
        fig.series
            .iter()
            .find(|s| s.label == label && s.panel == panel)
            .map(|s| s.points[0].mean)
            .unwrap_or(f32::NAN)
    };
    fig.notes.push(format!(
        "kNN CF wins isolation ({:.1}% vs Pitot {:.1}%) but is interference-blind          ({:.1}% vs {:.1}%) — collaborative structure alone is strong at the 50% split",
        100.0 * grab("kNN CF", "without interference"),
        100.0 * grab("Pitot", "without interference"),
        100.0 * grab("kNN CF", "with interference"),
        100.0 * grab("Pitot", "with interference"),
    ));
    fig.notes.push(format!(
        "linear inductive MC ({:.1}%) does not beat the per-entity scaling floor          ({:.1}%): feature-span-restricted bilinear models lack the capacity the          paper's two-tower nonlinearity + φ provide",
        100.0 * grab("Inductive MC", "without interference"),
        100.0 * grab("Scaling baseline only", "without interference"),
    ));
    fig
}

/// The scaling baseline alone as a `LogPredictor` (the floor every learned
/// method must beat).
struct ScalingOnly(pitot::ScalingBaseline);

impl LogPredictor for ScalingOnly {
    fn predict_log(&self, dataset: &pitot_testbed::Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        vec![idx
            .iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                self.0
                    .log_baseline(o.workload as usize, o.platform as usize)
            })
            .collect()]
    }

    fn method_name(&self) -> &'static str {
        "scaling-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn extended_comparison_has_expected_ordering() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_baselines(&h);
        assert_eq!(fig.series.len(), 16, "8 methods × 2 panels");
        let mape = |label: &str, panel: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label && s.panel == panel)
                .unwrap_or_else(|| panic!("{label}/{panel} missing"))
                .points[0]
                .mean
        };
        // Pitot beats the non-collaborative and capacity-limited rivals on
        // isolation (kNN CF legitimately wins this panel at the 50% split —
        // recorded in the figure notes, asserted on the interference panel).
        let pitot_iso = mape("Pitot", "without interference");
        for rival in [
            "Matrix Factorization",
            "Inductive MC",
            "Tensor CP",
            "Scaling baseline only",
        ] {
            assert!(
                pitot_iso < mape(rival, "without interference"),
                "{rival} beat Pitot on isolation error"
            );
        }
        // On the interference panel, interference-blindness is fatal: Pitot
        // must beat every blind method plus tensor completion.
        let pitot_intf = mape("Pitot", "with interference");
        for rival in [
            "Matrix Factorization",
            "kNN CF",
            "Inductive MC",
            "Tensor CP",
            "Scaling baseline only",
        ] {
            assert!(
                pitot_intf < mape(rival, "with interference"),
                "{rival} beat Pitot under interference"
            );
        }
        // Collaborative/neural methods beat the raw scaling floor on
        // isolation (linear IMC does not — see figure notes).
        let floor = mape("Scaling baseline only", "without interference");
        for m in ["Pitot", "Neural Network", "Attention", "kNN CF"] {
            assert!(
                mape(m, "without interference") < floor,
                "{m} did not beat the scaling floor"
            );
        }
    }
}
