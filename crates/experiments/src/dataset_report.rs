//! Dataset-side reproductions: the Fig 1 interference histogram and the
//! cluster tables (paper Tables 2 and 3, plus the Sec 4 dataset counts).

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot_analysis::{log_histogram, observed_slowdowns};

/// Fig 1: log-histogram of interference slowdowns by interference arity,
/// with the paper's "up to 20×" tail check in the notes.
pub fn fig1(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig1", "Interference slowdown histogram");
    let slow = observed_slowdowns(&h.dataset);
    let mut max_overall = 0.0f32;
    for k in 1..=3 {
        let values = match slow.get(&k) {
            Some(v) if !v.is_empty() => v,
            _ => continue,
        };
        let hist = log_histogram(values, 0.5, 32.0, 24);
        max_overall = max_overall.max(values.iter().cloned().fold(0.0, f32::max));
        fig.series.push(Series {
            label: format!("{}-way interference", k + 1),
            panel: "log density".into(),
            metric: "count".into(),
            points: hist
                .edges
                .windows(2)
                .zip(&hist.counts)
                .map(|(e, &c)| Point {
                    x: (e[0] * e[1]).sqrt(), // geometric bin center
                    mean: c as f32,
                    two_se: 0.0,
                    replicates: vec![c as f32],
                })
                .collect(),
        });
        fig.notes.push(format!(
            "{}-way: n={}, mean={:.2}x, p99={:.2}x",
            k + 1,
            values.len(),
            pitot_linalg::mean(values),
            pitot_linalg::percentile(values, 0.99),
        ));
    }
    fig.notes.push(format!(
        "max observed slowdown: {max_overall:.1}x (paper: up to 20x)"
    ));
    fig
}

/// Dataset summary (the Sec 4 / App C.3 headline counts for the current
/// harness dataset).
pub fn stats(h: &Harness) -> Figure {
    let mut fig = Figure::new("stats", "Dataset summary statistics");
    let stats = pitot_testbed::DatasetStats::compute(&h.dataset);
    for line in stats.to_string().lines() {
        fig.notes.push(line.to_string());
    }
    fig.notes.push(
        "paper reference: 53,637 isolation + 357,333 interference obs, Nw=249, Np=231".to_string(),
    );
    fig
}

/// Table 2: the device cluster.
pub fn table2(h: &Harness) -> Figure {
    let mut fig = Figure::new("table2", "Cluster devices");
    for d in h.testbed.devices() {
        fig.notes.push(format!(
            "{:<22} {:<10} {:<14} {:<14} {:.2} GHz",
            d.name,
            d.vendor,
            d.cpu,
            d.microarch.name(),
            d.freq_ghz
        ));
    }
    fig.notes.push(format!(
        "{} devices, {} vendors, {} microarchitectures",
        h.testbed.devices().len(),
        h.testbed
            .devices()
            .iter()
            .map(|d| d.vendor.clone())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        h.testbed
            .devices()
            .iter()
            .map(|d| d.microarch)
            .collect::<std::collections::HashSet<_>>()
            .len()
    ));
    fig
}

/// Table 3: the WebAssembly runtimes, plus dataset totals (Sec 4).
pub fn table3(h: &Harness) -> Figure {
    let mut fig = Figure::new("table3", "WebAssembly runtimes and dataset counts");
    for r in h.testbed.runtimes() {
        fig.notes
            .push(format!("{:<28} {}", r.name(), r.kind.label()));
    }
    let ds = &h.dataset;
    fig.notes.push(format!(
        "platforms: {} | workloads: {} | observations: {} ({} isolation, {} interference)",
        ds.n_platforms,
        ds.n_workloads,
        ds.observations.len(),
        ds.isolation_count(),
        ds.interference_count()
    ));
    for k in 1..=3 {
        fig.notes.push(format!(
            "{}-way interference observations: {}",
            k + 1,
            ds.mode_indices(k).len()
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn fig1_has_heavy_tail_series() {
        let h = Harness::new(Scale::Fast);
        let fig = fig1(&h);
        assert_eq!(fig.series.len(), 3, "one histogram per interference arity");
        // Density concentrated near 1x: first bins dominate.
        let s = &fig.series[0];
        let total: f32 = s.points.iter().map(|p| p.mean).sum();
        let head: f32 = s.points.iter().take(8).map(|p| p.mean).sum();
        assert!(head / total > 0.5, "head fraction {}", head / total);
    }

    #[test]
    fn tables_match_paper_structure() {
        let h = Harness::new(Scale::Fast);
        let t2 = table2(&h);
        assert!(t2.notes.iter().any(|n| n.contains("24 devices")));
        let t3 = table3(&h);
        assert!(t3.notes.iter().any(|n| n.contains("platforms")));
    }
}
