//! `pitot-repro`: regenerates every table and figure of the Pitot paper.
//!
//! ```text
//! pitot-repro [--full] [--out DIR] <command>
//!
//! commands:
//!   fig1 table2 table3            dataset-side reproductions
//!   fig4a fig4b fig4c fig4d       method ablations
//!   fig5 fig6a fig6b fig8 fig11   accuracy / uncertainty comparisons
//!   fig10                         hyperparameter ablations
//!   fig7 fig12                    embedding interpretation
//!   summary                       Sec 5.3 headline numbers
//!   orchestration shift online    extension studies (placement, pool
//!   serving fleet chaos sched     robustness, online learning, streaming
//!   poison                        poisoned-telemetry guard study
//!   compress                      compressed-tower conformal compensation
//!   conformal optimizer           recalibration, multi-replica fleet
//!                                 serving, fault-injected degraded-mode
//!                                 serving, conformal placement,
//!                                 conformal variants, optimizer ablation)
//!   all                           everything above
//! ```
//!
//! `--full` switches from the reduced single-core settings to paper-scale
//! training (App B.3); output format is identical. Each figure is printed as
//! uniform rows and written to `<out>/<id>.json`.

use pitot_experiments::{
    ablations, baseline_cmp, baselines_ext, chaos, compress, conformal_variants, dataset_report,
    embeddings, fleet, hyperparams, online, optimizer_cmp, orchestration, poison, sched, serving,
    shift, uncertainty,
};
use pitot_experiments::{Figure, Harness, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Fast;
    let mut out_dir = PathBuf::from("results");
    let mut commands = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!("usage: pitot-repro [--full] [--out DIR] <fig1|fig4a|...|all>");
                return;
            }
            cmd => commands.push(cmd.to_string()),
        }
        i += 1;
    }
    if commands.is_empty() {
        eprintln!("no command given; try `pitot-repro all` or `--help`");
        std::process::exit(2);
    }

    let t0 = Instant::now();
    eprintln!("building harness ({scale:?})…");
    let harness = Harness::new(scale);
    eprintln!(
        "dataset: {} observations over {} workloads × {} platforms ({:.1?})",
        harness.dataset.observations.len(),
        harness.dataset.n_workloads,
        harness.dataset.n_platforms,
        t0.elapsed()
    );
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let all = [
        "fig1",
        "table2",
        "table3",
        "fig4a",
        "fig4b",
        "fig4c",
        "fig4d",
        "fig5",
        "fig6a",
        "fig6b",
        "fig8",
        "fig10",
        "fig11",
        "fig7",
        "fig12",
        "summary",
        "orchestration",
        "shift",
        "online",
        "serving",
        "fleet",
        "chaos",
        "poison",
        "compress",
        "sched",
        "conformal",
        "optimizer",
        "baselines",
    ];
    let expanded: Vec<String> = commands
        .iter()
        .flat_map(|c| {
            if c == "all" {
                all.iter().map(|s| s.to_string()).collect()
            } else {
                vec![c.clone()]
            }
        })
        .collect();

    for cmd in expanded {
        let t = Instant::now();
        let figures: Vec<Figure> = match cmd.as_str() {
            "fig1" => vec![dataset_report::fig1(&harness)],
            "table2" => vec![dataset_report::table2(&harness)],
            "stats" => vec![dataset_report::stats(&harness)],
            "table3" => vec![dataset_report::table3(&harness)],
            "fig4a" => vec![ablations::fig4a(&harness)],
            "fig4b" => vec![ablations::fig4b(&harness)],
            "fig4c" => vec![ablations::fig4c(&harness)],
            "fig4d" => vec![ablations::fig4d(&harness)],
            "fig5" => vec![uncertainty::fig5(&harness)],
            "fig6a" => vec![baseline_cmp::fig6a(&harness)],
            "fig6b" => vec![uncertainty::fig6b(&harness)],
            "fig8" => vec![uncertainty::fig8(&harness)],
            "wcet" => vec![uncertainty::wcet_extension(&harness)],
            "fig10" => hyperparams::Sweep::ALL
                .iter()
                .map(|s| hyperparams::fig10_row(&harness, *s))
                .collect(),
            "fig11" => vec![uncertainty::fig11(&harness)],
            "fig7" => vec![embeddings::fig7(&harness)],
            "fig12" => vec![embeddings::fig12bc(&harness), embeddings::fig12d(&harness)],
            "summary" => vec![baseline_cmp::summary(&harness)],
            "orchestration" => vec![orchestration::ext_orchestration(&harness)],
            "baselines" => vec![baselines_ext::ext_baselines(&harness)],
            "shift" => vec![shift::ext_shift(&harness)],
            "online" => vec![online::ext_online(&harness)],
            "serving" => vec![serving::ext_serving(&harness)],
            "fleet" => vec![fleet::ext_fleet(&harness)],
            "chaos" => vec![chaos::ext_chaos(&harness)],
            "poison" => vec![poison::ext_poison(&harness)],
            "compress" => vec![compress::ext_compress(&harness)],
            "sched" => vec![sched::ext_sched(&harness)],
            "conformal" => vec![conformal_variants::ext_conformal_variants(&harness)],
            "optimizer" => vec![optimizer_cmp::ext_optimizer(&harness)],
            other => {
                eprintln!("unknown command `{other}`; see --help");
                continue;
            }
        };
        for fig in figures {
            fig.print();
            let path = out_dir.join(format!("{}.json", fig.id));
            let json = serde_json::to_string_pretty(&fig).expect("serialize figure");
            std::fs::write(&path, json).expect("write figure JSON");
            eprintln!(
                "{} done in {:.1?} → {}",
                fig.id,
                t.elapsed(),
                path.display()
            );
        }
    }
    eprintln!("total: {:.1?}", t0.elapsed());
}
