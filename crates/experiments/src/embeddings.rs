//! Embedding interpretation experiments (paper Figs 7 and 12).

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::PitotConfig;
use pitot_analysis::{
    interference_matrix_norm, neighborhood_purity, pearson, silhouette_score, spearman,
    trustworthiness, Pca, Tsne, TsneConfig,
};
use pitot_linalg::Matrix;
use std::collections::HashMap;

/// Trains a model at the Fig 7/12 settings (90% split, squared loss) and
/// returns it.
fn interpretation_model(h: &Harness) -> pitot::TrainedPitot {
    let split = h.split(0.9, 0);
    let cfg: PitotConfig = h.pitot_config();
    pitot::train(&h.dataset, &split, &cfg)
}

/// Figs 7 / 12a: t-SNE of workload embeddings colored by benchmark suite.
///
/// The series encode the scatter: one series per suite with `(x, y)` pairs
/// stored as `(point.x, point.mean)`. Notes carry the quantitative check —
/// neighborhood purity well above chance.
pub fn fig7(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig7", "t-SNE of workload embeddings by suite");
    let trained = interpretation_model(h);
    let emb = trained.model.workload_embeddings(&h.dataset, 0);
    let coords = Tsne::new(TsneConfig::default()).embed(&emb);
    let labels: Vec<usize> = suite_labels(h);
    scatter_series(&mut fig, &coords, &h.dataset.workload_suites, "tsne");
    let purity = neighborhood_purity(&emb, &labels, 10);
    let chance = pitot_analysis::cluster::chance_purity(&labels);
    fig.notes.push(format!(
        "10-NN suite purity in embedding space: {purity:.3} (chance {chance:.3})"
    ));
    // Quantitative companions to "the t-SNE shows clear clusters":
    // cluster separation in the native space, faithfulness of the 2-D map,
    // and the effective rank of the embedding (Fig 10 r-ablation context).
    let sil = silhouette_score(&emb, &labels);
    let trust = trustworthiness(&emb, &coords, 10);
    fig.notes.push(format!(
        "suite silhouette in embedding space: {sil:.3}; t-SNE trustworthiness (k=10): {trust:.3}"
    ));
    let pca = Pca::fit(&emb, emb.cols().min(8));
    fig.notes.push(format!(
        "embedding effective rank: {} dims capture 90% of variance (r = {})",
        pca.effective_rank(0.9)
            .map_or_else(|| ">8".to_string(), |k| k.to_string()),
        emb.cols()
    ));
    fig
}

/// Figs 12b/12c: t-SNE of platform embeddings by runtime and by CPU class.
pub fn fig12bc(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig12bc", "t-SNE of platform embeddings");
    let trained = interpretation_model(h);
    let pe = trained.model.platform_embeddings(&h.dataset);
    let coords = Tsne::new(TsneConfig::default()).embed(&pe.p);

    let runtime_labels: Vec<String> = (0..h.testbed.platforms().len())
        .map(|p| h.testbed.platform_runtime(p).name())
        .collect();
    let class_labels: Vec<String> = (0..h.testbed.platforms().len())
        .map(|p| h.testbed.platform_device(p).class.label().to_string())
        .collect();
    scatter_series(&mut fig, &coords, &runtime_labels, "tsne-by-runtime");
    scatter_series(&mut fig, &coords, &class_labels, "tsne-by-class");

    let to_idx = |labels: &[String]| -> Vec<usize> {
        let mut map = HashMap::new();
        labels
            .iter()
            .map(|l| {
                let next = map.len();
                *map.entry(l.clone()).or_insert(next)
            })
            .collect()
    };
    let p_runtime = neighborhood_purity(&pe.p, &to_idx(&runtime_labels), 5);
    let chance_runtime = pitot_analysis::cluster::chance_purity(&to_idx(&runtime_labels));
    let p_class = neighborhood_purity(&pe.p, &to_idx(&class_labels), 5);
    let chance_class = pitot_analysis::cluster::chance_purity(&to_idx(&class_labels));
    fig.notes.push(format!(
        "5-NN runtime purity: {p_runtime:.3} (chance {chance_runtime:.3}); CPU-class purity: {p_class:.3} (chance {chance_class:.3})"
    ));
    fig
}

/// Fig 12d: learned interference-matrix spectral norm ‖F_j‖₂ vs the measured
/// mean interference slowdown per platform, with the Pearson correlation the
/// paper's positive trend implies.
pub fn fig12d(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig12d", "Learned vs measured interference by platform");
    let trained = interpretation_model(h);
    let pe = trained.model.platform_embeddings(&h.dataset);

    // Measured: mean log-slowdown of interference observations vs the
    // isolated mean of the same (workload, platform) pair.
    let measured = measured_mean_slowdown(h);
    let mut norms = Vec::new();
    let mut slows = Vec::new();
    let mut series_by_class: HashMap<&'static str, Vec<(f32, f32)>> = HashMap::new();
    for p in 0..h.dataset.n_platforms {
        let norm = interference_matrix_norm(&pe.vs, &pe.vg, p);
        if let Some(&slow) = measured.get(&p) {
            norms.push(norm);
            slows.push(slow);
            series_by_class
                .entry(h.testbed.platform_device(p).class.label())
                .or_default()
                .push((norm, slow));
        }
    }
    for (class, pts) in series_by_class {
        fig.series.push(Series {
            label: class.to_string(),
            panel: "norm vs slowdown".into(),
            metric: "mean interference slowdown".into(),
            points: pts
                .into_iter()
                .map(|(x, y)| Point {
                    x,
                    mean: y,
                    two_se: 0.0,
                    replicates: vec![y],
                })
                .collect(),
        });
    }
    let r = pearson(&norms, &slows);
    fig.notes.push(format!(
        "Pearson correlation of ‖F_j‖₂ vs measured mean slowdown: r = {r:.3} over {} platforms",
        norms.len()
    ));
    // The paper's claim is a monotone trend on log-log axes; Spearman tests
    // monotonicity directly and is insensitive to the heavy-tailed scale.
    let rho = spearman(&norms, &slows);
    fig.notes
        .push(format!("Spearman rank correlation: ρ = {rho:.3}"));
    fig
}

/// Mean per-platform log-slowdown of interference observations relative to
/// the isolated mean runtime of the same pair.
fn measured_mean_slowdown(h: &Harness) -> HashMap<usize, f32> {
    let ds = &h.dataset;
    let mut iso: HashMap<(u32, u32), (f64, u32)> = HashMap::new();
    for o in &ds.observations {
        if o.interferers.is_empty() {
            let e = iso.entry((o.workload, o.platform)).or_insert((0.0, 0));
            e.0 += o.log_runtime() as f64;
            e.1 += 1;
        }
    }
    let mut acc: HashMap<usize, (f64, u32)> = HashMap::new();
    for o in &ds.observations {
        if o.interferers.is_empty() {
            continue;
        }
        if let Some(&(sum, n)) = iso.get(&(o.workload, o.platform)) {
            let base = sum / n as f64;
            let slow = (o.log_runtime() as f64 - base).max(0.0);
            let e = acc.entry(o.platform as usize).or_insert((0.0, 0));
            e.0 += slow;
            e.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(p, (s, n))| (p, (s / n as f64) as f32))
        .collect()
}

fn scatter_series<S: AsRef<str>>(fig: &mut Figure, coords: &Matrix, labels: &[S], metric: &str) {
    let mut by_label: HashMap<String, Vec<(f32, f32)>> = HashMap::new();
    for (i, l) in labels.iter().enumerate() {
        by_label
            .entry(l.as_ref().to_string())
            .or_default()
            .push((coords[(i, 0)], coords[(i, 1)]));
    }
    let mut sorted: Vec<_> = by_label.into_iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (label, pts) in sorted {
        fig.series.push(Series {
            label,
            panel: "scatter".into(),
            metric: metric.to_string(),
            points: pts
                .into_iter()
                .map(|(x, y)| Point {
                    x,
                    mean: y,
                    two_se: 0.0,
                    replicates: vec![y],
                })
                .collect(),
        });
    }
}

fn suite_labels(h: &Harness) -> Vec<usize> {
    let mut map = HashMap::new();
    h.dataset
        .workload_suites
        .iter()
        .map(|s| {
            let next = map.len();
            *map.entry(s.clone()).or_insert(next)
        })
        .collect()
}
