//! Shared experiment scaffolding: dataset, splits, replicate loops.

use pitot::PitotConfig;
use pitot_baselines::{AttentionConfig, BaselineConfig, MfConfig, NnConfig};
use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};
use serde::{Deserialize, Serialize};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Reduced single-core settings (~seconds per training run). Curve
    /// shapes match the paper; absolute errors are a little higher because
    /// models are smaller and trained shorter.
    Fast,
    /// Paper-scale settings (App B.3): 20k steps, 2×128 towers, r=32,
    /// 9 train fractions, 5 replicates. Minutes per run on one core.
    Full,
}

/// The shared experiment environment: one dataset, replicated splits, and
/// scale-appropriate model configurations.
pub struct Harness {
    /// Harness scale.
    pub scale: Scale,
    /// The simulated cluster.
    pub testbed: Testbed,
    /// The collected dataset.
    pub dataset: Dataset,
    /// Replicate count (paper: 5).
    pub replicates: usize,
    /// Train fractions for data-efficiency sweeps.
    pub fractions: Vec<f32>,
    /// Cap on test observations used per MAPE/margin evaluation (0 = all).
    pub eval_cap: usize,
}

impl Harness {
    /// Builds the harness at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (testbed_cfg, replicates, fractions, eval_cap) = match scale {
            Scale::Fast => (
                TestbedConfig::medium(),
                2,
                vec![0.1, 0.3, 0.5, 0.7, 0.9],
                20_000,
            ),
            Scale::Full => (
                TestbedConfig::paper(),
                5,
                pitot_testbed::split::paper_fractions(),
                0,
            ),
        };
        let testbed = Testbed::generate(&testbed_cfg);
        let dataset = testbed.collect_dataset();
        Self {
            scale,
            testbed,
            dataset,
            replicates,
            fractions,
            eval_cap,
        }
    }

    /// Base Pitot configuration at this scale.
    ///
    /// The environment variable `PITOT_REPRO_STEPS` overrides the step
    /// budget (useful for stretching a single figure — e.g. the Fig 12
    /// embedding interpretation benefits from longer training — without
    /// paying for `--full` everywhere).
    pub fn pitot_config(&self) -> PitotConfig {
        let mut cfg = match self.scale {
            Scale::Fast => PitotConfig::fast(),
            Scale::Full => PitotConfig::paper(),
        };
        if let Ok(steps) = std::env::var("PITOT_REPRO_STEPS") {
            if let Ok(steps) = steps.parse::<usize>() {
                cfg.steps = steps.max(1);
            }
        }
        cfg
    }

    /// Matrix-factorization baseline configuration at this scale.
    pub fn mf_config(&self) -> MfConfig {
        match self.scale {
            // MF has no per-step tower cost, so give it the step budget it
            // needs to move embeddings several nats (App B.4 trains all
            // baselines for the full 20k regardless).
            Scale::Fast => {
                let mut c = MfConfig::fast();
                c.train.steps = 4000;
                c
            }
            Scale::Full => MfConfig::paper(),
        }
    }

    /// Neural-network baseline configuration at this scale.
    pub fn nn_config(&self) -> NnConfig {
        match self.scale {
            Scale::Fast => NnConfig::fast(),
            Scale::Full => NnConfig::paper(),
        }
    }

    /// Attention baseline configuration at this scale.
    pub fn attention_config(&self) -> AttentionConfig {
        match self.scale {
            Scale::Fast => AttentionConfig::fast(),
            Scale::Full => AttentionConfig::paper(),
        }
    }

    /// Baseline shared training knobs at this scale.
    pub fn baseline_train(&self) -> BaselineConfig {
        match self.scale {
            Scale::Fast => BaselineConfig::fast(),
            Scale::Full => BaselineConfig::paper(),
        }
    }

    /// The split for `(fraction, replicate)`; deterministic.
    pub fn split(&self, fraction: f32, replicate: usize) -> Split {
        Split::stratified(&self.dataset, fraction, replicate as u64)
    }

    /// Test indices *without* interference, capped for evaluation.
    pub fn test_without_interference(&self, split: &Split) -> Vec<usize> {
        self.cap(
            split
                .test
                .iter()
                .copied()
                .filter(|&i| self.dataset.observations[i].interferers.is_empty())
                .collect(),
        )
    }

    /// Test indices *with* interference, capped for evaluation.
    pub fn test_with_interference(&self, split: &Split) -> Vec<usize> {
        self.cap(
            split
                .test
                .iter()
                .copied()
                .filter(|&i| !self.dataset.observations[i].interferers.is_empty())
                .collect(),
        )
    }

    fn cap(&self, idx: Vec<usize>) -> Vec<usize> {
        if self.eval_cap > 0 && idx.len() > self.eval_cap {
            // Stride rather than truncate: the test list is ordered by
            // interference mode, and a truncated prefix would drop the
            // highest-arity modes entirely.
            let stride = idx.len().div_ceil(self.eval_cap);
            return idx.into_iter().step_by(stride).collect();
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_harness_is_consistent() {
        let h = Harness::new(Scale::Fast);
        assert_eq!(h.replicates, 2);
        assert_eq!(h.fractions.len(), 5);
        let split = h.split(0.5, 0);
        let no = h.test_without_interference(&split);
        let with = h.test_with_interference(&split);
        assert!(!no.is_empty() && !with.is_empty());
        for &i in no.iter().take(100) {
            assert!(h.dataset.observations[i].interferers.is_empty());
        }
        for &i in with.iter().take(100) {
            assert!(!h.dataset.observations[i].interferers.is_empty());
        }
    }

    #[test]
    fn splits_are_deterministic_per_replicate() {
        let h = Harness::new(Scale::Fast);
        assert_eq!(h.split(0.3, 1).train, h.split(0.3, 1).train);
        assert_ne!(h.split(0.3, 1).train, h.split(0.3, 2).train);
    }
}
