//! Orchestration case study (extension): do calibrated bounds actually buy
//! better placement?
//!
//! The paper motivates runtime prediction with edge orchestration (Sec 1)
//! but never closes the loop. This experiment does: a stream of deadline-
//! carrying jobs is replayed against the simulated cluster under different
//! (policy, predictor) pairs, and the deadline-violation rate and response
//! times are compared.
//!
//! Expected shape:
//! - interference-blind placement (scaling baseline) violates deadlines far
//!   more often than interference-aware Pitot at the same policy;
//! - the deadline-aware policy with Pitot's conformal bounds at miscoverage
//!   ε keeps violations near or below the unconditional-policy rates, and
//!   tightening ε trades response time for fewer violations;
//! - the oracle bounds the achievable floor.

use crate::harness::Harness;
use crate::report::{Figure, Point, Series};
use pitot::{Objective, PitotConfig};
use pitot_conformal::HeadSelection;
use pitot_orchestrator::{
    BaselinePolicy, ClusterSim, JobStream, OraclePredictor, PitotPredictor, PlacementPolicy,
    PolicyComparison, RuntimePredictor, ScalingPredictor, SimReport,
};

/// Jobs per simulation at each harness scale.
fn stream_len(h: &Harness) -> usize {
    match h.scale {
        crate::harness::Scale::Fast => 400,
        crate::harness::Scale::Full => 2000,
    }
}

/// Extension figure: violation rate and response time per
/// (policy, predictor) configuration, plus an ε sweep for the bound-driven
/// policy.
pub fn ext_orchestration(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-orchestration",
        "Deadline-aware placement with conformal bounds (extension)",
    );

    // One quantile-head Pitot per experiment; a 50% split mirrors Fig 5/6b.
    let split = h.split(0.5, 0);
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };
    let trained = pitot::train(&h.dataset, &split, &cfg);

    let scaling = pitot::ScalingBaseline::fit(&h.dataset, &split.train);

    // A realistic edge *site*: a dozen platforms sampled across the catalog
    // rather than the full 200+-platform cluster. With tens of slots and a
    // near-saturating arrival rate, co-location — and therefore
    // interference-aware prediction — becomes unavoidable; deadlines at
    // 1.3–3× the cluster-median runtime leave room for exactly one bad
    // placement decision.
    let n_platforms = h.testbed.platforms().len();
    let site: Vec<usize> = (0..n_platforms).step_by(n_platforms.div_ceil(12)).collect();
    let n_jobs = stream_len(h);
    let interarrival = 0.02;
    let jobs = JobStream::generate_with_deadlines(&h.testbed, n_jobs, interarrival, (1.3, 3.0), 0);

    let oracle = OraclePredictor::with_epsilon(&h.testbed, 0.1);
    let scaling_pred = ScalingPredictor::new(scaling);
    let pitot_point = PitotPredictor::new(&trained, &h.dataset);

    let mut comparison = PolicyComparison::new();
    let mut run =
        |label: &str, policy: &mut dyn PlacementPolicy, pred: &dyn RuntimePredictor| -> SimReport {
            let report = ClusterSim::new(&h.testbed)
                .restrict_to(&site)
                .run(&jobs, policy, pred);
            comparison.push(label, report.clone());
            report
        };

    let base_runs: Vec<(String, SimReport)> = vec![
        (
            "random".to_string(),
            run("random / oracle", &mut BaselinePolicy::random(1), &oracle),
        ),
        (
            "least-loaded".to_string(),
            run(
                "least-loaded / oracle",
                &mut BaselinePolicy::least_loaded(),
                &oracle,
            ),
        ),
        (
            "greedy / scaling (intf-blind)".to_string(),
            run(
                "greedy / scaling (intf-blind)",
                &mut BaselinePolicy::greedy_fastest(),
                &scaling_pred,
            ),
        ),
        (
            "greedy / pitot".to_string(),
            run(
                "greedy / pitot",
                &mut BaselinePolicy::greedy_fastest(),
                &pitot_point,
            ),
        ),
        (
            "deadline-aware / oracle".to_string(),
            run(
                "deadline-aware / oracle",
                &mut BaselinePolicy::deadline_aware(),
                &oracle,
            ),
        ),
    ];

    for (label, report) in &base_runs {
        fig.series.push(Series {
            label: label.clone(),
            panel: "policies".into(),
            metric: "violation rate".into(),
            points: vec![Point::from_replicates(
                0.0,
                vec![report.violation_rate() as f32],
            )],
        });
        fig.series.push(Series {
            label: label.clone(),
            panel: "policies".into(),
            metric: "mean response (s)".into(),
            points: vec![Point::from_replicates(
                0.0,
                vec![report.mean_response_s as f32],
            )],
        });
    }

    // ε sweep for the conformal deadline-aware policy.
    let mut viol_pts = Vec::new();
    let mut resp_pts = Vec::new();
    for &eps in &[0.2f32, 0.1, 0.05] {
        let bounds = trained.fit_bounds(&h.dataset, eps, HeadSelection::TightestOnValidation);
        let pred = PitotPredictor::with_bounds(&trained, &h.dataset, bounds);
        let report = run(
            &format!("deadline-aware / pitot+conformal ε={eps}"),
            &mut BaselinePolicy::deadline_aware(),
            &pred,
        );
        viol_pts.push(Point::from_replicates(
            eps,
            vec![report.violation_rate() as f32],
        ));
        resp_pts.push(Point::from_replicates(
            eps,
            vec![report.mean_response_s as f32],
        ));
    }
    fig.series.push(Series {
        label: "deadline-aware / pitot+conformal".into(),
        panel: "epsilon sweep".into(),
        metric: "violation rate".into(),
        points: viol_pts,
    });
    fig.series.push(Series {
        label: "deadline-aware / pitot+conformal".into(),
        panel: "epsilon sweep".into(),
        metric: "mean response (s)".into(),
        points: resp_pts,
    });

    fig.notes.push(format!(
        "{n_jobs} jobs, mean inter-arrival {interarrival}s, deadlines 1.3–3.0× median, \
         site of {} platforms",
        site.len()
    ));
    for line in comparison.to_table().lines() {
        fig.notes.push(line.to_string());
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use std::sync::OnceLock;

    fn harness() -> &'static Harness {
        static H: OnceLock<Harness> = OnceLock::new();
        H.get_or_init(|| Harness::new(Scale::Fast))
    }

    #[test]
    fn orchestration_figure_has_expected_shape() {
        let fig = ext_orchestration(harness());
        // 5 base runs × 2 metrics + 2 sweep series.
        assert_eq!(fig.series.len(), 12);
        let sweep = fig
            .series
            .iter()
            .find(|s| s.panel == "epsilon sweep" && s.metric == "violation rate")
            .expect("epsilon sweep present");
        assert_eq!(sweep.points.len(), 3);
        for p in &sweep.points {
            assert!(
                (0.0..=1.0).contains(&p.mean),
                "violation rate {} out of range",
                p.mean
            );
        }
        // The interference-blind scaling predictor must not beat Pitot's
        // greedy placement on violations (it overcommits fast platforms).
        let viol = |label: &str| {
            fig.series
                .iter()
                .find(|s| s.label == label && s.metric == "violation rate")
                .expect(label)
                .points[0]
                .mean
        };
        let blind = viol("greedy / scaling (intf-blind)");
        let aware = viol("greedy / pitot");
        assert!(
            aware <= blind + 0.05,
            "interference-aware greedy ({aware}) should not lose to blind ({blind})"
        );
    }
}
