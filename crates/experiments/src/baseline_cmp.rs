//! Baseline comparison (paper Fig 6a / Fig 9b and the Sec 5.3 headline
//! numbers).

use crate::harness::Harness;
use crate::methods::Method;
use crate::report::{Figure, Point, Series};
use crate::uncertainty::{epsilons, fit_bounds_generic, margin_on};
use pitot::{Objective, PitotConfig};
use pitot_conformal::HeadSelection;

fn comparison_methods(h: &Harness) -> Vec<Method> {
    vec![
        Method::Pitot(h.pitot_config()),
        Method::NeuralNetwork(h.nn_config()),
        Method::Attention(h.attention_config()),
        Method::MatrixFactorization(h.mf_config()),
    ]
}

/// Fig 6a (uncropped: Fig 9b): MAPE of Pitot vs the three baselines across
/// train fractions, with and without interference.
pub fn fig6a(h: &Harness) -> Figure {
    let mut fig = Figure::new("fig6a", "Error vs baselines");
    for method in comparison_methods(h) {
        let mut no_points = Vec::new();
        let mut with_points = Vec::new();
        for &fraction in &h.fractions {
            let mut no_reps = Vec::new();
            let mut with_reps = Vec::new();
            for rep in 0..h.replicates {
                let split = h.split(fraction, rep);
                let model = method.train(&h.dataset, &split, rep as u64);
                let no_idx = h.test_without_interference(&split);
                let with_idx = h.test_with_interference(&split);
                no_reps.push(model.mape(&h.dataset, &no_idx));
                with_reps.push(model.mape(&h.dataset, &with_idx));
            }
            no_points.push(Point::from_replicates(fraction, no_reps));
            with_points.push(Point::from_replicates(fraction, with_reps));
        }
        fig.series.push(Series {
            label: method.label().to_string(),
            panel: "without interference".into(),
            metric: "MAPE".into(),
            points: no_points,
        });
        fig.series.push(Series {
            label: method.label().to_string(),
            panel: "with interference".into(),
            metric: "MAPE".into(),
            points: with_points,
        });
    }

    // Headline numbers (Sec 5.3): best Pitot error and improvement vs the
    // next-best baseline at the richest split.
    if let Some(pitot_s) = fig.series_for("Pitot", "without interference") {
        if let Some(best) = pitot_s.points.iter().map(|p| p.mean).reduce(f32::min) {
            fig.notes.push(format!(
                "Pitot best error without interference: {:.1}%",
                best * 100.0
            ));
        }
    }
    summarize_improvement(&mut fig);
    fig
}

/// Adds average/max improvement-vs-next-best-baseline notes across all
/// panels and x positions (the paper's "up to 48% less error, average 36%").
fn summarize_improvement(fig: &mut Figure) {
    let mut improvements = Vec::new();
    let panels = ["without interference", "with interference"];
    for panel in panels {
        let pitot = match fig.series_for("Pitot", panel) {
            Some(s) => s.points.clone(),
            None => continue,
        };
        for (pi, p) in pitot.iter().enumerate() {
            let mut best_baseline = f32::INFINITY;
            for s in fig
                .series
                .iter()
                .filter(|s| s.panel == panel && s.label != "Pitot")
            {
                if let Some(bp) = s.points.get(pi) {
                    best_baseline = best_baseline.min(bp.mean);
                }
            }
            if best_baseline.is_finite() && best_baseline > 0.0 {
                improvements.push(1.0 - p.mean / best_baseline);
            }
        }
    }
    if !improvements.is_empty() {
        let avg = pitot_linalg::mean(&improvements);
        let max = improvements
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        fig.notes.push(format!(
            "error vs next-best baseline: average {:.0}% less, up to {:.0}% less",
            avg * 100.0,
            max * 100.0
        ));
    }
}

/// The Sec 5.3 summary: error and tightness improvements over the next-best
/// baseline, aggregated from fresh 50%-split runs.
pub fn summary(h: &Harness) -> Figure {
    let mut fig = Figure::new("summary", "Sec 5.3 headline numbers (50% split)");
    let split_frac = 0.5;
    let eps = *epsilons(h).last().unwrap_or(&0.02);

    // Error comparison.
    let mut errors: Vec<(String, f32)> = Vec::new();
    for method in comparison_methods(h) {
        let mut reps = Vec::new();
        for rep in 0..h.replicates {
            let split = h.split(split_frac, rep);
            let model = method.train(&h.dataset, &split, rep as u64);
            let no_idx = h.test_without_interference(&split);
            reps.push(model.mape(&h.dataset, &no_idx));
        }
        errors.push((method.label().to_string(), pitot_linalg::mean(&reps)));
        fig.series.push(Series {
            label: method.label().to_string(),
            panel: "without interference".into(),
            metric: "MAPE".into(),
            points: vec![Point::from_replicates(split_frac, reps)],
        });
    }

    // Tightness comparison at the strictest epsilon.
    let quant = Method::Pitot(PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    });
    let mut margins: Vec<(String, f32)> = Vec::new();
    let bound_methods: Vec<(Method, HeadSelection)> = vec![
        (quant, HeadSelection::TightestOnValidation),
        (
            Method::NeuralNetwork(h.nn_config()),
            HeadSelection::SingleHead,
        ),
        (
            Method::Attention(h.attention_config()),
            HeadSelection::SingleHead,
        ),
        (
            Method::MatrixFactorization(h.mf_config()),
            HeadSelection::SingleHead,
        ),
    ];
    for (method, selection) in bound_methods {
        let mut reps = Vec::new();
        for rep in 0..h.replicates {
            let split = h.split(split_frac, rep);
            let model = method.train(&h.dataset, &split, rep as u64);
            let conformal = fit_bounds_generic(model.as_ref(), &h.dataset, &split, eps, selection);
            let no_idx = h.test_without_interference(&split);
            reps.push(margin_on(model.as_ref(), &conformal, &h.dataset, &no_idx));
        }
        margins.push((method.label().to_string(), pitot_linalg::mean(&reps)));
        fig.series.push(Series {
            label: method.label().to_string(),
            panel: format!("bound tightness @ eps={eps}"),
            metric: "bound tightness".into(),
            points: vec![Point::from_replicates(split_frac, reps)],
        });
    }

    let note = |items: &[(String, f32)], what: &str| -> Option<String> {
        let pitot = items.iter().find(|(l, _)| l == "Pitot")?.1;
        let next_best = items
            .iter()
            .filter(|(l, _)| l != "Pitot")
            .map(|(_, v)| *v)
            .fold(f32::INFINITY, f32::min);
        Some(format!(
            "Pitot {what}: {pitot:.4}; next-best baseline {next_best:.4} ({:.0}% better)",
            (1.0 - pitot / next_best) * 100.0
        ))
    };
    if let Some(n) = note(&errors, "error") {
        fig.notes.push(n);
    }
    if let Some(n) = note(&margins, "tightness") {
        fig.notes.push(n);
    }
    fig
}
