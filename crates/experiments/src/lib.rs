//! Experiment harness for the Pitot reproduction.
//!
//! One runner per table/figure of the paper's evaluation (Secs 4–5 and
//! Appendix D), all printing uniform `figure | series | x | mean ± 2se` rows
//! and returning structured [`report::Series`] data that the `pitot-repro`
//! binary serializes to JSON.
//!
//! Runners accept a [`harness::Harness`] built at either reduced
//! ([`harness::Scale::Fast`]) or paper ([`harness::Scale::Full`]) scale; the
//! output format is identical so results are comparable across scales.

// Every public item in this crate is part of the documented workspace
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

pub mod ablations;
pub mod baseline_cmp;
pub mod baselines_ext;
pub mod chaos;
pub mod compress;
pub mod conformal_variants;
pub mod dataset_report;
pub mod embeddings;
pub mod fleet;
pub mod harness;
pub mod hyperparams;
pub mod methods;
pub mod online;
pub mod optimizer_cmp;
pub mod orchestration;
pub mod poison;
pub mod report;
pub mod sched;
pub mod serving;
pub mod shift;
pub mod uncertainty;

pub use harness::{Harness, Scale};
pub use methods::{Method, PitotPredictor};
pub use report::{Figure, Point, Series};
