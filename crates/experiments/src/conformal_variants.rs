//! Conformal-variant comparison (extension): the paper's pooled CQR versus
//! its methodological neighbours.
//!
//! The paper compares three calibration strategies (Fig 5). The conformal
//! literature it draws on offers more; this experiment adds the two nearest
//! alternatives, all wrapped around the *same* trained quantile model:
//!
//! - **pooled CQR** (the paper): per-arity pools + optimal head selection;
//! - **scaled conformal** (Sousa et al., the "CQR-r" family): one global
//!   offset on scores normalized by the ξ=0.9 − ξ=0.5 head spread;
//! - **split conformal** on the median head (non-adaptive reference);
//! - a **two-sided CQR** interval, reported in the notes, whose lower edge
//!   doubles as the paper's assumed phase-shift detector.
//!
//! Expected shape: pooled CQR and scaled conformal are close (both adapt),
//! with pooled CQR ahead where arity drives heteroscedasticity; plain split
//! conformal is widest. All must cover.

use crate::harness::Harness;
use crate::methods::PitotPredictor;
use crate::report::{Figure, Point, Series};
use crate::uncertainty::{epsilons, EvalSet, PredictorCalibration};
use pitot::{Objective, PitotConfig};
use pitot_baselines::LogPredictor;
use pitot_conformal::{
    coverage, head_spread, interval_coverage, mean_interval_factor, overprovision_margin,
    HeadSelection, ScaledConformal, SplitConformal, TwoSidedCqr,
};
use pitot_testbed::Dataset;

/// Index of the ξ=0.5 head in the paper's quantile spread.
const MEDIAN_HEAD: usize = 0;
/// Index of the ξ=0.9 head in the paper's quantile spread.
const HI_HEAD: usize = 4;

struct VariantEval {
    margin_no: f32,
    margin_with: f32,
    cov_all: f32,
}

/// One replicate's predictions and precomputed scores, shared by every
/// `(variant, ε)` pair: the calibration half is predicted and scored once,
/// the test sets are predicted once, and each fit below is a quantile
/// lookup over the appropriate score slice.
struct VariantData {
    calib: PredictorCalibration,
    /// Sorted median-head scores `t − p` (split conformal sweep).
    median_scores_sorted: Vec<f32>,
    /// Spread-normalized median-head scores (scaled conformal sweep).
    scaled_scores: Vec<f32>,
    eval_no: EvalSet,
    eval_with: EvalSet,
    eval_all: EvalSet,
}

impl VariantData {
    fn prepare(
        model: &dyn LogPredictor,
        dataset: &Dataset,
        split: &pitot_testbed::split::Split,
        no_idx: &[usize],
        with_idx: &[usize],
    ) -> Self {
        // Calibration half of the holdout (same interleave as the paper path).
        let cal_idx: Vec<usize> = split.val.iter().copied().step_by(2).collect();
        let cal_preds = model.predict_log(dataset, &cal_idx);
        let cal_t: Vec<f32> = cal_idx
            .iter()
            .map(|&i| dataset.observations[i].log_runtime())
            .collect();
        let mut median_scores_sorted: Vec<f32> = cal_preds[MEDIAN_HEAD]
            .iter()
            .zip(&cal_t)
            .map(|(p, t)| t - p)
            .collect();
        let disp_cal = head_spread(&cal_preds[MEDIAN_HEAD], &cal_preds[HI_HEAD]);
        let scaled_scores: Vec<f32> = median_scores_sorted
            .iter()
            .zip(&disp_cal)
            .map(|(s, d)| s / d.max(pitot_conformal::MIN_SCALE))
            .collect();
        median_scores_sorted.sort_by(f32::total_cmp);

        let all_idx: Vec<usize> = no_idx.iter().chain(with_idx).copied().collect();
        Self {
            calib: PredictorCalibration::prepare(model, dataset, split),
            median_scores_sorted,
            scaled_scores,
            eval_no: EvalSet::prepare(model, dataset, no_idx),
            eval_with: EvalSet::prepare(model, dataset, with_idx),
            eval_all: EvalSet::prepare(model, dataset, &all_idx),
        }
    }

    fn eval_variants(&self, eps: f32) -> Vec<(&'static str, VariantEval)> {
        let eval_bounds =
            |bound_for: &dyn Fn(&[Vec<f32>], usize) -> f32, set: &EvalSet| -> (f32, f32) {
                let bounds: Vec<f32> = (0..set.len()).map(|b| bound_for(set.preds(), b)).collect();
                (
                    overprovision_margin(&bounds, set.targets()),
                    coverage(&bounds, set.targets()),
                )
            };

        let mut out = Vec::new();

        // 1. Pooled CQR (the paper).
        {
            let pooled = self.calib.fit(eps, HeadSelection::TightestOnValidation);
            out.push((
                "pooled CQR (paper)",
                VariantEval {
                    margin_no: self.eval_no.margin(&pooled),
                    margin_with: self.eval_with.margin(&pooled),
                    cov_all: self.eval_all.coverage(&pooled),
                },
            ));
        }

        // 2. Scaled conformal: dispersion = hi-head − median-head spread.
        {
            let scaled = ScaledConformal::from_scores(&self.scaled_scores, eps);
            let bound_for = |preds: &[Vec<f32>], b: usize| {
                let d = (preds[HI_HEAD][b] - preds[MEDIAN_HEAD][b]).max(pitot_conformal::MIN_SCALE);
                scaled.upper_bound_log(preds[MEDIAN_HEAD][b], d)
            };
            let (m_no, _) = eval_bounds(&bound_for, &self.eval_no);
            let (m_with, _) = eval_bounds(&bound_for, &self.eval_with);
            let (_, cov) = eval_bounds(&bound_for, &self.eval_all);
            out.push((
                "scaled conformal (CQR-r)",
                VariantEval {
                    margin_no: m_no,
                    margin_with: m_with,
                    cov_all: cov,
                },
            ));
        }

        // 3. Plain split conformal on the median head.
        {
            let sc = SplitConformal::from_sorted_scores(&self.median_scores_sorted, eps);
            let bound_for =
                |preds: &[Vec<f32>], b: usize| sc.upper_bound_log(preds[MEDIAN_HEAD][b]);
            let (m_no, _) = eval_bounds(&bound_for, &self.eval_no);
            let (m_with, _) = eval_bounds(&bound_for, &self.eval_with);
            let (_, cov) = eval_bounds(&bound_for, &self.eval_all);
            out.push((
                "split conformal (median head)",
                VariantEval {
                    margin_no: m_no,
                    margin_with: m_with,
                    cov_all: cov,
                },
            ));
        }

        out
    }
}

/// Extension figure: tightness/coverage of conformal variants at the 50%
/// split, plus two-sided interval statistics in the notes.
pub fn ext_conformal_variants(h: &Harness) -> Figure {
    let mut fig = Figure::new(
        "ext-conformal",
        "Conformal variants around one trained model (extension)",
    );
    let eps_list = epsilons(h);
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        ..h.pitot_config()
    };

    let labels = [
        "pooled CQR (paper)",
        "scaled conformal (CQR-r)",
        "split conformal (median head)",
    ];
    let mut margins_no: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); eps_list.len()]; labels.len()];
    let mut margins_with: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); eps_list.len()]; labels.len()];
    let mut coverages: Vec<Vec<Vec<f32>>> = vec![vec![Vec::new(); eps_list.len()]; labels.len()];
    let mut interval_notes = Vec::new();

    for rep in 0..h.replicates {
        let split = h.split(0.5, rep);
        let trained = pitot::train(&h.dataset, &split, &cfg.clone().with_seed(rep as u64));
        let model = PitotPredictor(trained);
        let no_idx = h.test_without_interference(&split);
        let with_idx = h.test_with_interference(&split);

        let data = VariantData::prepare(&model, &h.dataset, &split, &no_idx, &with_idx);
        for (e, &eps) in eps_list.iter().enumerate() {
            let results = data.eval_variants(eps);
            for (v, (label, ev)) in results.into_iter().enumerate() {
                debug_assert_eq!(label, labels[v]);
                margins_no[v][e].push(ev.margin_no);
                margins_with[v][e].push(ev.margin_with);
                coverages[v][e].push(ev.cov_all);
            }
        }

        // Quantile-head crossing diagnostic (reported in notes): how often
        // the independently trained ξ-heads actually cross, which is what
        // `PitotConfig::rearrange_quantiles` fixes.
        if rep == 0 {
            let all_idx: Vec<usize> = no_idx.iter().chain(&with_idx).copied().collect();
            let preds = model.predict_log(&h.dataset, &all_idx);
            interval_notes.push(format!(
                "quantile-head crossing rate on test data: {:.1}% of observations",
                100.0 * pitot_conformal::crossing_rate(&preds)
            ));
        }

        // Two-sided interval at ε = 0.1 (reported in notes).
        if rep == 0 {
            let cal_idx: Vec<usize> = split.val.iter().copied().step_by(2).collect();
            let cal_preds = model.predict_log(&h.dataset, &cal_idx);
            let cal_t: Vec<f32> = cal_idx
                .iter()
                .map(|&i| h.dataset.observations[i].log_runtime())
                .collect();
            let cqr2 = TwoSidedCqr::fit(&cal_preds[MEDIAN_HEAD], &cal_preds[HI_HEAD], &cal_t, 0.1);
            let all_idx: Vec<usize> = no_idx.iter().chain(&with_idx).copied().collect();
            let test_preds = model.predict_log(&h.dataset, &all_idx);
            let test_t: Vec<f32> = all_idx
                .iter()
                .map(|&i| h.dataset.observations[i].log_runtime())
                .collect();
            let ivs = cqr2.intervals_log(&test_preds[MEDIAN_HEAD], &test_preds[HI_HEAD]);
            interval_notes.push(format!(
                "two-sided CQR at ε=0.1: coverage {:.3}, mean interval factor {:.2}x",
                interval_coverage(&ivs, &test_t),
                mean_interval_factor(&ivs),
            ));
        }
    }

    for (v, label) in labels.iter().enumerate() {
        for (panel, data) in [
            ("without interference", &margins_no[v]),
            ("with interference", &margins_with[v]),
        ] {
            fig.series.push(Series {
                label: (*label).into(),
                panel: panel.into(),
                metric: "bound tightness".into(),
                points: data
                    .iter()
                    .zip(&eps_list)
                    .map(|(values, &eps)| Point::from_replicates(eps, values.clone()))
                    .collect(),
            });
        }
        fig.series.push(Series {
            label: (*label).into(),
            panel: "all test data".into(),
            metric: "coverage".into(),
            points: coverages[v]
                .iter()
                .zip(&eps_list)
                .map(|(values, &eps)| Point::from_replicates(eps, values.clone()))
                .collect(),
        });
    }
    fig.notes.extend(interval_notes);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn variants_cover_and_adaptive_beats_constant() {
        let h = Harness::new(Scale::Fast);
        let fig = ext_conformal_variants(&h);

        // Every variant covers at every ε (within sampling slack).
        for s in fig.series.iter().filter(|s| s.metric == "coverage") {
            for p in &s.points {
                assert!(
                    p.mean >= 1.0 - p.x - 0.05,
                    "{} under-covers at ε={}: {}",
                    s.label,
                    p.x,
                    p.mean
                );
            }
        }

        // At the strictest ε with interference, the paper's pooled CQR must
        // not lose badly to the non-adaptive reference.
        let margin_at = |label: &str| {
            let s = fig
                .series
                .iter()
                .find(|s| s.label == label && s.panel == "with interference")
                .unwrap_or_else(|| panic!("{label} missing"));
            s.points.last().expect("points").mean
        };
        let pooled = margin_at("pooled CQR (paper)");
        let plain = margin_at("split conformal (median head)");
        assert!(
            pooled <= plain * 1.1,
            "pooled CQR ({pooled}) should not be looser than split conformal ({plain})"
        );
    }
}
