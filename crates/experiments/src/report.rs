//! Structured experiment results and uniform terminal/JSON reporting.

use pitot_linalg::{mean, stderr_of_mean};
use serde::{Deserialize, Serialize};

/// One x-position on a series: replicate-aggregated mean ± 2 standard errors
/// (the paper's error bars, Sec 5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (train fraction, miscoverage rate, hyperparameter value…).
    pub x: f32,
    /// Replicate mean of the metric.
    pub mean: f32,
    /// Two standard errors across replicates.
    pub two_se: f32,
    /// Raw replicate values.
    pub replicates: Vec<f32>,
}

impl Point {
    /// Aggregates replicate measurements at position `x`.
    pub fn from_replicates(x: f32, values: Vec<f32>) -> Self {
        Self {
            x,
            mean: mean(&values),
            two_se: 2.0 * stderr_of_mean(&values),
            replicates: values,
        }
    }
}

/// A named curve within a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"Log-Residual Objective"`.
    pub label: String,
    /// Which panel the series belongs to, e.g. `"without interference"`.
    pub panel: String,
    /// Metric name, e.g. `"MAPE"` or `"bound tightness"`.
    pub metric: String,
    /// The curve.
    pub points: Vec<Point>,
}

/// A reproduced figure or table: an identifier plus its series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Paper identifier, e.g. `"fig4a"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// All series across panels.
    pub series: Vec<Series>,
    /// Free-form notes (headline numbers, correlations…).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Prints the figure as uniform terminal rows.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        for s in &self.series {
            for p in &s.points {
                println!(
                    "{} | {:<28} | {:<22} | x={:<6} | {}={:.4} ±{:.4}",
                    self.id, s.label, s.panel, p.x, s.metric, p.mean, p.two_se
                );
            }
        }
        for n in &self.notes {
            println!("{} | note | {n}", self.id);
        }
    }

    /// Looks up a series by label and panel.
    pub fn series_for(&self, label: &str, panel: &str) -> Option<&Series> {
        self.series
            .iter()
            .find(|s| s.label == label && s.panel == panel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_aggregation() {
        let p = Point::from_replicates(0.5, vec![1.0, 3.0]);
        assert_eq!(p.mean, 2.0);
        assert!(p.two_se > 0.0);
        assert_eq!(p.replicates.len(), 2);
    }

    #[test]
    fn figure_lookup() {
        let mut f = Figure::new("fig0", "test");
        f.series.push(Series {
            label: "a".into(),
            panel: "p".into(),
            metric: "m".into(),
            points: vec![],
        });
        assert!(f.series_for("a", "p").is_some());
        assert!(f.series_for("a", "q").is_none());
    }
}
