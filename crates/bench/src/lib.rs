//! Shared fixtures for the Criterion benches.
//!
//! Each bench regenerates the computational core of one paper table or
//! figure at a reduced-but-structurally-identical scale, so `cargo bench`
//! doubles as a smoke test of every experiment path.

// Every public item in this crate is part of the documented workspace
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};

/// A small shared dataset + split fixture.
pub struct Fixture {
    /// The simulated cluster.
    pub testbed: Testbed,
    /// Collected observations and features.
    pub dataset: Dataset,
    /// A 50% train split.
    pub split: Split,
}

impl Fixture {
    /// Builds the fixture (a few hundred milliseconds).
    pub fn small() -> Self {
        let testbed = Testbed::generate(&TestbedConfig::small());
        let dataset = testbed.collect_dataset();
        let split = Split::stratified(&dataset, 0.5, 0);
        Self {
            testbed,
            dataset,
            split,
        }
    }
}
