//! `link_check`: fail CI when a relative markdown link is broken.
//!
//! Scans the operator-facing documentation set — `README.md`,
//! `ARCHITECTURE.md`, and everything under `docs/` — for inline markdown
//! links (`[text](target)`), resolves every relative target against the
//! linking file's directory, and exits nonzero listing any target that
//! does not exist. External links (`http(s)://`, `mailto:`) and pure
//! in-page anchors (`#...`) are skipped; a `path#fragment` target is
//! checked for the path only.
//!
//! ```sh
//! cargo run --release -p pitot-bench --bin link_check
//! ```
//!
//! Optional arguments are alternate root directories (default: the current
//! directory), so the checker works from any workspace checkout layout.

use std::path::{Path, PathBuf};

/// One extracted link: the target text and the byte offset it started at
/// (for error messages).
#[derive(Debug, PartialEq, Eq)]
struct Link {
    target: String,
    line: usize,
}

/// Extracts inline markdown link targets `[text](target)` from `src`,
/// skipping fenced code blocks (``` ... ```), where bracket-paren
/// sequences are code, not links.
fn extract_links(src: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in src.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = line[start..].find(')') {
                    let target = line[start..start + rel_end].trim();
                    // Reference-style images/titles: drop a ` "title"` tail.
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !target.is_empty() {
                        links.push(Link {
                            target: target.to_string(),
                            line: lineno + 1,
                        });
                    }
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    links
}

/// True when the target is out of scope for a filesystem check: external
/// URLs and pure in-page anchors.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

/// Resolves a relative target (minus any `#fragment`) against the linking
/// file's directory and reports whether it exists.
fn target_exists(doc: &Path, target: &str) -> bool {
    let path_part = target.split('#').next().unwrap_or("");
    let base = match doc.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    base.join(path_part).exists()
}

/// The documentation set under `root`: README, ARCHITECTURE, and `docs/`.
fn doc_set(root: &Path) -> Vec<PathBuf> {
    let mut docs = Vec::new();
    for name in ["README.md", "ARCHITECTURE.md"] {
        let p = root.join(name);
        if p.exists() {
            docs.push(p);
        }
    }
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        let mut under: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        under.sort();
        docs.extend(under);
    }
    docs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();
    for root in &roots {
        for doc in doc_set(root) {
            let src = std::fs::read_to_string(&doc)
                .unwrap_or_else(|e| panic!("read {}: {e}", doc.display()));
            for link in extract_links(&src) {
                if is_external(&link.target) {
                    continue;
                }
                checked += 1;
                if !target_exists(&doc, &link.target) {
                    broken.push(format!(
                        "{}:{}: broken relative link `{}`",
                        doc.display(),
                        link.line,
                        link.target
                    ));
                }
            }
        }
    }

    if broken.is_empty() {
        println!("link_check: {checked} relative links OK");
    } else {
        for b in &broken {
            eprintln!("{b}");
        }
        eprintln!(
            "link_check: {} broken of {checked} relative links",
            broken.len()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_links_with_line_numbers() {
        let src = "see [a](docs/A.md) and [b](B.md#sec)\nplain line\n[c](https://x.y)";
        let links = extract_links(src);
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].target, "docs/A.md");
        assert_eq!(links[0].line, 1);
        assert_eq!(links[1].target, "B.md#sec");
        assert_eq!(links[2].line, 3);
    }

    #[test]
    fn skips_fenced_code_blocks() {
        let src = "```rust\nlet x = v[i](arg);\n```\n[real](R.md)";
        let links = extract_links(src);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].target, "R.md");
    }

    #[test]
    fn classifies_external_and_anchor_targets() {
        assert!(is_external("https://example.com"));
        assert!(is_external("http://example.com"));
        assert!(is_external("mailto:a@b.c"));
        assert!(is_external("#section"));
        assert!(!is_external("docs/SCHEDULING.md"));
        assert!(!is_external("../README.md"));
    }

    #[test]
    fn resolves_targets_relative_to_the_linking_file() {
        let dir = std::env::temp_dir().join("pitot_link_check_test");
        let docs = dir.join("docs");
        std::fs::create_dir_all(&docs).unwrap();
        std::fs::write(dir.join("README.md"), "[x](docs/X.md)").unwrap();
        std::fs::write(docs.join("X.md"), "[up](../README.md#top)").unwrap();

        assert!(target_exists(&dir.join("README.md"), "docs/X.md"));
        assert!(target_exists(&docs.join("X.md"), "../README.md#top"));
        assert!(!target_exists(&dir.join("README.md"), "docs/MISSING.md"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fragment_only_path_resolves_to_the_containing_directory() {
        // `path#frag` keeps only the path; an empty path joins to the base
        // dir, which exists — consistent with anchors being skipped.
        assert!(target_exists(Path::new("README.md"), "#only-frag"));
    }
}
