//! Bench regression gate: diffs fresh `BENCH_*.ci.json` medians against a
//! committed baseline and fails on regression.
//!
//! CI runners and the container the committed baselines were measured on
//! run at different absolute speeds, so comparing raw medians across
//! machines would fire on every hardware change. The gate instead compares
//! the *shape* of the profile: it computes the per-benchmark fresh/baseline
//! ratio, takes the median ratio as the machine-speed factor, and flags any
//! benchmark whose ratio exceeds that factor by more than the threshold —
//! i.e. a benchmark that got slower *relative to everything else*. A
//! uniform machine-speed change passes; one kernel regressing by >25%
//! fails.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baseline BENCH_training.json --fresh BENCH_training.ci.json \
//!            [--max-regression 0.25] [--min-common 3]
//! ```
//!
//! Two guards keep the gate from flaking on noisy runners: sub-microsecond
//! benches (timer-quantization-dominated) are never judged, and each
//! benchmark's threshold widens by three times the relative standard
//! deviation its baseline recorded — a benchmark that is 8% noisy at rest
//! gets a 25% + 24% allowance, while a stable one is held near 25%.
//!
//! Baselines may be either the criterion-shim dump format
//! (`{"benches": [{"name", "median_ns", …}]}`) or the committed
//! before/after format (the `"after"` section, `name → {"median_ns": …}`).
//! Exit status: 0 = pass, 1 = regression, 2 = usage/parse error.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default maximum relative regression versus the machine-speed-normalized
/// baseline (the ROADMAP's requested 25%).
const DEFAULT_MAX_REGRESSION: f64 = 0.25;
/// Below this many common benchmarks the median ratio is too noisy to
/// normalize with, and the gate refuses to judge.
const DEFAULT_MIN_COMMON: usize = 3;

/// `(median_ns, relative stddev)` per benchmark.
fn median_map(v: &Value) -> BTreeMap<String, (f64, f64)> {
    let mut out = BTreeMap::new();
    let insert = |out: &mut BTreeMap<String, (f64, f64)>, name: &str, rec: &Value| {
        if let Some(med) = rec
            .get("median_ns")
            .or_else(|| rec.get("mean_ns"))
            .and_then(Value::as_f64)
        {
            let rel_std = rec
                .get("stddev_ns")
                .and_then(Value::as_f64)
                .map_or(0.0, |sd| sd / med.max(1e-9));
            out.insert(name.to_string(), (med, rel_std));
        }
    };
    // Shim dump format: {"benches": [{"name": …, "median_ns": …}]}.
    if let Some(benches) = v.get("benches").and_then(Value::as_array) {
        for b in benches {
            if let Some(name) = b.get("name").and_then(Value::as_str) {
                insert(&mut out, name, b);
            }
        }
        return out;
    }
    // Committed before/after format: use the "after" section.
    if let Some(after) = v.get("after").and_then(Value::as_object) {
        for (name, rec) in after {
            insert(&mut out, name, rec);
        }
    }
    out
}

fn load(path: &str) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let map = median_map(&v);
    if map.is_empty() {
        return Err(format!("{path}: no benchmark medians found"));
    }
    Ok(map)
}

fn run() -> Result<bool, String> {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut max_regression = DEFAULT_MAX_REGRESSION;
    let mut min_common = DEFAULT_MIN_COMMON;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline_path = Some(grab("--baseline")?),
            "--fresh" => fresh_path = Some(grab("--fresh")?),
            "--max-regression" => {
                max_regression = grab("--max-regression")?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?;
            }
            "--min-common" => {
                min_common = grab("--min-common")?
                    .parse()
                    .map_err(|e| format!("--min-common: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let baseline = load(&baseline_path.ok_or("--baseline is required")?)?;
    let fresh = load(&fresh_path.ok_or("--fresh is required")?)?;

    let mut common: Vec<(&str, f64, f64)> = baseline
        .iter()
        .filter_map(|(name, &(base, rel_std))| {
            // Sub-microsecond benches are dominated by timer quantization
            // and cannot be judged through a ratio; leave them to human
            // eyes in the uploaded artifacts.
            if base < 1_000.0 {
                println!("bench_gate: skipping sub-µs benchmark {name} ({base:.1} ns)");
                return None;
            }
            fresh.get(name).map(|&(f, fresh_rel_std)| {
                let noise = rel_std.max(fresh_rel_std);
                (name.as_str(), f / base.max(1e-9), noise)
            })
        })
        .collect();
    if common.len() < min_common {
        println!(
            "bench_gate: only {} common benchmarks (need {min_common}); skipping judgement",
            common.len()
        );
        return Ok(true);
    }

    // Machine-speed factor: the median fresh/baseline ratio.
    let speed = {
        let mut ratios: Vec<f64> = common.iter().map(|&(_, r, _)| r).collect();
        ratios.sort_by(f64::total_cmp);
        let n = ratios.len();
        if n % 2 == 1 {
            ratios[n / 2]
        } else {
            0.5 * (ratios[n / 2 - 1] + ratios[n / 2])
        }
    };

    common.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut failed = false;
    println!(
        "bench_gate: machine-speed factor {speed:.3} over {} benchmarks",
        common.len()
    );
    println!(
        "{:<55} {:>10} {:>12} {:>10}",
        "benchmark", "ratio", "normalized", "allowed"
    );
    for (name, ratio, noise) in &common {
        let normalized = ratio / speed;
        let allowed = 1.0 + max_regression + 3.0 * noise;
        let flag = if normalized > allowed {
            failed = true;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("{name:<55} {ratio:>9.3}x {normalized:>11.3}x {allowed:>9.3}x{flag}");
    }
    if failed {
        println!(
            "bench_gate: FAIL — at least one benchmark regressed more than {:.0}% \
             relative to the machine-normalized baseline",
            max_regression * 100.0
        );
    } else {
        println!("bench_gate: PASS");
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::from(2)
        }
    }
}
