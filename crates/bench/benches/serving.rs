//! Serving-layer cost: event throughput of the streaming loop and the
//! latency of a sliding-window conformal refresh.
//!
//! The serving story only holds if recalibrating per observation is cheap —
//! the whole point of `pitot_conformal::WindowedScores` is that a refresh
//! is rank lookups over incrementally maintained sorted slices instead of a
//! re-score + re-sort. This bench records:
//!
//! - `serving/stream_2k_events`: a mixed observation/query stream through a
//!   full server (window 512, refresh every observation, micro-batch 16) —
//!   the headline events/sec figure;
//! - `serving/refresh_tightest_1k`: one observation + refresh on a full
//!   1024-window server under `TightestOnValidation` head selection (the
//!   most expensive refresh configuration);
//! - `serving/refresh_p50` / `serving/refresh_p99`: tail percentiles over
//!   individual refresh latencies, recorded via
//!   `criterion::record_external` so the regression gate judges the tail,
//!   not just the mean.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::HeadSelection;
use pitot_serve::{Event, PitotServer, ServeConfig};
use std::hint::black_box;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// A mixed event stream over the test split: 3 observations per query,
/// queries micro-batched by the server.
fn build_events(f: &Fixture, n: usize) -> Vec<Event> {
    (0..n)
        .map(|t| {
            let o = &f.dataset.observations[f.split.test[t % f.split.test.len()]];
            if t % 4 == 3 {
                Event::Query {
                    id: t as u64,
                    workload: o.workload,
                    platform: o.platform,
                    interferers: o.interferers.clone(),
                }
            } else {
                Event::Observe(o.clone())
            }
        })
        .collect()
}

/// Events/sec through a serving instance refreshing on every observation.
fn stream_throughput(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut cfg = ServeConfig::at(0.1);
    cfg.window = 512;
    cfg.refresh_every = 1;
    cfg.microbatch = 16;
    let mut server = PitotServer::new(t, f.dataset.clone(), cfg);
    server.seed_calibration(&f.split.val);

    let events = build_events(&f, 2000);
    // The server lives across iterations (its clock must stay monotone).
    let mut t0 = 0.0f64;
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("stream_2k_events", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for (dt, ev) in events.iter().enumerate() {
                answered += server
                    .on_event(t0 + dt as f64, ev.clone())
                    .predictions
                    .len();
            }
            t0 += events.len() as f64;
            black_box(server.flush());
            black_box(answered)
        })
    });
    group.finish();
    // Keep the latency record from this run out of the percentile bench.
    drop(server);
}

/// One observation + refresh on a full window under the most expensive
/// selection policy, plus tail percentiles of the individual refreshes.
fn refresh_latency(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut cfg = ServeConfig::at(0.1);
    cfg.window = 1024;
    cfg.refresh_every = 1;
    cfg.selection = HeadSelection::TightestOnValidation;
    let mut server = PitotServer::new(t, f.dataset.clone(), cfg);
    server.seed_calibration(&f.split.val);
    // Fill the window completely before measuring.
    for (dt, &i) in f.split.test.iter().take(1024).enumerate() {
        server.on_event(dt as f64, Event::Observe(f.dataset.observations[i].clone()));
    }

    let mut t0 = 2048.0f64;
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("refresh_tightest_1k", |b| {
        b.iter(|| {
            let i = f.split.test[(t0 as usize) % f.split.test.len()];
            let fb = server.on_event(t0, Event::Observe(f.dataset.observations[i].clone()));
            t0 += 1.0;
            black_box(fb)
        })
    });
    group.finish();

    // Tail percentiles over every refresh this bench performed.
    let mut lat: Vec<u64> = std::mem::take(&mut server.stats_mut().refresh_ns);
    lat.sort_unstable();
    if !lat.is_empty() {
        let pct = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize] as f64;
        let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
        let var = lat
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / lat.len().max(1) as f64;
        criterion::record_external("serving/refresh_p50", pct(0.50), var.sqrt(), lat.len());
        criterion::record_external("serving/refresh_p99", pct(0.99), var.sqrt(), lat.len());
    }
}

criterion_group!(serving, stream_throughput, refresh_latency);
criterion_main!(serving);
