//! Compression-layer benches: the int8 per-row quantized products against
//! the f32 blocked kernels at training-step tower shapes, quantization
//! cost, and the end-to-end serving question — observations/second through
//! a compressed tower cache at each ladder level.
//!
//! Together with the per-level `weight_bytes` notes in `ext-compress`,
//! this is the throughput/memory side of the width-vs-compression
//! tradeoff table in `docs/SERVING.md`. `PITOT_BENCH_JSON=path` dumps the
//! figures machine-readably; `BENCH_compress.json` in the repo root
//! records the trajectory for this layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{CompressedTower, CompressionSpec, Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_linalg::{matmul_q_into, matmul_transpose_q_into, Matrix, QuantizedMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Tower shapes: the platform tower at the small testbed, a wider hidden
/// layer, and a batch-512 inference slab.
const SHAPES: [(usize, usize, usize); 3] = [(220, 52, 128), (220, 128, 128), (512, 128, 160)];

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// int8 products vs the f32 blocked kernels at each tower shape. The
/// quantized path accumulates in exact i32, so this is the *honest* cost
/// of serving compressed — no fast-math shortcuts.
fn quant_products(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for (m, k, n) in SHAPES {
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let bt = b.transpose();
        let qa = QuantizedMatrix::from_rows(a.view());
        let qb = QuantizedMatrix::from_cols(b.view());
        let qbt = QuantizedMatrix::from_rows(bt.view());
        let mut out = Matrix::zeros(m, n);
        let flops = (2 * m * k * n) as u64;

        let mut group = c.benchmark_group(&format!("quant_matmul/{m}x{k}x{n}"));
        group
            .sample_size(20)
            .throughput(Throughput::Elements(flops));
        group.bench_function("int8", |bch| bch.iter(|| matmul_q_into(&qa, &qb, &mut out)));
        group.bench_function("int8_transpose", |bch| {
            bch.iter(|| matmul_transpose_q_into(&qa, &qbt, &mut out))
        });
        group.bench_function("f32_blocked", |bch| {
            bch.iter(|| a.matmul_into(&b, &mut out))
        });
        group.finish();
    }
}

/// One-time cost of quantizing a weight plane (paid at compression time,
/// never on the serving path).
fn quantize_cost(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let w = Matrix::randn(512, 160, &mut rng);
    let elems = (512 * 160) as u64;
    let mut group = c.benchmark_group("quantize/512x160");
    group.throughput(Throughput::Elements(elems));
    group.bench_function("from_rows", |bch| {
        bch.iter(|| black_box(QuantizedMatrix::from_rows(w.view())))
    });
    group.finish();
}

/// End-to-end serving throughput: 256 observations scored through a
/// frozen tower cache at each compression-ladder level. This is the
/// number a replica operator trades against the `weight_bytes` saving
/// and the interval-width cost measured by `ext-compress`.
fn predict_compressed(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let idx: Vec<usize> = f.split.test.iter().copied().take(256).collect();
    let levels = [
        ("dense", CompressionSpec::none()),
        ("int8", CompressionSpec::int8()),
        ("pruned_int8", CompressionSpec::pruned_int8(0.5)),
    ];
    let mut group = c.benchmark_group("compress/predict_cached_256");
    group
        .sample_size(20)
        .throughput(Throughput::Elements(idx.len() as u64));
    for (name, spec) in levels {
        let cache = CompressedTower::new(&t, &spec).tower_cache(&f.dataset);
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let refs: Vec<_> = idx.iter().map(|&i| &f.dataset.observations[i]).collect();
                black_box(t.predict_log_runtime_cached(&cache, &refs))
            })
        });
    }
    group.finish();

    // Cache build cost per level (paid once per deploy/rejoin, off the
    // serving path — recorded so regressions in compression setup are
    // visible).
    let mut group = c.benchmark_group("compress/build_tower_cache");
    group.sample_size(10);
    for (name, spec) in [
        ("dense", CompressionSpec::none()),
        ("pruned_int8", CompressionSpec::pruned_int8(0.5)),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(CompressedTower::new(&t, &spec).tower_cache(&f.dataset)))
        });
    }
    group.finish();
}

criterion_group!(compress, quant_products, quantize_cost, predict_compressed);
criterion_main!(compress);
