//! Degraded-mode cost: gossip merge rounds and crash recovery.
//!
//! The resilience story only holds if the fallback paths are cheap enough
//! to run *during* an incident: gossip rounds fire on the merge cadence
//! while the coordinator is dark, and a warm rejoin happens on the
//! serving path's clock. This bench records:
//!
//! - `chaos/gossip_round_4x256`: one pairwise gossip round among 4
//!   replicas holding 256-score windows — snapshot refresh, two pairwise
//!   CRDT joins, and a union fit per view (what each outage merge tick
//!   costs instead of a coordinator round);
//! - `chaos/recovery_replay_256`: a crashed replica's warm rejoin — read
//!   its 256 window entries back out of the coordinator's held summary
//!   ([`MergeableWindow::replica_entries`]), replay them into a fresh
//!   server, and install the fleet calibration (the recovery-time
//!   headline: how long a rejoining replica takes to serve again);
//! - `chaos/fault_tick_overhead`: a full faulted `FleetServer` event
//!   (deadline query + resolve + observation) under a trivial
//!   `FaultPlan::none` — the bookkeeping tax of having fault injection
//!   compiled into the control path at all.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::{
    HeadSelection, MergeableWindow, PooledConformal, PredictionSet, WindowedScores,
};
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, FaultPlan, FleetConfig, FleetServer, PitotServer, ServeConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// A replica window of `n` synthetic scores over `n_heads` heads and 4
/// pools.
fn replica_window(seed: u64, n: usize, n_heads: usize) -> WindowedScores {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = WindowedScores::new(n, n_heads);
    for i in 0..n {
        let preds: Vec<f32> = (0..n_heads).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = rng.gen_range(-1.0f32..1.5);
        w.push(&preds, target, i % 4);
    }
    w
}

fn fit_union(merged: &MergeableWindow, xis: &[f32]) -> PooledConformal {
    let scored = merged.to_scored();
    let empty_preds: Vec<Vec<f32>> = vec![Vec::new(); merged.n_heads()];
    PooledConformal::fit_scored(
        &scored,
        &PredictionSet {
            predictions: &empty_preds,
            targets_log: &[],
            pools: &[],
        },
        xis,
        HeadSelection::NaiveXi,
        0.1,
    )
}

/// One pairwise gossip round among 4 replicas: refresh own runs, join the
/// pairs, fit every view on its union.
fn gossip_round(c: &mut Criterion) {
    let windows: Vec<WindowedScores> = (0..4).map(|r| replica_window(200 + r, 256, 5)).collect();
    let xis = vec![0.5f32, 0.8, 0.9, 0.95, 0.99];

    let mut group = c.benchmark_group("chaos");
    group.bench_function("gossip_round_4x256", |b| {
        b.iter(|| {
            let mut views: Vec<MergeableWindow> = windows
                .iter()
                .enumerate()
                .map(|(r, w)| MergeableWindow::snapshot(r as u64, w))
                .collect();
            for pair in [(0usize, 1usize), (2, 3)] {
                let joined = views[pair.0].merge(&views[pair.1]);
                views[pair.0] = joined.clone();
                views[pair.1] = joined;
            }
            let fits: Vec<PooledConformal> = views.iter().map(|v| fit_union(v, &xis)).collect();
            black_box(fits)
        })
    });
    group.finish();
}

/// A crashed replica's warm rejoin: replay its window entries from the
/// coordinator's held summary into a fresh server and install the fleet
/// calibration.
fn recovery_replay(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let xis = t.model.config().objective.xis();
    let mut serve = ServeConfig::at(0.1);
    serve.window = 256;
    serve.refresh_every = usize::MAX;

    // The coordinator's merged view holds every replica's run; replica 1
    // is the one that crashed. Heads match the trained model's objective.
    let n_heads = xis.len();
    let windows: Vec<WindowedScores> = (0..3)
        .map(|r| replica_window(300 + r, 256, n_heads))
        .collect();
    let mut merged = MergeableWindow::empty(n_heads);
    for (r, w) in windows.iter().enumerate() {
        merged.absorb(&MergeableWindow::snapshot(r as u64, w));
    }
    let fleet_fit = fit_union(&merged, &xis);

    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    group.bench_function("recovery_replay_256", |b| {
        b.iter(|| {
            let (clock, entries) = merged.replica_entries(1).expect("replica 1 held");
            let mut server = PitotServer::new(t.clone(), f.dataset.clone(), serve.clone());
            server.restore_window(entries, clock);
            server.install_calibration(fleet_fit.clone());
            black_box(server.window_len())
        })
    });
    group.finish();
}

/// Per-event overhead of the fault bookkeeping itself: a 3-replica fleet
/// under a trivial fault plan, 2000 full events (deadline query + resolve
/// + observation, merge every 32).
fn fault_tick_overhead(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut serve = ServeConfig::at(0.1);
    serve.window = 256;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 32,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let mut fleet = FleetServer::with_faults(t, &f.dataset, cfg, FaultPlan::none(0));
    fleet.seed_calibration(&f.split.val);

    let events: Vec<usize> = (0..2000)
        .map(|t| f.split.test[t % f.split.test.len()])
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let deadlines: Vec<f64> = events
        .iter()
        .map(|&i| f64::from(f.dataset.observations[i].runtime_s) * rng.gen_range(0.75..3.0))
        .collect();

    let mut t0 = 0.0f64;
    let mut next_id = 0u64;
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("fault_tick_overhead", |b| {
        b.iter(|| {
            let mut admitted = 0usize;
            for (dt, (&i, &deadline)) in events.iter().zip(&deadlines).enumerate() {
                let o = f.dataset.observations[i].clone();
                let id = next_id;
                next_id += 1;
                let out = fleet.deadline_query(DeadlineQuery {
                    id,
                    workload: o.workload,
                    platform: o.platform,
                    interferers: o.interferers.clone(),
                    deadline_s: deadline,
                });
                fleet.resolve(id, f64::from(o.runtime_s));
                admitted += usize::from(out.decision.admitted());
                fleet.observe(t0 + dt as f64, o);
            }
            t0 += events.len() as f64;
            black_box(admitted)
        })
    });
    group.finish();
}

criterion_group!(chaos, gossip_round, recovery_replay, fault_tick_overhead);
criterion_main!(chaos);
