//! One bench group per paper table/figure: each measures the computational
//! core of the experiment that regenerates it (see DESIGN.md's experiment
//! index). Training-heavy figures are represented by a short-but-complete
//! training run so relative costs stay comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use pitot::{InterferenceMode, LossSpace, Objective, PitotConfig};
use pitot_analysis::{
    interference_matrix_norm, log_histogram, observed_slowdowns, Tsne, TsneConfig,
};
use pitot_baselines::{LogPredictor, MatrixFactorization, MfConfig};
use pitot_bench::Fixture;
use pitot_conformal::HeadSelection;
use pitot_experiments::PitotPredictor;
use std::hint::black_box;

fn micro_config() -> PitotConfig {
    let mut cfg = PitotConfig::tiny();
    cfg.steps = 40;
    cfg.eval_every = 20;
    cfg
}

/// Fig 1: interference-slowdown histogram over the full dataset.
fn fig1_interference_histogram(c: &mut Criterion) {
    let f = Fixture::small();
    c.bench_function("fig1_interference_histogram", |b| {
        b.iter(|| {
            let slow = observed_slowdowns(black_box(&f.dataset));
            let h = log_histogram(&slow[&1], 0.5, 32.0, 24);
            black_box(h.counts)
        })
    });
}

/// Tables 2–3: cluster synthesis and data collection.
fn table23_dataset_generation(c: &mut Criterion) {
    c.bench_function("table23_dataset_generation", |b| {
        b.iter(|| {
            let tb = pitot_testbed::Testbed::generate(&pitot_testbed::TestbedConfig::small());
            black_box(tb.collect_dataset().observations.len())
        })
    });
}

/// Fig 4a: one loss-space ablation arm (short complete training).
fn fig4_ablation_arm(c: &mut Criterion) {
    let f = Fixture::small();
    let mut group = c.benchmark_group("fig4_ablation_arm");
    group.sample_size(10);
    for (name, loss) in [
        ("log_residual", LossSpace::LogResidual),
        ("log", LossSpace::Log),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = PitotConfig {
                    loss_space: loss,
                    ..micro_config()
                };
                black_box(pitot::train(&f.dataset, &f.split, &cfg).final_val_loss())
            })
        });
    }
    // Fig 4c's discard arm trains on isolation data only.
    group.bench_function("discard", |b| {
        b.iter(|| {
            let cfg = PitotConfig {
                interference: InterferenceMode::Discard,
                ..micro_config()
            };
            black_box(pitot::train(&f.dataset, &f.split, &cfg).final_val_loss())
        })
    });
    group.finish();
}

/// Fig 5 / Fig 8: conformal calibration with quantile selection.
fn fig5_conformal_calibration(c: &mut Criterion) {
    let f = Fixture::small();
    let cfg = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]),
        ..micro_config()
    };
    let trained = pitot::train(&f.dataset, &f.split, &cfg);
    let mut group = c.benchmark_group("fig5_conformal_calibration");
    group.sample_size(20);
    for (name, sel) in [
        ("tightest", HeadSelection::TightestOnValidation),
        ("naive_cqr", HeadSelection::NaiveXi),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(trained.fit_bounds(&f.dataset, 0.1, sel)))
        });
    }
    group.finish();
}

/// Fig 6: baseline comparison arms (MF shown; NN/attention cost is dominated
/// by the same per-step MLP math measured in the training bench).
fn fig6_baseline_arm(c: &mut Criterion) {
    let f = Fixture::small();
    let mut group = c.benchmark_group("fig6_baseline_arm");
    group.sample_size(10);
    group.bench_function("matrix_factorization", |b| {
        b.iter(|| {
            let mut cfg = MfConfig::tiny();
            cfg.train.steps = 200;
            let m = MatrixFactorization::train(&f.dataset, &f.split, &cfg);
            black_box(m.predict_log(&f.dataset, &[0])[0][0])
        })
    });
    group.finish();
}

/// Fig 7 / 12a–c: t-SNE of learned embeddings.
fn fig7_tsne(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = pitot::train(&f.dataset, &f.split, &micro_config());
    let emb = trained.model.workload_embeddings(&f.dataset, 0);
    let mut group = c.benchmark_group("fig7_tsne");
    group.sample_size(10);
    group.bench_function("embed", |b| {
        let cfg = TsneConfig {
            iterations: 100,
            ..TsneConfig::default()
        };
        b.iter(|| black_box(Tsne::new(cfg.clone()).embed(&emb)))
    });
    group.finish();
}

/// Fig 10: the hyperparameter that dominates cost (embedding dimension r).
fn fig10_embed_dim(c: &mut Criterion) {
    let f = Fixture::small();
    let mut group = c.benchmark_group("fig10_embed_dim");
    group.sample_size(10);
    for r in [8usize, 32] {
        group.bench_function(format!("r{r}"), |b| {
            b.iter(|| {
                let cfg = PitotConfig {
                    embed_dim: r,
                    ..micro_config()
                };
                black_box(pitot::train(&f.dataset, &f.split, &cfg).final_val_loss())
            })
        });
    }
    group.finish();
}

/// Fig 11: the full bounds evaluation pass (predict + calibrate + margin).
fn fig11_bounds_grid_cell(c: &mut Criterion) {
    let f = Fixture::small();
    let cfg = PitotConfig {
        objective: Objective::Quantiles(vec![0.5, 0.9]),
        ..micro_config()
    };
    let trained = pitot::train(&f.dataset, &f.split, &cfg);
    let model = PitotPredictor(trained);
    let test: Vec<usize> = f.split.test.iter().copied().take(2000).collect();
    c.bench_function("fig11_bounds_grid_cell", |b| {
        b.iter(|| {
            let conformal = pitot_experiments::uncertainty::fit_bounds_generic(
                &model,
                &f.dataset,
                &f.split,
                0.1,
                HeadSelection::TightestOnValidation,
            );
            black_box(pitot_experiments::uncertainty::margin_on(
                &model, &conformal, &f.dataset, &test,
            ))
        })
    });
}

/// Fig 12d: spectral norm of every platform's interference matrix.
fn fig12_interference_norm(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = pitot::train(&f.dataset, &f.split, &micro_config());
    let pe = trained.model.platform_embeddings(&f.dataset);
    c.bench_function("fig12_interference_norm", |b| {
        b.iter(|| {
            let norms: Vec<f32> = (0..f.dataset.n_platforms)
                .map(|p| interference_matrix_norm(&pe.vs, &pe.vg, p))
                .collect();
            black_box(norms)
        })
    });
}

criterion_group!(
    figures,
    fig1_interference_histogram,
    table23_dataset_generation,
    fig4_ablation_arm,
    fig5_conformal_calibration,
    fig6_baseline_arm,
    fig7_tsne,
    fig10_embed_dim,
    fig11_bounds_grid_cell,
    fig12_interference_norm,
);
criterion_main!(figures);
