//! Concurrent-runtime serving throughput and its primitives, against the
//! deterministic simulated twin on the same traces.
//!
//! - `streaming/concurrent_obs_2k` / `streaming/simulated_obs_2k`: 2000
//!   observations (no queries) through a 4-replica `ConcurrentFleet` at the
//!   machine's lane count vs. the simulated `FleetServer` — the ingest
//!   events/sec headline `BENCH_streaming.json` gates. On a multi-core box
//!   (`PITOT_THREADS>1`) the concurrent number is the one expected to pull
//!   ahead ≥2×; on a 1-core box both run the same single-lane work and the
//!   gate holds the ratio instead (see the JSON's `meta.note`).
//! - `streaming/concurrent_mixed_2k` / `streaming/simulated_mixed_2k`: a
//!   mixed trace (observe + deadline-query + resolve) — admission and the
//!   snapshot read path included.
//! - `streaming/snapshot_load_quiet_p50|p99` and
//!   `streaming/snapshot_load_contended_p50|p99`
//!   (`criterion::record_external`): latency of `SnapshotCell::load` with
//!   no writer vs. under a continuous writer — the no-blocking-on-reads
//!   claim in numbers: contended p99 must stay flat.
//! - `streaming/queue_push_drain_1k`: the MPSC lane queue's raw
//!   push + coalesced-drain cycle, 1000 events per iteration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::HeadSelection;
use pitot_linalg::par::EventQueue;
use pitot_serve::{
    run_trace_simulated, AdmissionConfig, ConcurrentConfig, ConcurrentFleet, DeadlineQuery,
    FleetConfig, FleetServer, ServeConfig, SnapshotCell, TraceEvent,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

fn fleet_cfg(replicas: usize) -> FleetConfig {
    let mut serve = ServeConfig::at(0.1);
    serve.window = 256;
    serve.selection = HeadSelection::NaiveXi;
    FleetConfig {
        serve,
        replicas,
        merge_every: 32,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// An observation-only trace of `n` events cycling the test split.
fn obs_trace(f: &Fixture, n: usize) -> Vec<TraceEvent> {
    (0..n)
        .map(|t| {
            TraceEvent::Observe(
                f.dataset.observations[f.split.test[t % f.split.test.len()]].clone(),
            )
        })
        .collect()
}

/// A mixed trace: every third event a deadline query, resolved three
/// events later, the rest observations. `id0` keeps ids unique across
/// repeated traces through one fleet.
fn mixed_trace(f: &Fixture, n: usize, id0: u64) -> Vec<TraceEvent> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut events = Vec::with_capacity(n);
    let mut open: Option<(u64, f64)> = None;
    for t in 0..n {
        let obs = &f.dataset.observations[f.split.test[t % f.split.test.len()]];
        match t % 3 {
            0 => {
                let id = id0 + t as u64;
                events.push(TraceEvent::Deadline(DeadlineQuery {
                    id,
                    workload: obs.workload,
                    platform: obs.platform,
                    interferers: obs.interferers.clone(),
                    deadline_s: f64::from(obs.runtime_s) * rng.gen_range(0.75..3.0),
                }));
                open = Some((id, f64::from(obs.runtime_s)));
            }
            1 => events.push(TraceEvent::Observe(obs.clone())),
            _ => match open.take() {
                Some((id, realized_s)) => events.push(TraceEvent::Resolve { id, realized_s }),
                None => events.push(TraceEvent::Observe(obs.clone())),
            },
        }
    }
    events
}

/// Concurrent vs. simulated throughput on identical traces.
fn runtime_throughput(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);

    let obs = obs_trace(&f, 2000);
    let mixed_n = 2000usize;

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(obs.len() as u64));

    let mut conc = ConcurrentFleet::new(
        t.clone(),
        &f.dataset,
        ConcurrentConfig {
            fleet: fleet_cfg(4),
            workers: None, // machine lane count — the number under test
        },
    );
    conc.seed_calibration(&f.split.val);
    group.bench_function("concurrent_obs_2k", |b| {
        b.iter(|| black_box(conc.run_trace(&obs).len()))
    });

    let mut sim = FleetServer::new(t.clone(), &f.dataset, fleet_cfg(4));
    sim.seed_calibration(&f.split.val);
    let mut t0 = 0.0f64;
    group.bench_function("simulated_obs_2k", |b| {
        b.iter(|| {
            let out = run_trace_simulated(&mut sim, t0, &obs);
            t0 += obs.len() as f64;
            black_box(out.len())
        })
    });

    group.throughput(Throughput::Elements(mixed_n as u64));
    let mut conc = ConcurrentFleet::new(
        t.clone(),
        &f.dataset,
        ConcurrentConfig {
            fleet: fleet_cfg(4),
            workers: None,
        },
    );
    conc.seed_calibration(&f.split.val);
    let mut id0 = 0u64;
    group.bench_function("concurrent_mixed_2k", |b| {
        b.iter(|| {
            let events = mixed_trace(&f, mixed_n, id0);
            id0 += mixed_n as u64;
            black_box(conc.run_trace(&events).len())
        })
    });

    let mut sim = FleetServer::new(t, &f.dataset, fleet_cfg(4));
    sim.seed_calibration(&f.split.val);
    let mut t0 = 0.0f64;
    let mut id0 = 0u64;
    group.bench_function("simulated_mixed_2k", |b| {
        b.iter(|| {
            let events = mixed_trace(&f, mixed_n, id0);
            id0 += mixed_n as u64;
            let out = run_trace_simulated(&mut sim, t0, &events);
            t0 += events.len() as f64;
            black_box(out.len())
        })
    });
    group.finish();
}

/// `SnapshotCell::load` latency percentiles, quiet and under a continuous
/// writer — recorded via `record_external` so the gate judges the tail.
fn snapshot_read_path(c: &mut Criterion) {
    // Keep a criterion-visible anchor so the group exists even when the
    // external records are the interesting output.
    let cell: Arc<SnapshotCell<Vec<u64>>> = Arc::new(SnapshotCell::with_value(Arc::new(
        (0..64u64).collect::<Vec<u64>>(),
    )));
    let mut group = c.benchmark_group("streaming");
    group.bench_function("snapshot_load", |b| {
        b.iter(|| black_box(cell.load().map(|v| v[0])))
    });
    group.finish();

    let percentiles = |mut lat: Vec<u64>| -> (f64, f64, f64, usize) {
        lat.sort_unstable();
        let pct = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize] as f64;
        let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
        let var = lat
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / lat.len().max(1) as f64;
        (pct(0.50), pct(0.99), var.sqrt(), lat.len())
    };
    let sample_loads = |cell: &SnapshotCell<Vec<u64>>, n: usize| -> Vec<u64> {
        (0..n)
            .map(|_| {
                let t = Instant::now();
                black_box(cell.load().map(|v| v[0]));
                t.elapsed().as_nanos() as u64
            })
            .collect()
    };

    const N: usize = 20_000;
    let (p50, p99, sd, n) = percentiles(sample_loads(&cell, N));
    criterion::record_external("streaming/snapshot_load_quiet_p50", p50, sd, n);
    criterion::record_external("streaming/snapshot_load_quiet_p99", p99, sd, n);

    // Same measurement with a writer continuously installing fresh values:
    // the seqlock-free read side must keep its tail.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cell = Arc::clone(&cell);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cell.store(Arc::new((i..i + 64).collect::<Vec<u64>>()));
                i = i.wrapping_add(1);
            }
        })
    };
    let (p50, p99, sd, n) = percentiles(sample_loads(&cell, N));
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    criterion::record_external("streaming/snapshot_load_contended_p50", p50, sd, n);
    criterion::record_external("streaming/snapshot_load_contended_p99", p99, sd, n);
}

/// Raw MPSC lane-queue cycle: 1000 pushes then one coalesced drain.
fn queue_throughput(c: &mut Criterion) {
    let queue: EventQueue<u64> = EventQueue::new();
    let mut batch = Vec::with_capacity(1000);
    let mut group = c.benchmark_group("streaming");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("queue_push_drain_1k", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                assert!(queue.push(i));
            }
            black_box(queue.try_drain_into(&mut batch))
        })
    });
    group.finish();
}

criterion_group!(
    streaming,
    runtime_throughput,
    snapshot_read_path,
    queue_throughput
);
criterion_main!(streaming);
