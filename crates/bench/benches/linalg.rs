//! Kernel-layer benches: the blocked/FMA-dispatched products against the
//! naive reference triple loops, at the exact shapes the Pitot training
//! step runs (tower batches over the small-testbed entity counts), plus the
//! elementwise activation maps and the slice primitives.
//!
//! Element throughput is reported as FLOP/s (each product element-step is a
//! multiply-add, counted as 2 FLOPs). `PITOT_BENCH_JSON=path` dumps the
//! figures machine-readably; `BENCH_linalg.json` in the repo root records
//! the before/after trajectory for this layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot_linalg::{reference, Matrix};
use pitot_nn::Activation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Training-step shapes: `(m, k, n)` for the platform tower at the small
/// testbed (220 platforms), the workload tower (63 workloads), and a
/// batch-512 slab.
const SHAPES: [(usize, usize, usize); 4] = [
    (220, 52, 128),
    (220, 128, 128),
    (220, 128, 160),
    (512, 128, 160),
];

fn products(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for (m, k, n) in SHAPES {
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let mut out = Matrix::zeros(m, n);
        let flops = (2 * m * k * n) as u64;

        let mut group = c.benchmark_group(&format!("matmul/{m}x{k}x{n}"));
        group
            .sample_size(20)
            .throughput(Throughput::Elements(flops));
        group.bench_function("blocked", |bch| bch.iter(|| a.matmul_into(&b, &mut out)));
        group.bench_function("reference", |bch| {
            bch.iter(|| black_box(reference::matmul(&a, &b)))
        });
        group.finish();

        let mut group = c.benchmark_group(&format!("matmul_transpose/{m}x{k}x{n}"));
        group
            .sample_size(20)
            .throughput(Throughput::Elements(flops));
        group.bench_function("blocked", |bch| {
            bch.iter(|| a.matmul_transpose_into(&bt, &mut out))
        });
        group.bench_function("reference", |bch| {
            bch.iter(|| black_box(reference::matmul_transpose(&a, &bt)))
        });
        group.finish();

        let mut group = c.benchmark_group(&format!("transpose_matmul/{m}x{k}x{n}"));
        group
            .sample_size(20)
            .throughput(Throughput::Elements(flops));
        group.bench_function("blocked", |bch| {
            bch.iter(|| at.transpose_matmul_into(&b, &mut out))
        });
        group.bench_function("reference", |bch| {
            bch.iter(|| black_box(reference::transpose_matmul(&at, &b)))
        });
        group.finish();
    }
}

fn elementwise(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let x = Matrix::randn(220, 128, &mut rng);
    let mut buf = x.clone();
    let elems = (220 * 128) as u64;

    let mut group = c.benchmark_group("elementwise/220x128");
    group
        .sample_size(20)
        .throughput(Throughput::Elements(elems));
    group.bench_function("gelu_inplace", |bch| {
        bch.iter(|| {
            buf.copy_from(&x);
            Activation::Gelu.apply_matrix_inplace(&mut buf);
        })
    });
    group.bench_function("gelu_backward_inplace", |bch| {
        bch.iter(|| {
            buf.copy_from(&x);
            Activation::Gelu.backward_matrix_inplace(&x, &mut buf);
        })
    });
    group.bench_function("map_allocating", |bch| {
        bch.iter(|| black_box(x.map(|v| v * 1.5 + 0.1)))
    });
    group.finish();
}

fn primitives(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let a = Matrix::randn(1, 128, &mut rng);
    let b = Matrix::randn(1, 128, &mut rng);
    let mut y = vec![0.0f32; 128];

    let mut group = c.benchmark_group("primitives/128");
    group.sample_size(20).throughput(Throughput::Elements(256));
    group.bench_function("dot", |bch| {
        bch.iter(|| black_box(pitot_linalg::dot(a.row(0), b.row(0))))
    });
    group.bench_function("axpy", |bch| {
        bch.iter(|| pitot_linalg::axpy_slice(0.5, a.row(0), &mut y))
    });
    group.finish();
}

criterion_group!(linalg, products, elementwise, primitives);
criterion_main!(linalg);
