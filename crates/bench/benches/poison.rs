//! Trust-layer cost: ingest guarding, summary verification, and guarded
//! serving under active poison.
//!
//! The fail-noisy story only holds if the guards are cheap enough to
//! leave on in production — they sit on the per-observation serving path
//! and on every merge tick. This bench records:
//!
//! - `poison/guard_screen_2000`: 2000 observations (~30% heavy downward
//!   outliers) through a guarded `PitotServer` — finite/bounds validation
//!   plus the MAD outlier screen and quarantine bookkeeping on every
//!   ingest;
//! - `poison/summary_verify_4x256`: integrity verification (per-segment
//!   checksums, sortedness, cardinality) of 4 replica summaries holding
//!   256-score windows — what the coordinator pays per merge tick before
//!   absorbing anything;
//! - `poison/guarded_tick_overhead`: a full guarded `FleetServer` event
//!   (deadline query + resolve + observation) under the complete
//!   data-fault schedule (corruption, outlier bursts, replay/skew, one
//!   Byzantine replica) — the end-to-end price of serving through an
//!   active poisoning incident.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::{MergeableWindow, WindowedScores};
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, Event, FaultPlan, FleetConfig, FleetServer, PitotServer,
    ServeConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// A replica window of `n` synthetic scores over `n_heads` heads and 4
/// pools.
fn replica_window(seed: u64, n: usize, n_heads: usize) -> WindowedScores {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = WindowedScores::new(n, n_heads);
    for i in 0..n {
        let preds: Vec<f32> = (0..n_heads).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = rng.gen_range(-1.0f32..1.5);
        w.push(&preds, target, i % 4);
    }
    w
}

/// Per-ingest cost of the guard: validation + MAD screen + quarantine
/// bookkeeping over a poisoned stream.
fn guard_screen(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut serve = ServeConfig::guarded(0.1);
    serve.window = 256;
    let mut server = PitotServer::new(t, f.dataset.clone(), serve);
    server.seed_calibration(&f.split.val);

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let events: Vec<_> = (0..2000)
        .map(|i| {
            let mut o = f.dataset.observations[f.split.test[i % f.split.test.len()]].clone();
            if rng.gen_bool(0.3) {
                o.runtime_s *= (-12.0f32).exp();
            }
            o
        })
        .collect();

    let mut t0 = 0.0f64;
    let mut group = c.benchmark_group("poison");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("guard_screen_2000", |b| {
        b.iter(|| {
            let mut quarantined = 0usize;
            for (dt, o) in events.iter().enumerate() {
                let resp = server.on_event(t0 + dt as f64, Event::Observe(o.clone()));
                quarantined += usize::from(resp.quarantined.is_some());
            }
            t0 += events.len() as f64;
            black_box(quarantined)
        })
    });
    group.finish();
}

/// Integrity verification of every replica summary ahead of a merge tick.
fn summary_verify(c: &mut Criterion) {
    let views: Vec<MergeableWindow> = (0..4)
        .map(|r| MergeableWindow::snapshot(r, &replica_window(400 + r, 256, 5)))
        .collect();

    let mut group = c.benchmark_group("poison");
    group.bench_function("summary_verify_4x256", |b| {
        b.iter(|| {
            let ok = views.iter().filter(|v| v.verify().is_ok()).count();
            black_box(ok)
        })
    });
    group.finish();
}

/// Per-event overhead of the whole trust layer under active poison: a
/// guarded 3-replica fleet under the full data-fault schedule, 2000 full
/// events (deadline query + resolve + observation, merge every 32).
fn guarded_tick_overhead(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut serve = ServeConfig::guarded(0.1);
    serve.window = 256;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 32,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let plan = FaultPlan::none(0x0009_0150_5EED)
        .corrupt_observations(0.05)
        .outlier_bursts(0.25, -12.0, 8)
        .replay_summaries(0.15)
        .skew_clocks(0.10)
        .byzantine_replica(1, 500);
    let mut fleet = FleetServer::with_faults(t, &f.dataset, cfg, plan);
    fleet.seed_calibration(&f.split.val);

    let events: Vec<usize> = (0..2000)
        .map(|t| f.split.test[t % f.split.test.len()])
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let deadlines: Vec<f64> = events
        .iter()
        .map(|&i| f64::from(f.dataset.observations[i].runtime_s) * rng.gen_range(0.75..3.0))
        .collect();

    let mut t0 = 0.0f64;
    let mut next_id = 0u64;
    let mut group = c.benchmark_group("poison");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("guarded_tick_overhead", |b| {
        b.iter(|| {
            let mut admitted = 0usize;
            for (dt, (&i, &deadline)) in events.iter().zip(&deadlines).enumerate() {
                let o = f.dataset.observations[i].clone();
                let id = next_id;
                next_id += 1;
                let out = fleet.deadline_query(DeadlineQuery {
                    id,
                    workload: o.workload,
                    platform: o.platform,
                    interferers: o.interferers.clone(),
                    deadline_s: deadline,
                });
                fleet.resolve(id, f64::from(o.runtime_s));
                admitted += usize::from(out.decision.admitted());
                fleet.observe(t0 + dt as f64, o);
            }
            t0 += events.len() as f64;
            black_box(admitted)
        })
    });
    group.finish();
}

criterion_group!(poison, guard_screen, summary_verify, guarded_tick_overhead);
criterion_main!(poison);
