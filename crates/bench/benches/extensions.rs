//! Benches for the extension subsystems: orchestration, conformal variants,
//! analytic baselines, optimizers, and embedding analysis.
//!
//! These complement `figures.rs` (one group per paper table/figure) with the
//! cost-relevant cores of the extension experiments in DESIGN.md §4b.

use criterion::{criterion_group, criterion_main, Criterion};
use pitot::{train, Objective, OptimizerKind, PitotConfig};
use pitot_analysis::{silhouette_score, Pca};
use pitot_baselines::{ImcConfig, InductiveMc, KnnCollaborative, KnnConfig};
use pitot_bench::Fixture;
use pitot_conformal::{
    head_spread, HeadSelection, MondrianConformal, PooledConformal, PredictionSet, ScaledConformal,
    TwoSidedCqr,
};
use pitot_orchestrator::{BaselinePolicy, ClusterSim, JobStream, OraclePredictor, PitotPredictor};
use std::hint::black_box;

fn quantile_model(f: &Fixture) -> pitot::TrainedPitot {
    let mut cfg = PitotConfig::tiny();
    cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
    cfg.steps = 120;
    cfg.eval_every = 60;
    train(&f.dataset, &f.split, &cfg)
}

/// Full orchestration episode: stream generation + policy placement +
/// rate-based interference simulation on a 12-platform site.
fn orchestration_episode(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = quantile_model(&f);
    let bounds = trained.fit_bounds(&f.dataset, 0.1, HeadSelection::TightestOnValidation);
    let pred = PitotPredictor::with_bounds(&trained, &f.dataset, bounds);
    let n = f.testbed.platforms().len();
    let site: Vec<usize> = (0..n).step_by(n.div_ceil(12)).collect();
    let jobs = JobStream::generate_with_deadlines(&f.testbed, 100, 0.02, (1.3, 3.0), 0);
    c.bench_function("ext_orchestration_episode", |b| {
        b.iter(|| {
            let report = ClusterSim::new(&f.testbed).restrict_to(&site).run(
                black_box(&jobs),
                &mut BaselinePolicy::deadline_aware(),
                &pred,
            );
            black_box(report.violations)
        })
    });
}

/// One placement decision: the per-job cost an orchestrator actually pays.
fn placement_decision(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = quantile_model(&f);
    let pred = PitotPredictor::new(&trained, &f.dataset);
    let oracle = OraclePredictor::new(&f.testbed);
    c.bench_function("ext_bound_query_pitot", |b| {
        b.iter(|| {
            black_box(pitot_orchestrator::RuntimePredictor::bound_s(
                &pred,
                black_box(3),
                black_box(7),
                black_box(&[1, 2]),
            ))
        })
    });
    c.bench_function("ext_bound_query_oracle_mc", |b| {
        b.iter(|| {
            black_box(pitot_orchestrator::RuntimePredictor::bound_s(
                &oracle,
                black_box(3),
                black_box(7),
                black_box(&[1, 2]),
            ))
        })
    });
}

/// Conformal calibration strategies over identical prediction sets.
fn conformal_variant_fits(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = quantile_model(&f);
    let preds = trained.predict_log_runtime(&f.dataset, &f.split.val);
    let targets: Vec<f32> = f
        .split
        .val
        .iter()
        .map(|&i| f.dataset.observations[i].log_runtime())
        .collect();
    let pools: Vec<usize> = f
        .split
        .val
        .iter()
        .map(|&i| f.dataset.observations[i].interferers.len())
        .collect();
    let groups: Vec<u64> = pools.iter().map(|&p| p as u64).collect();
    let xis = [0.5f32, 0.8, 0.9, 0.95];

    c.bench_function("ext_fit_pooled_cqr", |b| {
        b.iter(|| {
            let set = PredictionSet {
                predictions: black_box(&preds),
                targets_log: &targets,
                pools: &pools,
            };
            black_box(PooledConformal::fit(
                &set,
                &set,
                &xis,
                HeadSelection::TightestOnValidation,
                0.1,
            ))
        })
    });
    c.bench_function("ext_fit_scaled_conformal", |b| {
        b.iter(|| {
            let disp = head_spread(&preds[0], &preds[2]);
            black_box(ScaledConformal::fit(
                black_box(&preds[0]),
                &disp,
                &targets,
                0.1,
            ))
        })
    });
    c.bench_function("ext_fit_mondrian", |b| {
        b.iter(|| {
            black_box(MondrianConformal::fit(
                black_box(&preds[0]),
                &targets,
                &groups,
                0.1,
            ))
        })
    });
    c.bench_function("ext_fit_two_sided_cqr", |b| {
        b.iter(|| {
            black_box(TwoSidedCqr::fit(
                black_box(&preds[0]),
                &preds[2],
                &targets,
                0.1,
            ))
        })
    });
}

/// Analytic baselines: training-free kNN fit and the ALS inductive MC solve.
fn analytic_baselines(c: &mut Criterion) {
    let f = Fixture::small();
    c.bench_function("ext_fit_knn_cf", |b| {
        b.iter(|| {
            black_box(KnnCollaborative::fit(
                black_box(&f.dataset),
                &f.split,
                &KnnConfig {
                    k: 5,
                    min_overlap: 5,
                },
            ))
        })
    });
    let mut imc_cfg = ImcConfig::tiny();
    imc_cfg.max_obs = 2_000;
    c.bench_function("ext_fit_inductive_mc", |b| {
        b.iter(|| black_box(InductiveMc::fit(black_box(&f.dataset), &f.split, &imc_cfg)))
    });
}

/// Optimizer step cost at Pitot-sized parameter counts.
fn optimizer_steps(c: &mut Criterion) {
    let n = 111_200; // the paper's parameter count
    let grads = [vec![0.01f32; n]];
    let grad_refs: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
    for kind in [
        OptimizerKind::AdaMax,
        OptimizerKind::Adam,
        OptimizerKind::SgdMomentum,
    ] {
        let mut params = [vec![0.5f32; n]];
        let mut opt = kind.build(1e-3);
        c.bench_function(format!("ext_optimizer_step_{}", kind.name()), |b| {
            b.iter(|| {
                let mut refs: Vec<&mut [f32]> =
                    params.iter_mut().map(|p| p.as_mut_slice()).collect();
                opt.step(&mut refs, &grad_refs);
            })
        });
    }
}

/// Embedding analysis: PCA spectrum and silhouette scoring of workload
/// embeddings (the quantitative Fig 7 companions).
fn embedding_analysis(c: &mut Criterion) {
    let f = Fixture::small();
    let trained = quantile_model(&f);
    let emb = trained.model.workload_embeddings(&f.dataset, 0);
    let labels: Vec<usize> = {
        let mut uniq: Vec<&String> = Vec::new();
        f.dataset
            .workload_suites
            .iter()
            .map(|s| {
                if let Some(pos) = uniq.iter().position(|u| *u == s) {
                    pos
                } else {
                    uniq.push(s);
                    uniq.len() - 1
                }
            })
            .collect()
    };
    c.bench_function("ext_pca_embeddings", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&emb), 4)))
    });
    c.bench_function("ext_silhouette_embeddings", |b| {
        b.iter(|| black_box(silhouette_score(black_box(&emb), &labels)))
    });
}

criterion_group!(
    name = extensions;
    config = Criterion::default().sample_size(10);
    targets =
        orchestration_episode,
        placement_decision,
        conformal_variant_fits,
        analytic_baselines,
        optimizer_steps,
        embedding_analysis,
);
criterion_main!(extensions);
