//! Fleet-layer cost: coordinator merge rounds, admission decisions, and
//! the full sharded serving loop.
//!
//! The multi-replica story only holds if the coordinator is cheap: a merge
//! round is `O(union)` linear merges of pre-sorted runs plus a rank-lookup
//! fit — no re-sorting, no raw observations on the wire. This bench
//! records:
//!
//! - `fleet/merge_round_4x256`: snapshot 4 replica windows of 256 scores
//!   each, merge the summaries, lower to a `ScoredCalibration`, and fit the
//!   fleet `PooledConformal` — one full coordinator round;
//! - `fleet/snapshot_256`: one replica's window summary alone (the per-site
//!   cost of speaking the merge protocol);
//! - `fleet/admission_10k`: 10k decide + resolve cycles through the
//!   SLO admission queue (pure control-plane overhead per query);
//! - `fleet/stream_2k_events`: a 3-replica `FleetServer` consuming 2000
//!   events — deadline query + admission + resolve + observation each —
//!   with a merge round every 32 observations (events/sec headline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::{
    HeadSelection, MergeableWindow, PooledConformal, PredictionSet, WindowedScores,
};
use pitot_serve::{
    AdmissionConfig, AdmissionQueue, DeadlineQuery, FleetConfig, FleetServer, ServeConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// A replica window of `n` synthetic scores over 5 heads and 4 pools.
fn replica_window(seed: u64, n: usize) -> WindowedScores {
    let n_heads = 5;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut w = WindowedScores::new(n, n_heads);
    for i in 0..n {
        let preds: Vec<f32> = (0..n_heads).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = rng.gen_range(-1.0f32..1.5);
        w.push(&preds, target, i % 4);
    }
    w
}

/// Coordinator merge round and per-replica snapshot cost.
fn merge_round(c: &mut Criterion) {
    let replicas: Vec<WindowedScores> = (0..4).map(|r| replica_window(100 + r, 256)).collect();
    let xis = vec![0.5f32, 0.8, 0.9, 0.95, 0.99];
    let empty_preds: Vec<Vec<f32>> = vec![Vec::new(); 5];

    let mut group = c.benchmark_group("fleet");
    group.bench_function("snapshot_256", |b| {
        b.iter(|| black_box(MergeableWindow::snapshot(0, &replicas[0])))
    });
    group.bench_function("merge_round_4x256", |b| {
        b.iter(|| {
            let mut merged = MergeableWindow::empty(5);
            for (r, w) in replicas.iter().enumerate() {
                merged.absorb(&MergeableWindow::snapshot(r as u64, w));
            }
            let scored = merged.to_scored();
            let fit = PooledConformal::fit_scored(
                &scored,
                &PredictionSet {
                    predictions: &empty_preds,
                    targets_log: &[],
                    pools: &[],
                },
                &xis,
                HeadSelection::NaiveXi,
                0.1,
            );
            black_box(fit)
        })
    });
    group.finish();
}

/// Admission queue decide + resolve throughput.
fn admission_throughput(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let cases: Vec<(f64, f64, f64)> = (0..10_000)
        .map(|_| {
            let bound = rng.gen_range(0.1f64..4.0);
            let deadline = rng.gen_range(0.1f64..4.0);
            let realized = rng.gen_range(0.05f64..4.5);
            (bound, deadline, realized)
        })
        .collect();
    let mut group = c.benchmark_group("fleet");
    group.throughput(Throughput::Elements(cases.len() as u64));
    group.bench_function("admission_10k", |b| {
        b.iter(|| {
            let mut q = AdmissionQueue::new(AdmissionConfig::default());
            for (i, &(bound, deadline, realized)) in cases.iter().enumerate() {
                q.decide(i as u64, bound, deadline);
                q.resolve(i as u64, realized);
            }
            black_box(q.stats().decisions())
        })
    });
    group.finish();
}

/// Events/sec through a 3-replica fleet: every event is a deadline query +
/// admission + resolution + observation, with a merge round every 32
/// observations.
fn fleet_stream(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut serve = ServeConfig::at(0.1);
    serve.window = 256;
    serve.microbatch = 16;
    let cfg = FleetConfig {
        serve,
        replicas: 3,
        merge_every: 32,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    };
    let mut fleet = FleetServer::new(t, &f.dataset, cfg);
    fleet.seed_calibration(&f.split.val);

    let events: Vec<usize> = (0..2000)
        .map(|t| f.split.test[t % f.split.test.len()])
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let deadlines: Vec<f64> = events
        .iter()
        .map(|&i| f64::from(f.dataset.observations[i].runtime_s) * rng.gen_range(0.75..3.0))
        .collect();

    // The fleet lives across iterations (replica clocks stay monotone),
    // and query ids must never repeat.
    let mut t0 = 0.0f64;
    let mut next_id = 0u64;
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("stream_2k_events", |b| {
        b.iter(|| {
            let mut admitted = 0usize;
            for (dt, (&i, &deadline)) in events.iter().zip(&deadlines).enumerate() {
                let o = f.dataset.observations[i].clone();
                let id = next_id;
                next_id += 1;
                let out = fleet.deadline_query(DeadlineQuery {
                    id,
                    workload: o.workload,
                    platform: o.platform,
                    interferers: o.interferers.clone(),
                    deadline_s: deadline,
                });
                fleet.resolve(id, f64::from(o.runtime_s));
                admitted += usize::from(out.decision.admitted());
                fleet.observe(t0 + dt as f64, o);
            }
            t0 += events.len() as f64;
            black_box(admitted)
        })
    });
    group.finish();
}

criterion_group!(fleet, merge_round, admission_throughput, fleet_stream);
criterion_main!(fleet);
