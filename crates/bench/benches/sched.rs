//! Placement-layer cost: what one risk-scored decision costs, and what the
//! whole conformal closed loop sustains.
//!
//! `ConformalGreedy` reads the model twice per resident per candidate (the
//! with/without interference delta) plus once for the arriving job, so a
//! decision on a loaded site is a few dozen prediction passes — this bench
//! pins that cost so the policy stays viable at per-arrival rates:
//!
//! - `sched/place_conformal_12x3`: one `ConformalGreedy` decision over a
//!   12-platform view with 3 residents each, against the trained model's
//!   conformal bounds (the per-arrival control-plane cost);
//! - `sched/place_point_12x3`: the same scan reading the point estimate
//!   (isolates the bound head's overhead);
//! - `sched/closed_loop_200`: 200 jobs through `ClusterSim` with a live
//!   `PitotServer` behind `ServingPredictor` — every completion streams
//!   back and recalibrates, so the elem/s is the jobs/sec headline for the
//!   full conformal scheduling loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, TrainedPitot};
use pitot_bench::Fixture;
use pitot_conformal::HeadSelection;
use pitot_orchestrator::{
    ClusterSim, ClusterView, Job, JobStream, PitotPredictor, PlacementPolicy, PlatformLoad,
};
use pitot_sched::{ConformalGreedy, PointGreedy};
use pitot_serve::{Event, PitotServer, ServeConfig, ServingPredictor};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn trained(f: &Fixture) -> TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// A loaded 12-platform view: 3 residents per platform, one free slot.
fn loaded_view(n_workloads: usize) -> ClusterView {
    ClusterView {
        now_s: 0.0,
        platforms: (0..12)
            .map(|p| PlatformLoad {
                running: (0..3).map(|r| ((p * 3 + r) % n_workloads) as u32).collect(),
                remaining_frac: vec![0.8, 0.5, 0.2],
                due_s: vec![1e9; 3],
                free_slots: 1,
            })
            .collect(),
    }
}

/// Per-decision cost of the risk scan against the real model.
fn place_decision(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let bounds = t.fit_bounds(&f.dataset, 0.1, HeadSelection::TightestOnValidation);
    let pred = PitotPredictor::with_bounds(&t, &f.dataset, bounds);
    let view = loaded_view(f.dataset.n_workloads);
    let job = Job {
        id: 0,
        workload: 0,
        arrival_s: 0.0,
        deadline_s: 1e9,
    };

    let mut group = c.benchmark_group("sched");
    group.bench_function("place_conformal_12x3", |b| {
        let mut policy = ConformalGreedy::new();
        b.iter(|| black_box(policy.place(&job, &view, &pred)))
    });
    group.bench_function("place_point_12x3", |b| {
        let mut policy = PointGreedy::new();
        b.iter(|| black_box(policy.place(&job, &view, &pred)))
    });
    group.finish();
}

/// Jobs/sec through the full conformal scheduling loop: placement reads
/// live calibrated bounds, completions stream back as observations.
fn closed_loop(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let jobs = JobStream::generate_with_deadlines(&f.testbed, 200, 0.05, (1.3, 3.0), 7);
    let site: Vec<usize> = (0..6).collect();

    let mut group = c.benchmark_group("sched");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.jobs().len() as u64));
    group.bench_function("closed_loop_200", |b| {
        b.iter(|| {
            let mut serve_cfg = ServeConfig::at(0.1);
            serve_cfg.window = 256;
            let mut server = PitotServer::new(t.clone(), f.dataset.clone(), serve_cfg);
            server.seed_calibration(&f.split.val);
            let server = Rc::new(RefCell::new(server));
            let predictor = ServingPredictor::new(Rc::clone(&server));
            let mut policy = ConformalGreedy::new();
            let report = ClusterSim::new(&f.testbed)
                .restrict_to(&site)
                .run_with_observer(&jobs, &mut policy, &predictor, &mut |obs, now| {
                    let mut srv = server.borrow_mut();
                    let at = now.max(srv.now_s());
                    srv.on_event(at, Event::Observe(obs));
                });
            black_box(report.completed)
        })
    });
    group.finish();
}

criterion_group!(sched, place_decision, closed_loop);
criterion_main!(sched);
