//! Training and inference cost benches (paper Sec 3.6: "a single inference
//! call taking ≈400 kFLOPs, and training taking only 12.1 seconds" on a GPU;
//! here we measure the same quantities on one CPU core).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig, PitotModel};
use pitot_bench::Fixture;
use std::hint::black_box;

/// Cost of one full optimizer step at the paper architecture
/// (2×128 towers, r=32, batch 512/mode — measured as steps/second).
fn training_throughput(c: &mut Criterion) {
    let f = Fixture::small();
    let mut group = c.benchmark_group("training_throughput");
    group.sample_size(10);
    for (name, cfg) in [
        (
            "paper_arch",
            PitotConfig {
                steps: 10,
                eval_every: 10,
                ..PitotConfig::paper()
            },
        ),
        (
            "fast_arch",
            PitotConfig {
                steps: 10,
                eval_every: 10,
                ..PitotConfig::fast()
            },
        ),
    ] {
        group.throughput(Throughput::Elements(cfg.steps as u64));
        group.bench_function(name, |b| {
            b.iter(|| black_box(pitot::train(&f.dataset, &f.split, &cfg).final_val_loss()))
        });
    }
    group.finish();
}

/// Single-observation inference latency (paper: ≈400 kFLOPs/call). The
/// entity towers are evaluated once and reused, as in deployment.
fn inference_latency(c: &mut Criterion) {
    let f = Fixture::small();
    let cfg = PitotConfig {
        steps: 20,
        eval_every: 20,
        ..PitotConfig::paper()
    };
    let trained = pitot::train(&f.dataset, &f.split, &cfg);
    let (w, p_full) = trained.model.infer_towers(&f.dataset);
    let idx = [f.split.test[0]];
    c.bench_function("inference_single_observation", |b| {
        b.iter(|| black_box(trained.model.predict(&w, &p_full, &f.dataset, &idx)))
    });
    // Tower refresh cost (recomputing all entity embeddings, the paper's
    // per-step dense pass).
    c.bench_function("inference_tower_refresh", |b| {
        b.iter(|| black_box(trained.model.infer_towers(&f.dataset)))
    });
}

/// Quantile heads widen only the workload tower; verify the advertised
/// cost asymmetry (Sec 3.5 "Model Architecture").
fn quantile_head_overhead(c: &mut Criterion) {
    let f = Fixture::small();
    let mut group = c.benchmark_group("quantile_head_overhead");
    group.sample_size(20);
    for (name, objective) in [
        ("single_head", Objective::Squared),
        ("eight_heads", Objective::paper_quantiles()),
    ] {
        let cfg = PitotConfig {
            objective,
            ..PitotConfig::paper()
        };
        let model = PitotModel::new(&cfg, &f.dataset);
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.infer_towers(&f.dataset)))
        });
    }
    group.finish();
}

criterion_group!(
    training,
    training_throughput,
    inference_latency,
    quantile_head_overhead
);
criterion_main!(training);
