//! Post-training pipeline cost: everything an experiment replicate runs
//! *after* the optimizer finishes — batched prediction over the test set,
//! conformal calibration across a miscoverage sweep, and coverage/margin
//! evaluation. The paper's headline claim is cheap, well-calibrated
//! uncertainty; this bench tracks the cost of the "well-calibrated" half.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pitot::{Objective, PitotConfig};
use pitot_bench::Fixture;
use pitot_conformal::HeadSelection;
use pitot_experiments::uncertainty::{EvalSet, PredictorCalibration};
use pitot_experiments::PitotPredictor;
use std::hint::black_box;

/// Miscoverage sweep matching the fast experiment harness.
const EPSILONS: [f32; 5] = [0.10, 0.08, 0.06, 0.04, 0.02];

fn trained(f: &Fixture) -> pitot::TrainedPitot {
    let cfg = PitotConfig {
        objective: Objective::paper_quantiles(),
        steps: 60,
        eval_every: 60,
        ..PitotConfig::paper()
    };
    pitot::train(&f.dataset, &f.split, &cfg)
}

/// Batched per-head prediction over a large test slice (the input to every
/// downstream metric).
fn predict_test(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let idx: Vec<usize> = f.split.test.iter().copied().take(4000).collect();
    let mut group = c.benchmark_group("posttrain");
    group.sample_size(10);
    group.throughput(Throughput::Elements(idx.len() as u64));
    group.bench_function("predict_test_4k", |b| {
        b.iter(|| black_box(t.predict_log_runtime(&f.dataset, &idx)))
    });
    group.finish();
}

/// Conformal calibration across the epsilon sweep (the per-replicate cost
/// of every uncertainty figure): the holdout is predicted and scored once,
/// each ε is a rank lookup + head selection.
fn calibrate_sweep(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let mut group = c.benchmark_group("posttrain");
    group.sample_size(10);
    group.bench_function("calibrate_5eps", |b| {
        b.iter(|| {
            let calib = t.calibration(&f.dataset);
            for &eps in &EPSILONS {
                black_box(calib.fit(eps, HeadSelection::TightestOnValidation));
            }
        })
    });
    group.finish();
}

/// The full post-training phase of one experiment replicate: calibrate at
/// every epsilon and measure margin + coverage on the test set.
fn full_replicate(c: &mut Criterion) {
    let f = Fixture::small();
    let t = trained(&f);
    let idx: Vec<usize> = f.split.test.iter().copied().take(4000).collect();
    let split = f.split.clone();
    let model = PitotPredictor(t);
    let mut group = c.benchmark_group("posttrain");
    group.sample_size(10);
    group.bench_function("predict_calibrate_eval", |b| {
        b.iter(|| {
            let calib = PredictorCalibration::prepare(&model, &f.dataset, &split);
            let eval = EvalSet::prepare(&model, &f.dataset, &idx);
            let mut acc = 0.0f32;
            for &eps in &EPSILONS {
                let conformal = calib.fit(eps, HeadSelection::TightestOnValidation);
                acc += eval.margin(&conformal);
                acc += eval.coverage(&conformal);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Warm-start fine-tune cost (the online-update extension): dominated today
/// by the per-`train()` fixed setup that `TrainContext` amortizes.
fn warm_start(c: &mut Criterion) {
    let f = Fixture::small();
    let cfg = PitotConfig {
        steps: 40,
        eval_every: 40,
        ..PitotConfig::paper()
    };
    let t = pitot::train(&f.dataset, &f.split, &cfg);
    let mut group = c.benchmark_group("posttrain");
    group.sample_size(10);
    group.bench_function("fine_tune_10_steps", |b| {
        b.iter(|| black_box(t.fine_tune(&f.dataset, &f.split, 10).final_val_loss()))
    });
    group.finish();
}

criterion_group!(
    pipeline,
    predict_test,
    calibrate_sweep,
    full_replicate,
    warm_start
);
criterion_main!(pipeline);
