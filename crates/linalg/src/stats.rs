//! Small statistics helpers shared by evaluation and conformal code.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    // Accumulate in f64: evaluation sets reach ~4e5 entries and f32
    // accumulation loses ~3 digits at that length.
    let s: f64 = xs.iter().map(|&x| x as f64).sum();
    (s / xs.len() as f64) as f32
}

/// Unbiased sample variance; `0.0` when fewer than two samples.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs) as f64;
    let s: f64 = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum();
    (s / (xs.len() - 1) as f64) as f32
}

/// Standard error of the mean; `0.0` when fewer than two samples.
pub fn stderr_of_mean(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    (variance(xs) / xs.len() as f32).sqrt()
}

/// Linear-interpolation percentile (`p` in `[0, 1]`).
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = p * (sorted.len() - 1) as f32;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The "higher" empirical quantile used by split conformal prediction:
/// the `⌈(n+1)·p⌉`-th smallest value (1-indexed), clamped to the sample max.
///
/// With exchangeable data, using this value as a threshold guarantees
/// coverage at least `p` (Vovk et al.); see `pitot-conformal` for the
/// coverage property tests.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile_higher(xs: &[f32], p: f32) -> f32 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_higher_sorted(&sorted, p)
}

/// [`quantile_higher`] over an already-sorted slice: no copy, no re-sort.
///
/// Calibration sweeps that evaluate many miscoverage levels over one score
/// set sort once and look ranks up through this entry point.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p ∉ [0, 1]`; debug-asserts sortedness.
pub fn quantile_higher_sorted(sorted: &[f32], p: f32) -> f32 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "quantile level {p} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1] || w[1].is_nan()),
        "quantile_higher_sorted requires ascending input"
    );
    let n = sorted.len();
    let k = (((n + 1) as f32) * p).ceil() as usize; // 1-indexed rank
    let k = k.clamp(1, n);
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-6);
        assert!(stderr_of_mean(&xs) > 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), 0.0);
        assert_eq!(percentile(&xs, 0.5), 5.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
    }

    #[test]
    fn quantile_higher_is_conservative() {
        // n = 4, p = 0.5 → rank ceil(5*0.5)=3 → third smallest.
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_higher(&xs, 0.5), 3.0);
        // p = 1 clamps to max.
        assert_eq!(quantile_higher(&xs, 1.0), 4.0);
    }

    proptest! {
        #[test]
        fn quantile_higher_at_least_fraction(p in 0.05f32..0.95, mut xs in proptest::collection::vec(-100.0f32..100.0, 5..200)) {
            let q = quantile_higher(&xs, p);
            let below = xs.iter().filter(|&&x| x <= q).count();
            // At least ceil((n+1)p) of n samples are <= q (minus the +1 slack).
            prop_assert!(below as f32 >= (xs.len() as f32 * p).floor());
            xs.sort_by(|a, b| a.total_cmp(b));
            prop_assert!(q <= *xs.last().unwrap());
        }
    }
}
