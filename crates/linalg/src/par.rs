//! A tiny scoped thread pool for row-parallel kernels.
//!
//! Hand-rolled on `std::thread` because the build environment has no
//! registry access (no rayon). Worker threads are spawned lazily on first
//! use and park on a condvar between jobs, so a `parallel_for` call costs a
//! lock + notify rather than a thread spawn.
//!
//! Pool size is `PITOT_THREADS` when set (values `0` and `1` both disable
//! parallelism) and `std::thread::available_parallelism()` otherwise. The
//! size is read once, at first use.
//!
//! Kernels built on this module split work by *output rows*, and every
//! output element is accumulated by exactly one thread in the same order the
//! serial kernel would use — results are therefore bitwise identical across
//! thread counts, which keeps the workspace's fixed-seed training tests
//! deterministic no matter how CI is configured.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

struct Pool {
    /// Total parallelism including the calling thread.
    threads: usize,
    state: &'static State,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let state: &'static State = Box::leak(Box::new(State {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        }));
        // The calling thread participates, so spawn `threads − 1` workers.
        for i in 1..threads {
            std::thread::Builder::new()
                .name(format!("pitot-linalg-{i}"))
                .spawn(move || worker(state))
                .expect("spawning pool worker");
        }
        Pool { threads, state }
    })
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("PITOT_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => eprintln!("pitot-linalg: ignoring unparsable PITOT_THREADS={v:?}"),
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    /// Set inside pool workers so nested `parallel_for` calls run inline
    /// instead of deadlocking on a saturated pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn worker(state: &'static State) {
    IN_WORKER.with(|f| f.set(true));
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.job_ready.wait(queue).unwrap();
            }
        };
        // Jobs catch their own panics (see `parallel_for`), so a failing
        // kernel body never takes a worker down with it.
        job();
    }
}

/// Countdown latch: `parallel_for` blocks on it until every queued chunk has
/// run, which is what makes lending stack borrows to the workers sound.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn arrive(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

/// Number of threads the kernels may use (including the caller).
pub fn threads() -> usize {
    pool().threads
}

/// Runs `body` over disjoint sub-ranges of `0..total`, possibly in parallel.
///
/// `min_chunk` is the smallest range worth shipping to another thread; the
/// range is split into at most `threads()` chunks of at least that size, and
/// anything smaller runs inline on the caller. The caller always processes
/// the first chunk itself, so a pool of one thread never touches a lock.
///
/// # Panics
///
/// Propagates a panic from any chunk (after all chunks have finished, so no
/// borrow escapes).
pub fn parallel_for<F>(total: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if total == 0 {
        return;
    }
    if IN_WORKER.with(std::cell::Cell::get) {
        body(0..total);
        return;
    }
    let pool = pool();
    let max_chunks = total.div_ceil(min_chunk.max(1));
    let chunks = pool.threads.min(max_chunks).max(1);
    if chunks == 1 {
        body(0..total);
        return;
    }

    let latch = Latch::new(chunks - 1);
    let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;
    let per = total / chunks;
    let rem = total % chunks;
    let mut start = per + usize::from(rem > 0); // chunk 0 runs on the caller
    {
        let mut queue = pool.state.queue.lock().unwrap();
        for c in 1..chunks {
            let len = per + usize::from(c < rem);
            let range = start..start + len;
            start += len;
            let latch_ref = &latch;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(|| body_ref(range))).is_err() {
                    latch_ref.poisoned.store(true, Ordering::Release);
                }
                latch_ref.arrive();
            });
            // SAFETY: the job borrows `body` and `latch` from this stack
            // frame. We block on the latch below until every job has
            // finished, so the borrows never outlive the frame.
            let job: Job = unsafe { std::mem::transmute(job) };
            queue.push_back(job);
        }
    }
    pool.state.job_ready.notify_all();

    let own = catch_unwind(AssertUnwindSafe(|| body_ref(0..per + usize::from(rem > 0))));
    latch.wait();
    match own {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(()) if latch.poisoned.load(Ordering::Acquire) => {
            panic!("a pitot-linalg parallel kernel chunk panicked");
        }
        Ok(()) => {}
    }
}

/// Splits a flat row-major buffer into disjoint row-aligned chunks and runs
/// `body` over them, possibly in parallel.
///
/// `body(first_row, chunk)` receives the index of the chunk's first row and
/// a mutable window covering whole rows. This is the safe entry point other
/// crates use for row-parallel writes (batched prediction, score
/// computation) without touching `unsafe` themselves; every chunk covers a
/// disjoint window, so results are bitwise identical across `PITOT_THREADS`
/// whenever `body` computes rows independently.
///
/// # Panics
///
/// Panics if `row_width == 0` or the buffer length is not a whole number of
/// rows; propagates panics from `body`.
pub fn parallel_for_rows<F>(data: &mut [f32], row_width: usize, min_rows: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_width > 0, "row width must be positive");
    assert_eq!(
        data.len() % row_width,
        0,
        "buffer length {} is not a whole number of {row_width}-wide rows",
        data.len()
    );
    let total = data.len() / row_width;
    let ptr = SendPtr::new(data.as_mut_ptr());
    parallel_for(total, min_rows.max(1), |rows| {
        // SAFETY: `parallel_for` hands out disjoint row ranges, so each
        // chunk owns a disjoint window of the buffer.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                ptr.get().add(rows.start * row_width),
                rows.len() * row_width,
            )
        };
        body(rows.start, chunk);
    });
}

/// A raw pointer to a mutable slice that may be sent across the pool.
///
/// Used by kernels to hand each chunk its disjoint window of the output
/// buffer; soundness rests on the row ranges from [`parallel_for`] never
/// overlapping.
pub(crate) struct SendPtr(*mut f32);

// SAFETY: each chunk dereferences a disjoint sub-range of the allocation.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    pub(crate) fn new(ptr: *mut f32) -> Self {
        Self(ptr)
    }

    /// The wrapped pointer. A method (not field access) so closures capture
    /// the `Sync` wrapper rather than the raw pointer.
    pub(crate) fn get(&self) -> *mut f32 {
        self.0
    }
}

/// A multi-producer single-consumer event queue with blocking batch drain.
///
/// Hand-rolled on `Mutex<VecDeque>` + `Condvar` in the same spirit as the
/// pool above (no registry access, no crossbeam). Producers [`push`] from
/// any thread; the consumer parks in [`drain_into`] until at least one item
/// (or [`close`]) arrives, then takes *everything* pending in one swap —
/// that batch drain is the micro-batch coalescing hook the concurrent
/// serving runtime builds on: the deeper the backlog, the bigger the batch
/// handed to the row-parallel predict path.
///
/// Per-producer FIFO holds trivially (a single mutex orders all pushes),
/// which is the property the serving twin-equivalence proofs lean on.
///
/// [`push`]: EventQueue::push
/// [`close`]: EventQueue::close
/// [`drain_into`]: EventQueue::drain_into
pub struct EventQueue<T> {
    inner: Mutex<EventQueueInner<T>>,
    ready: Condvar,
}

struct EventQueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(EventQueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`; returns `false` (dropping the item) if the queue is
    /// closed.
    pub fn push(&self, item: T) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Closes the queue: future pushes are refused, and a parked consumer
    /// wakes to drain whatever is left.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Parks until at least one item is pending (or the queue is closed),
    /// then moves *all* pending items into `batch` (which is cleared first).
    ///
    /// Returns `false` iff the queue is closed and empty — the consumer's
    /// shutdown signal.
    pub fn drain_into(&self, batch: &mut Vec<T>) -> bool {
        batch.clear();
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                batch.extend(inner.items.drain(..));
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking variant of [`drain_into`](Self::drain_into): moves
    /// whatever is pending (possibly nothing) and returns the count.
    pub fn try_drain_into(&self, batch: &mut Vec<T>) -> usize {
        batch.clear();
        let mut inner = self.inner.lock().unwrap();
        batch.extend(inner.items.drain(..));
        batch.len()
    }

    /// Number of items currently pending.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether no items are currently pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A monotone counter a thread can park on — the barrier primitive the
/// concurrent serving runtime uses to wait for a lane to finish its backlog
/// ("wait until the worker has processed at least N commands").
///
/// Unlike the pool's internal one-shot latch this is reusable and counts
/// *up*: workers [`add`] as they retire commands, the coordinator
/// [`wait_at_least`]s a target.
///
/// [`add`]: Gauge::add
/// [`wait_at_least`]: Gauge::wait_at_least
#[derive(Default)]
pub struct Gauge {
    count: Mutex<u64>,
    moved: Condvar,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the gauge by `n` and wakes any waiters.
    pub fn add(&self, n: u64) {
        let mut count = self.count.lock().unwrap();
        *count += n;
        drop(count);
        self.moved.notify_all();
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.count.lock().unwrap()
    }

    /// Parks until the gauge reaches at least `target`.
    pub fn wait_at_least(&self, target: u64) {
        let mut count = self.count.lock().unwrap();
        while *count < target {
            count = self.moved.wait(count).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn covers_every_index_exactly_once() {
        for total in [0usize, 1, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(total, 1, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn small_totals_run_inline() {
        // min_chunk larger than total ⇒ single inline chunk; the closure can
        // prove it by mutating through a non-Sync-unfriendly pattern safely.
        let mut touched = false;
        let cell = std::sync::Mutex::new(&mut touched);
        parallel_for(3, 100, |range| {
            assert_eq!(range, 0..3);
            **cell.lock().unwrap() = true;
        });
        assert!(touched);
    }

    #[test]
    fn panics_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(8, 1, |range| {
                if range.contains(&0) {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn event_queue_drains_pending_batch_in_order() {
        let q = EventQueue::new();
        for i in 0..5 {
            assert!(q.push(i));
        }
        assert_eq!(q.len(), 5);
        let mut batch = vec![99]; // drain_into must clear stale contents
        assert!(q.drain_into(&mut batch));
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn event_queue_close_refuses_pushes_and_signals_shutdown() {
        let q = EventQueue::new();
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2), "push after close must be refused");
        let mut batch = Vec::new();
        // The item enqueued before close is still delivered...
        assert!(q.drain_into(&mut batch));
        assert_eq!(batch, vec![1]);
        // ...and only then does the queue report shutdown.
        assert!(!q.drain_into(&mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn event_queue_try_drain_is_nonblocking() {
        let q: EventQueue<u32> = EventQueue::new();
        let mut batch = vec![7];
        assert_eq!(q.try_drain_into(&mut batch), 0);
        assert!(batch.is_empty());
        q.push(3);
        assert_eq!(q.try_drain_into(&mut batch), 1);
        assert_eq!(batch, vec![3]);
    }

    #[test]
    fn event_queue_wakes_parked_consumer() {
        let q = std::sync::Arc::new(EventQueue::new());
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                let mut seen = Vec::new();
                while q.drain_into(&mut batch) {
                    seen.append(&mut batch);
                }
                seen
            })
        };
        for i in 0u32..100 {
            assert!(q.push(i));
            if i % 17 == 0 {
                std::thread::yield_now(); // let the consumer park sometimes
            }
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    /// Oracle property: with N producers racing, the drained stream must be
    /// FIFO **per producer** — exactly the guarantee a `Vec` under the same
    /// mutex would give. Each producer tags items `(producer, seq)`; the
    /// consumer asserts per-producer sequence numbers arrive strictly
    /// ascending and that nothing is lost or duplicated.
    #[test]
    fn event_queue_is_fifo_per_producer_under_contention() {
        const PRODUCERS: usize = 4;
        const PER: u32 = 500;
        let q = std::sync::Arc::new(EventQueue::new());
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut batch: Vec<(usize, u32)> = Vec::new();
                let mut all = Vec::new();
                while q.drain_into(&mut batch) {
                    all.append(&mut batch);
                }
                all
            })
        };
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = std::sync::Arc::clone(&q);
                std::thread::spawn(move || {
                    for seq in 0..PER {
                        assert!(q.push((p, seq)));
                        if seq % 97 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        q.close();
        let all = consumer.join().unwrap();
        assert_eq!(all.len(), PRODUCERS * PER as usize, "no loss, no dupes");
        let mut next = [0u32; PRODUCERS];
        for (p, seq) in all {
            assert_eq!(seq, next[p], "producer {p} reordered");
            next[p] += 1;
        }
        assert!(next.iter().all(|&n| n == PER));
    }

    #[test]
    fn gauge_releases_waiter_at_target() {
        let g = std::sync::Arc::new(Gauge::new());
        assert_eq!(g.get(), 0);
        let waiter = {
            let g = std::sync::Arc::clone(&g);
            std::thread::spawn(move || {
                g.wait_at_least(10);
                g.get()
            })
        };
        for _ in 0..10 {
            g.add(1);
        }
        assert!(waiter.join().unwrap() >= 10);
        g.wait_at_least(5); // already past: returns immediately
    }
}
