//! Matrix product and elementwise kernels.
//!
//! All products shape-check their operands and panic on mismatch: in this
//! workspace a shape error is always a programming bug in model wiring, never
//! a data-dependent condition, so `Result` plumbing would only obscure the
//! hot paths.

use crate::Matrix;

impl Matrix {
    /// `self · other` (standard matrix product).
    ///
    /// Delegates to the cache-blocked, row-parallel kernel layer in
    /// [`crate::kernels`]; see that module for the blocking and determinism
    /// story. Hot loops should prefer [`Matrix::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        crate::kernels::matmul_into(self, other, &mut out);
        out
    }

    /// `self · other` into a caller-owned buffer (see
    /// [`crate::kernels::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_into(self, other, out);
    }

    /// `self · otherᵀ`.
    ///
    /// Both operands are traversed along contiguous rows, so this is the
    /// fastest product shape; prefer it when you control the layout.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        crate::kernels::matmul_transpose_into(self, other, &mut out);
        out
    }

    /// `self · otherᵀ` into a caller-owned buffer (see
    /// [`crate::kernels::matmul_transpose_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_transpose_into(self, other, out);
    }

    /// `selfᵀ · other`.
    ///
    /// Used for weight gradients (`Xᵀ · dY`). The accumulation runs over the
    /// shared row index so both operands stream contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        crate::kernels::transpose_matmul_into(self, other, &mut out);
        out
    }

    /// `selfᵀ · other` into a caller-owned buffer (see
    /// [`crate::kernels::transpose_matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::transpose_matmul_into(self, other, out);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        out
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Elementwise map in place, split over the [`crate::par`] thread pool
    /// for large matrices. The closure must be `Sync`; results are identical
    /// to [`Matrix::map_inplace`] for pure closures.
    pub fn par_map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        // ~8k elements per chunk keeps dispatch overhead below the map cost
        // even for cheap closures.
        crate::kernels::par_map_slice(self.as_mut_slice(), 8192, f);
    }

    /// Elementwise binary combine in place (`self[i] = f(self[i], other[i])`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map_inplace(&mut self, other: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        for (o, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o = f(*o, b);
        }
    }

    /// Elementwise binary combine into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = self.clone();
        for (o, &b) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *o = f(*o, b);
        }
        out
    }

    /// `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (s, &o) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *s += alpha * o;
        }
    }

    /// Multiplies every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in self.as_mut_slice() {
            *v *= alpha;
        }
    }

    /// Adds a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols(), "bias width mismatch");
        let cols = self.cols();
        for r in 0..self.rows() {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias).take(cols) {
                *v += b;
            }
        }
    }

    /// Sum over rows, producing one value per column.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.sum_rows_into(&mut out);
        out
    }

    /// Sum over rows into a caller-owned vector (resized to `cols`).
    pub fn sum_rows_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols(), 0.0);
        for r in 0..self.rows() {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Sum over rows into a pre-sized flat buffer (one value per column),
    /// e.g. a bias-gradient window of a gradient plane.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.cols()`.
    pub fn sum_rows_into_buf(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols(), "output buffer length");
        out.fill(0.0);
        for r in 0..self.rows() {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Sum over columns, producing one value per row.
    pub fn sum_cols(&self) -> Vec<f32> {
        self.iter_rows().map(|row| row.iter().sum()).collect()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise dot products of two equally-shaped matrices
    /// (`out[r] = self[r] · other[r]`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn rowwise_dot(&self, other: &Matrix) -> Vec<f32> {
        assert_eq!(self.shape(), other.shape(), "rowwise_dot shape mismatch");
        self.iter_rows()
            .zip(other.iter_rows())
            .map(|(a, b)| dot(a, b))
            .collect()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics (debug) if lengths differ; release builds truncate to the shorter,
/// which never happens for shape-checked callers.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if let Some(s) = crate::kernels::dot_fast(a, b) {
        return s;
    }
    // Four accumulators break the dependency chain so the loop vectorizes.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `y += alpha * x` for slices.
///
/// # Panics
///
/// Panics (debug) if lengths differ.
#[inline]
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    if crate::kernels::axpy_fast(alpha, x, y) {
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng as _, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::randn(7, 13, &mut rng);
        let b = Matrix::randn(13, 5, &mut rng);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_transpose_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Matrix::randn(6, 9, &mut rng);
        let b = Matrix::randn(4, 9, &mut rng);
        assert_close(
            &a.matmul_transpose(&b),
            &naive_matmul(&a, &b.transpose()),
            1e-5,
        );
    }

    #[test]
    fn transpose_matmul_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Matrix::randn(9, 6, &mut rng);
        let b = Matrix::randn(9, 4, &mut rng);
        assert_close(
            &a.transpose_matmul(&b),
            &naive_matmul(&a.transpose(), &b),
            1e-5,
        );
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_checked() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Matrix::randn(5, 5, &mut rng);
        assert_close(&a.matmul(&Matrix::eye(5)), &a, 1e-6);
        assert_close(&Matrix::eye(5).matmul(&a), &a, 1e-6);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum_rows(), vec![4.0, 6.0]);
        assert_eq!(m.sum_cols(), vec![3.0, 7.0]);
        assert_eq!(m.sum(), 10.0);
        assert!((m.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn broadcast_and_axpy() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        let mut n = Matrix::full(2, 3, 1.0);
        n.axpy(2.0, &m);
        assert_eq!(n.row(0), &[3.0, 5.0, 7.0]);
        n.scale(0.5);
        assert_eq!(n.row(0), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn rowwise_dot_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.rowwise_dot(&b), vec![17.0, 53.0]);
    }

    #[test]
    fn dot_handles_tail() {
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b = vec![2.0f32; 11];
        assert_eq!(dot(&a, &b), 2.0 * (0..11).sum::<i32>() as f32);
    }

    proptest! {
        #[test]
        fn matmul_associativity(seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::randn(4, 3, &mut rng);
            let b = Matrix::randn(3, 5, &mut rng);
            let c = Matrix::randn(5, 2, &mut rng);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }

        #[test]
        fn transpose_identities(seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Matrix::randn(4, 6, &mut rng);
            let b = Matrix::randn(5, 6, &mut rng);
            // A·Bᵀ computed directly equals the explicit-transpose product.
            let fused = a.matmul_transpose(&b);
            let explicit = a.matmul(&b.transpose());
            for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn scatter_is_gather_adjoint(seed in 0u64..200) {
            // <gather(T, idx), G> == <T, scatter(idx, G)> for random data:
            // the defining property of an adjoint pair.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let table = Matrix::randn(6, 3, &mut rng);
            let idx: Vec<usize> = (0..10).map(|_| rng.gen_range(0..6)).collect();
            let g = Matrix::randn(10, 3, &mut rng);
            let gathered = table.gather_rows(&idx);
            let lhs: f32 = gathered.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
            let mut scat = Matrix::zeros(6, 3);
            scat.scatter_add_rows(&idx, &g);
            let rhs: f32 = table.as_slice().iter().zip(scat.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
        }
    }
}
