//! Dense single-precision linear algebra for the Pitot reproduction.
//!
//! This crate provides the minimal numerical substrate used throughout the
//! workspace: a row-major [`Matrix`] type with the handful of kernels a
//! manually-differentiated two-tower model needs (`A·B`, `A·Bᵀ`, `Aᵀ·B`,
//! elementwise maps, row/column reductions) plus random-fill helpers.
//!
//! The kernel layer ([`kernels`]) provides cache-blocked, row-parallel
//! products with `*_into` variants that write into caller-owned buffers;
//! [`Scratch`] recycles those buffers so steady-state training loops run
//! allocation-free (verified via [`alloc_count`]). Parallelism comes from a
//! tiny hand-rolled pool ([`par`]) sized by the `PITOT_THREADS` environment
//! variable; results are bitwise identical across thread counts. The
//! [`mod@reference`] module keeps the naive triple loops as the oracle the
//! blocked kernels are property-tested against.
//!
//! # Examples
//!
//! ```
//! use pitot_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//!
//! // Allocation-free form for hot loops:
//! let mut out = Matrix::zeros(2, 2);
//! a.matmul_into(&b, &mut out);
//! assert_eq!(out, a);
//! ```

// Every public item in this crate is part of the documented kernel-layer
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

pub mod alloc_count;
// The kernel layer and its thread pool are the workspace's only sanctioned
// `unsafe`: lending disjoint output-row windows to pool workers. Everything
// else in the tree stays under the workspace-wide `unsafe_code = "deny"`.
#[allow(unsafe_code)]
pub mod kernels;
mod matrix;
mod ops;
#[allow(unsafe_code)]
pub mod par;
// The int8 kernels share the kernel layer's sanctioned-unsafe budget: the
// same disjoint-row-window lending plus runtime-dispatched AVX2 clones.
#[allow(unsafe_code)]
pub mod quant;
pub mod reference;
mod scratch;
mod solve;
mod stats;

pub use kernels::{adamax_update, axpy_fanout, scale_add};
pub use matrix::{fill_randn, MatRef, Matrix};
pub use ops::{axpy_slice, dot};
pub use quant::{matmul_q_into, matmul_transpose_q_into, QuantizedMatrix, MAX_QUANT_K};
pub use scratch::Scratch;
pub use solve::{cholesky, solve_spd, solve_spd_multi};
pub use stats::{
    mean, percentile, quantile_higher, quantile_higher_sorted, stderr_of_mean, variance,
};
