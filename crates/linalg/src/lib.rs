//! Dense single-precision linear algebra for the Pitot reproduction.
//!
//! This crate provides the minimal numerical substrate used throughout the
//! workspace: a row-major [`Matrix`] type with the handful of kernels a
//! manually-differentiated two-tower model needs (`A·B`, `A·Bᵀ`, `Aᵀ·B`,
//! elementwise maps, row/column reductions) plus random-fill helpers.
//!
//! The design goal is *predictable* performance on a single CPU core rather
//! than peak throughput: kernels are written so the inner loops are
//! contiguous-slice dot products or AXPYs that rustc autovectorizes.
//!
//! # Examples
//!
//! ```
//! use pitot_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod matrix;
mod ops;
mod solve;
mod stats;

pub use matrix::Matrix;
pub use ops::{axpy_slice, dot};
pub use solve::{cholesky, solve_spd, solve_spd_multi};
pub use stats::{mean, percentile, quantile_higher, stderr_of_mean, variance};
