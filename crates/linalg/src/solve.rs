//! Dense symmetric-positive-definite linear solves via Cholesky.
//!
//! The analytic baselines (inductive matrix completion's alternating ridge
//! regressions) need exact normal-equation solves; everything here is the
//! textbook `LLᵀ` factorization with forward/backward substitution.

use crate::matrix::Matrix;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, returning the lower-triangular factor `L`.
///
/// Returns `None` if `A` is not (numerically) positive definite.
///
/// # Panics
///
/// Panics if `A` is not square.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "Cholesky needs a square matrix");
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.row(i)[j] as f64;
            for k in 0..j {
                sum -= (l.row(i)[k] as f64) * (l.row(j)[k] as f64);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.row_mut(i)[j] = (sum.sqrt()) as f32;
            } else {
                let d = l.row(j)[j];
                if d == 0.0 {
                    return None;
                }
                l.row_mut(i)[j] = (sum / d as f64) as f32;
            }
        }
    }
    Some(l)
}

/// Solves `A·x = b` for SPD `A` via Cholesky.
///
/// Returns `None` if `A` is not positive definite.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn solve_spd(a: &Matrix, b: &[f32]) -> Option<Vec<f32>> {
    assert_eq!(a.rows(), b.len(), "dimension mismatch");
    let l = cholesky(a)?;
    Some(back_substitute(&l, &forward_substitute(&l, b)))
}

/// Solves `A·X = B` column-by-column for SPD `A`.
///
/// Returns `None` if `A` is not positive definite.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn solve_spd_multi(a: &Matrix, b: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let l = cholesky(a)?;
    let mut x = Matrix::zeros(b.rows(), b.cols());
    for c in 0..b.cols() {
        let col = b.col(c);
        let sol = back_substitute(&l, &forward_substitute(&l, &col));
        for (r, v) in sol.into_iter().enumerate() {
            x.row_mut(r)[c] = v;
        }
    }
    Some(x)
}

/// Solves `L·y = b` for lower-triangular `L`.
fn forward_substitute(l: &Matrix, b: &[f32]) -> Vec<f32> {
    let n = b.len();
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = b[i] as f64;
        for k in 0..i {
            sum -= (l.row(i)[k] as f64) * (y[k] as f64);
        }
        y[i] = (sum / l.row(i)[i] as f64) as f32;
    }
    y
}

/// Solves `Lᵀ·x = y` for lower-triangular `L`.
fn back_substitute(l: &Matrix, y: &[f32]) -> Vec<f32> {
    let n = y.len();
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = y[i] as f64;
        for k in i + 1..n {
            sum -= (l.row(k)[i] as f64) * (x[k] as f64);
        }
        x[i] = (sum / l.row(i)[i] as f64) as f32;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = Matrix::randn(n, n, &mut rng);
        // GᵀG + n·I is comfortably positive definite.
        let mut a = g.transpose_matmul(&g);
        for i in 0..n {
            a.row_mut(i)[i] += n as f32;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = random_spd(8, 0);
        let l = cholesky(&a).unwrap();
        let rec = l.matmul_transpose(&l);
        for (x, y) in a.as_slice().iter().zip(rec.as_slice()) {
            assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_spd(12, 1);
        let x_true: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.5).collect();
        let b: Vec<f32> = (0..12)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let x = solve_spd(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn multi_rhs_matches_single() {
        let a = random_spd(6, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let b = Matrix::randn(6, 3, &mut rng);
        let x = solve_spd_multi(&a, &b).unwrap();
        for c in 0..3 {
            let single = solve_spd(&a, &b.col(c)).unwrap();
            for r in 0..6 {
                assert!((x.row(r)[c] - single[r]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(cholesky(&a).is_none());
        assert!(solve_spd(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::eye(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(solve_spd(&a, &b).unwrap(), b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn solve_then_multiply_roundtrips(n in 2usize..16, seed in 0u64..500) {
            let a = random_spd(n, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
            let b: Vec<f32> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, -2.0f32..2.0)).collect();
            let x = solve_spd(&a, &b).unwrap();
            for i in 0..n {
                let ax: f32 = a.row(i).iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
                prop_assert!((ax - b[i]).abs() < 1e-2 * (1.0 + b[i].abs()), "row {i}: {ax} vs {}", b[i]);
            }
        }
    }
}
