//! Int8 symmetric per-row quantized matrix products.
//!
//! Compressed inference towers run their dense layers in int8: weights are
//! quantized once per (output-channel) row at compression time, activations
//! are quantized per (sample) row on the fly, and the product accumulates in
//! exact i32 before one dequantizing multiply per output element.
//!
//! # Quantization scheme
//!
//! Symmetric, per-row: for a row `x` the scale is `s = max|x| / 127` (zero
//! for an all-zero row) and each element is stored as
//! `q = round(x / s)` clamped to `[-127, 127]`. There is no zero point, so
//! dequantization is a single multiply: `x̂ = s · q`.
//!
//! # Error bounds
//!
//! These bounds are what the property suite in
//! `crates/linalg/tests/kernel_properties.rs` pins:
//!
//! - **Round trip.** Rounding loses at most half a quantization step, and
//!   the clamp never fires (the row maximum maps to exactly ±127), so
//!   `|x − s·q| ≤ s/2` elementwise.
//! - **Dot product.** Writing `εa = sa/2`, `εb = sb/2` for the two rows'
//!   round-trip bounds, each term of the dot differs from its f32
//!   counterpart by at most `|a_p|·εb + |b_p|·εa + εa·εb`, so the
//!   dequantized product satisfies
//!   `|Σ a_p b_p − sa·sb·Σ qa_p qb_p| ≤ Σ_p (|a_p|·εb + |b_p|·εa + εa·εb)`.
//!
//! # Determinism
//!
//! The i32 accumulation is exact — no rounding, no order sensitivity — so
//! the scalar and AVX2 paths produce *bitwise identical* results and row
//! partitioning cannot matter. This is a stronger guarantee than the f32
//! kernels (which are split-invariant per machine but differ between the
//! FMA and portable paths): quantized products are identical across
//! `PITOT_THREADS` **and** across dispatch paths. The single dequantizing
//! expression `(acc as f32) * (sa * sb)` is shared by both paths.
//!
//! # Overflow
//!
//! `|q| ≤ 127`, so each product term is at most `16129` and an i32
//! accumulator is safe for any shared dimension `k ≤ 2^17`; the entry
//! points assert this (the towers in this workspace have `k` in the
//! hundreds).

use crate::matrix::MatRef;
use crate::par::{self, SendPtr};
use crate::Matrix;
use std::ops::Range;

/// Largest shared dimension the i32 accumulator provably cannot overflow:
/// `127² · 2^17 < 2^31`.
pub const MAX_QUANT_K: usize = 1 << 17;

/// Minimum useful element-ops per parallel chunk (int8 products are ~4×
/// cheaper per element than f32 FMA, so the grain is coarser).
const QGRAIN_OPS: usize = 1 << 18;

/// A row-quantized int8 matrix: `rows × cols` of i8 plus one f32 scale per
/// row.
///
/// Built with [`QuantizedMatrix::from_rows`] (quantize each row of the
/// source — activations, or the B operand of `A·Bᵀ`) or
/// [`QuantizedMatrix::from_cols`] (quantize each *column* of the source and
/// store it transposed — the B operand of `A·B`, so both products share one
/// row-against-row i8 dot kernel).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    scales: Vec<f32>,
    rows: usize,
    cols: usize,
}

/// Quantizes one row: returns the scale and writes `round(x/s)` clamped to
/// `[-127, 127]` into `out`. The scale is `max|x|/127`, zero for an
/// all-zero (or empty) row — in which case the stored row is all zero and
/// dequantization is exact.
fn quantize_row_into(row: &[f32], out: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), out.len());
    let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = max / 127.0;
    let inv = 127.0 / max;
    for (q, &v) in out.iter_mut().zip(row) {
        // The clamp guards accumulated rounding in `v * inv` for |v| near
        // the row maximum; it never moves a value by more than one step.
        *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

impl QuantizedMatrix {
    /// Quantizes each row of `m`; the stored shape equals `m`'s shape and
    /// `scales()[i]` is row `i`'s scale.
    pub fn from_rows(m: MatRef<'_>) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for i in 0..rows {
            scales[i] = quantize_row_into(m.row(i), &mut data[i * cols..(i + 1) * cols]);
        }
        Self {
            data,
            scales,
            rows,
            cols,
        }
    }

    /// Quantizes each **column** of `m` and stores the result transposed
    /// (`m.cols() × m.rows()`), so `scales()[j]` is source column `j`'s
    /// scale and stored row `j` is source column `j`. This is the weight
    /// packing for `A·B`: the product becomes row-against-row dots.
    pub fn from_cols(m: MatRef<'_>) -> Self {
        let (src_rows, src_cols) = (m.rows(), m.cols());
        let mut col = vec![0.0f32; src_rows];
        let mut data = vec![0i8; src_rows * src_cols];
        let mut scales = vec![0.0f32; src_cols];
        for j in 0..src_cols {
            for (i, c) in col.iter_mut().enumerate() {
                *c = m.row(i)[j];
            }
            scales[j] = quantize_row_into(&col, &mut data[j * src_rows..(j + 1) * src_rows]);
        }
        Self {
            data,
            scales,
            rows: src_cols,
            cols: src_rows,
        }
    }

    /// Stored row count (source rows for [`Self::from_rows`], source
    /// *columns* for [`Self::from_cols`]).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Stored column count (the shared/dot dimension in both packings).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-stored-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Stored row `i` of quantized values.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn qrow(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Dequantizes into an f32 matrix in the **stored** orientation
    /// (callers of [`Self::from_cols`] get the source transposed).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let s = self.scales[i];
            for (o, &q) in out.row_mut(i).iter_mut().zip(self.qrow(i)) {
                *o = s * f32::from(q);
            }
        }
        out
    }

    /// Bytes held by the quantized representation (i8 payload + f32
    /// scales) — the memory side of the compression tradeoff.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// `out = Â · B̂` where `a = from_rows(A)` (`m×k`) and `b = from_cols(B)`
/// (`k×n` source, stored `n×k`): exact i32 row-dots dequantized by
/// `sa[i]·sb[j]`. See the module docs for the error bound against `A·B`.
///
/// # Panics
///
/// Panics if the shared dimensions disagree or exceed [`MAX_QUANT_K`].
pub fn matmul_q_into(a: &QuantizedMatrix, b: &QuantizedMatrix, out: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "matmul_q: {}x{} · ({}x{} packed)",
        a.rows, a.cols, b.rows, b.cols
    );
    qmm_into(a, b, out);
}

/// `out = Â · B̂ᵀ` where both operands are `from_rows` packings sharing the
/// column count (`A: m×k`, `B: n×k`) — the same kernel as
/// [`matmul_q_into`]; only the packing of `b` differs.
///
/// # Panics
///
/// Panics if the shared dimensions disagree or exceed [`MAX_QUANT_K`].
pub fn matmul_transpose_q_into(a: &QuantizedMatrix, b: &QuantizedMatrix, out: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "matmul_transpose_q: {}x{} · ({}x{})ᵀ",
        a.rows, a.cols, b.rows, b.cols
    );
    qmm_into(a, b, out);
}

/// Shared row-against-row quantized product: `out[i][j] =
/// (qa[i]·qb[j] as f32) · sa[i] · sb[j]`, row-parallel over `a`'s rows.
fn qmm_into(a: &QuantizedMatrix, b: &QuantizedMatrix, out: &mut Matrix) {
    assert!(
        a.cols <= MAX_QUANT_K,
        "quantized product k={} exceeds the i32-overflow bound {MAX_QUANT_K}",
        a.cols
    );
    let (m, k, n) = (a.rows, a.cols, b.rows);
    out.resize(m, n);
    if m == 0 || n == 0 {
        return;
    }
    let min_rows = (QGRAIN_OPS / (k * n).max(1)).max(1);
    let ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    par::parallel_for(m, min_rows, |rows| {
        // SAFETY: `parallel_for` hands out disjoint row ranges, so each
        // chunk owns a disjoint window of the output buffer.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(rows.start * n), rows.len() * n)
        };
        qmm_chunk(a, b, chunk, rows, k, n);
    });
}

/// Serial kernel for one chunk of output rows, dispatching to the AVX2
/// clone when available. Both paths compute identical exact integers.
fn qmm_chunk(
    a: &QuantizedMatrix,
    b: &QuantizedMatrix,
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernels::fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`
        // (avx2 implies everything the i8 kernel uses).
        unsafe { qmm_chunk_avx2(a, b, out, rows, k, n) };
        return;
    }
    qmm_chunk_body(a, b, out, rows, k, n);
}

#[inline(always)]
fn qmm_chunk_body(
    a: &QuantizedMatrix,
    b: &QuantizedMatrix,
    out: &mut [f32],
    rows: Range<usize>,
    _k: usize,
    n: usize,
) {
    for i in rows.clone() {
        let qa = a.qrow(i);
        let sa = a.scales[i];
        let out_row = &mut out[(i - rows.start) * n..(i - rows.start) * n + n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let acc = dot_i8_scalar(qa, b.qrow(j));
            *o = (acc as f32) * (sa * b.scales[j]);
        }
    }
}

/// Exact i32 dot of two i8 rows — the scalar half of the dispatch pair.
#[inline(always)]
fn dot_i8_scalar(qa: &[i8], qb: &[i8]) -> i32 {
    debug_assert_eq!(qa.len(), qb.len());
    let mut acc = 0i32;
    for (&x, &y) in qa.iter().zip(qb) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// AVX2 clone of [`qmm_chunk_body`]: 16 i8 lanes sign-extended to i16,
/// multiplied pairwise into 8 i32 lanes per `_mm256_madd_epi16`, summed in
/// i32. Integer arithmetic is exact, so the result is bitwise identical to
/// the scalar path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qmm_chunk_avx2(
    a: &QuantizedMatrix,
    b: &QuantizedMatrix,
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let k16 = k - k % 16;
    for i in rows.clone() {
        let qa = a.qrow(i);
        let sa = a.scales[i];
        let out_row = &mut out[(i - rows.start) * n..(i - rows.start) * n + n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let qb = b.qrow(j);
            let mut vacc = _mm256_setzero_si256();
            let mut p = 0;
            while p < k16 {
                let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(qa.as_ptr().add(p).cast()));
                let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(qb.as_ptr().add(p).cast()));
                vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(va, vb));
                p += 16;
            }
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vacc);
            let mut acc: i32 = lanes.iter().sum();
            while p < k {
                acc += i32::from(qa[p]) * i32::from(qb[p]);
                p += 1;
            }
            *o = (acc as f32) * (sa * b.scales[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn round_trip_stays_within_half_a_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let m = Matrix::randn(9, 33, &mut rng);
        let q = QuantizedMatrix::from_rows(m.view());
        let back = q.dequantize();
        for i in 0..m.rows() {
            let s = q.scales()[i];
            for (x, y) in m.row(i).iter().zip(back.row(i)) {
                assert!((x - y).abs() <= 0.5 * s + 1e-7, "{x} vs {y} (scale {s})");
            }
        }
    }

    #[test]
    fn from_cols_stores_the_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let m = Matrix::randn(7, 5, &mut rng);
        let qc = QuantizedMatrix::from_cols(m.view());
        let qr = QuantizedMatrix::from_rows(m.transpose().view());
        assert_eq!(qc, qr);
    }

    #[test]
    fn quantized_product_matches_reference_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 37, 3),
            (13, 300, 9),
            (4, 16, 32),
        ] {
            let a = Matrix::randn(m, k, &mut rng);
            let b = Matrix::randn(k, n, &mut rng);
            let qa = QuantizedMatrix::from_rows(a.view());
            let qb = QuantizedMatrix::from_cols(b.view());
            let mut out = Matrix::zeros(0, 0);
            matmul_q_into(&qa, &qb, &mut out);
            assert_eq!(out.as_slice(), reference::matmul_q(&qa, &qb).as_slice());

            let bt = Matrix::randn(n, k, &mut rng);
            let qbt = QuantizedMatrix::from_rows(bt.view());
            matmul_transpose_q_into(&qa, &qbt, &mut out);
            assert_eq!(out.as_slice(), reference::matmul_q(&qa, &qbt).as_slice());
        }
    }

    #[test]
    fn row_partitioning_is_bitwise_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let (m, k, n) = (13, 37, 9);
        let a = QuantizedMatrix::from_rows(Matrix::randn(m, k, &mut rng).view());
        let b = QuantizedMatrix::from_cols(Matrix::randn(k, n, &mut rng).view());
        let mut whole = vec![0.0f32; m * n];
        qmm_chunk(&a, &b, &mut whole, 0..m, k, n);
        for split in 1..m {
            let mut lo = vec![0.0f32; split * n];
            let mut hi = vec![0.0f32; (m - split) * n];
            qmm_chunk(&a, &b, &mut lo, 0..split, k, n);
            qmm_chunk(&a, &b, &mut hi, split..m, k, n);
            lo.extend_from_slice(&hi);
            assert_eq!(lo, whole, "split at {split}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        let a = QuantizedMatrix::from_rows(Matrix::zeros(0, 5).view());
        let b = QuantizedMatrix::from_cols(Matrix::zeros(5, 3).view());
        let mut out = Matrix::zeros(7, 7);
        matmul_q_into(&a, &b, &mut out);
        assert_eq!(out.shape(), (0, 3));

        // Empty shared dimension: defined, all-zero.
        let a = QuantizedMatrix::from_rows(Matrix::zeros(2, 0).view());
        let b = QuantizedMatrix::from_cols(Matrix::zeros(0, 3).view());
        let mut out = Matrix::full(2, 3, 9.0);
        matmul_q_into(&a, &b, &mut out);
        assert_eq!(out, Matrix::zeros(2, 3));
    }

    #[test]
    fn zero_rows_quantize_exactly() {
        let m = Matrix::zeros(3, 8);
        let q = QuantizedMatrix::from_rows(m.view());
        assert_eq!(q.scales(), &[0.0, 0.0, 0.0]);
        assert_eq!(q.dequantize(), m);
    }
}
