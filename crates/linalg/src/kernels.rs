//! Cache-blocked, allocation-free matrix-product kernels.
//!
//! These are the production kernels behind [`Matrix::matmul`],
//! [`Matrix::matmul_transpose`], and [`Matrix::transpose_matmul`]; the
//! `*_into` entry points write into caller-owned buffers so hot loops can
//! run without touching the allocator.
//!
//! # Design
//!
//! - **Row-major microkernel, MR = 4.** Products are computed four output
//!   rows at a time: the inner loop streams one row of the right-hand
//!   operand while feeding four independent accumulator rows, which both
//!   quarters the B-operand traffic and gives the autovectorizer four
//!   independent FMA streams.
//! - **k-blocking, KC = 256.** The shared dimension is tiled so the working
//!   set of the right-hand operand stays cache-resident for large inputs.
//! - **Row-parallel dispatch.** Output rows are split over the
//!   [`crate::par`] pool when a chunk is worth at least ~64 kFLOPs
//!   (`GRAIN_FLOPS`); smaller products run inline.
//! - **AVX2+FMA fast path, dispatched at runtime.** The workspace builds
//!   for baseline x86-64 (SSE2), so each chunk kernel has a clone compiled
//!   with `#[target_feature(enable = "avx2,fma")]` — same source, wider
//!   vectors plus fused multiply-adds — selected per process via CPU
//!   feature detection. Non-x86 targets always use the portable path.
//! - **Bitwise determinism per machine.** For every output element the
//!   accumulation order over the shared dimension is ascending regardless
//!   of blocking or thread count, so results are identical across
//!   `PITOT_THREADS` settings. (Blocking never splits an element's sum
//!   across threads — only across sequential `KC` tiles.) Across *machines*
//!   the FMA path's fused rounding (and the 8-wide dot) can differ in the
//!   last bits from the portable path, which is why correctness tests pin
//!   kernels to the reference with a relative tolerance.
//!
//! There is deliberately no `if a == 0.0 {{ continue; }}` sparsity skip: on
//! dense data the branch misprediction costs more than the multiply it
//! saves, and it blocks vectorization of the surrounding loop. No call site
//! in this workspace feeds genuinely sparse matrices through these products
//! (the sparse-ish feature rows in `pitot-baselines` use their own AXPY
//! loops), so there is no dedicated sparse entry point either.

use crate::matrix::MatRef;
use crate::ops::dot;
use crate::par::{self, SendPtr};
use crate::Matrix;
use std::ops::Range;

/// Output rows per microkernel pass.
const MR: usize = 4;
/// Shared-dimension blocking factor.
const KC: usize = 256;
/// Minimum useful FLOPs per parallel chunk; below this, stay serial.
const GRAIN_FLOPS: usize = 1 << 16;

/// Smallest number of output rows worth shipping to another thread for a
/// product with `2·k·n` FLOPs per row.
fn min_rows(k: usize, n: usize) -> usize {
    (GRAIN_FLOPS / (2 * k * n).max(1)).max(MR)
}

/// `out = a · b`, resizing `out` as needed (no allocation when the caller's
/// buffer already has capacity).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    matmul_view_into(a.view(), b.view(), out);
}

/// [`matmul_into`] over borrowed views (e.g. weight blocks of a flat
/// parameter plane).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_view_into(a: MatRef<'_>, b: MatRef<'_>, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.resize(m, n);
    if m == 0 || n == 0 {
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    par::parallel_for(m, min_rows(k, n), |rows| {
        // SAFETY: `parallel_for` hands out disjoint row ranges, so each
        // chunk owns a disjoint window of the output buffer.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(rows.start * n), rows.len() * n)
        };
        matmul_chunk(a_s, b_s, chunk, rows, k, n);
    });
}

/// Whether the runtime-dispatched AVX2+FMA code paths are usable on this
/// machine. The workspace builds for baseline x86-64 (SSE2), so the wide
/// paths are compiled separately behind `#[target_feature]` and selected
/// once per process.
pub fn fma_dispatch() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Serial blocked kernel for `out_chunk = a[rows] · b`, dispatching to the
/// wide code path when available.
fn matmul_chunk(a: &[f32], b: &[f32], out: &mut [f32], rows: Range<usize>, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { matmul_chunk_fma(a, b, out, rows, k, n) };
        return;
    }
    // The portable AXPY-style kernel accumulates into `out` and needs it
    // zeroed; the register-tile FMA kernel assigns every element instead.
    out.fill(0.0);
    matmul_chunk_body(a, b, out, rows, k, n);
}

/// Explicit-intrinsics register-tile kernel for `out_chunk = a[rows] · b`:
/// 4 rows × 16 columns of C held in eight FMA accumulator registers across
/// the whole k loop, so the inner loop does two B loads and four A
/// broadcasts per eight FMAs and never touches C memory. The accumulation
/// order over k is ascending, identical to the portable path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_chunk_fma(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut i = rows.start;
    while i + 4 <= rows.end {
        let a0 = ap.add(i * k);
        let a1 = ap.add((i + 1) * k);
        let a2 = ap.add((i + 2) * k);
        let a3 = ap.add((i + 3) * k);
        let ob = (i - rows.start) * n;
        let mut j = 0;
        while j + 16 <= n {
            let mut c00 = _mm256_setzero_ps();
            let mut c01 = _mm256_setzero_ps();
            let mut c10 = _mm256_setzero_ps();
            let mut c11 = _mm256_setzero_ps();
            let mut c20 = _mm256_setzero_ps();
            let mut c21 = _mm256_setzero_ps();
            let mut c30 = _mm256_setzero_ps();
            let mut c31 = _mm256_setzero_ps();
            for p in 0..k {
                let vb0 = _mm256_loadu_ps(bp.add(p * n + j));
                let vb1 = _mm256_loadu_ps(bp.add(p * n + j + 8));
                let va0 = _mm256_set1_ps(*a0.add(p));
                c00 = _mm256_fmadd_ps(va0, vb0, c00);
                c01 = _mm256_fmadd_ps(va0, vb1, c01);
                let va1 = _mm256_set1_ps(*a1.add(p));
                c10 = _mm256_fmadd_ps(va1, vb0, c10);
                c11 = _mm256_fmadd_ps(va1, vb1, c11);
                let va2 = _mm256_set1_ps(*a2.add(p));
                c20 = _mm256_fmadd_ps(va2, vb0, c20);
                c21 = _mm256_fmadd_ps(va2, vb1, c21);
                let va3 = _mm256_set1_ps(*a3.add(p));
                c30 = _mm256_fmadd_ps(va3, vb0, c30);
                c31 = _mm256_fmadd_ps(va3, vb1, c31);
            }
            _mm256_storeu_ps(op.add(ob + j), c00);
            _mm256_storeu_ps(op.add(ob + j + 8), c01);
            _mm256_storeu_ps(op.add(ob + n + j), c10);
            _mm256_storeu_ps(op.add(ob + n + j + 8), c11);
            _mm256_storeu_ps(op.add(ob + 2 * n + j), c20);
            _mm256_storeu_ps(op.add(ob + 2 * n + j + 8), c21);
            _mm256_storeu_ps(op.add(ob + 3 * n + j), c30);
            _mm256_storeu_ps(op.add(ob + 3 * n + j + 8), c31);
            j += 16;
        }
        // Narrower register tiles for the column tail: 4 rows × 8 and
        // 4 rows × 4 before falling back to scalars. Each vector lane is
        // one fused multiply-add per ascending k — exactly the scalar
        // tail's arithmetic — so adding these tiles changes no bits, only
        // closes the small-n throughput gap (n < 16 used to run fully
        // scalar).
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            let mut c2 = _mm256_setzero_ps();
            let mut c3 = _mm256_setzero_ps();
            for p in 0..k {
                let vb = _mm256_loadu_ps(bp.add(p * n + j));
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(p)), vb, c0);
                c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(p)), vb, c1);
                c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.add(p)), vb, c2);
                c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.add(p)), vb, c3);
            }
            _mm256_storeu_ps(op.add(ob + j), c0);
            _mm256_storeu_ps(op.add(ob + n + j), c1);
            _mm256_storeu_ps(op.add(ob + 2 * n + j), c2);
            _mm256_storeu_ps(op.add(ob + 3 * n + j), c3);
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm_setzero_ps();
            let mut c1 = _mm_setzero_ps();
            let mut c2 = _mm_setzero_ps();
            let mut c3 = _mm_setzero_ps();
            for p in 0..k {
                let vb = _mm_loadu_ps(bp.add(p * n + j));
                c0 = _mm_fmadd_ps(_mm_set1_ps(*a0.add(p)), vb, c0);
                c1 = _mm_fmadd_ps(_mm_set1_ps(*a1.add(p)), vb, c1);
                c2 = _mm_fmadd_ps(_mm_set1_ps(*a2.add(p)), vb, c2);
                c3 = _mm_fmadd_ps(_mm_set1_ps(*a3.add(p)), vb, c3);
            }
            _mm_storeu_ps(op.add(ob + j), c0);
            _mm_storeu_ps(op.add(ob + n + j), c1);
            _mm_storeu_ps(op.add(ob + 2 * n + j), c2);
            _mm_storeu_ps(op.add(ob + 3 * n + j), c3);
            j += 4;
        }
        while j < n {
            for (r, a_row) in [a0, a1, a2, a3].into_iter().enumerate() {
                let mut s = 0.0f32;
                for p in 0..k {
                    s = (*a_row.add(p)).mul_add(*bp.add(p * n + j), s);
                }
                *op.add(ob + r * n + j) = s;
            }
            j += 1;
        }
        i += 4;
    }
    while i < rows.end {
        let a_row = ap.add(i * k);
        let ob = (i - rows.start) * n;
        let mut j = 0;
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            for p in 0..k {
                let vb = _mm256_loadu_ps(bp.add(p * n + j));
                let va = _mm256_set1_ps(*a_row.add(p));
                c0 = _mm256_fmadd_ps(va, vb, c0);
            }
            _mm256_storeu_ps(op.add(ob + j), c0);
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm_setzero_ps();
            for p in 0..k {
                let vb = _mm_loadu_ps(bp.add(p * n + j));
                c0 = _mm_fmadd_ps(_mm_set1_ps(*a_row.add(p)), vb, c0);
            }
            _mm_storeu_ps(op.add(ob + j), c0);
            j += 4;
        }
        while j < n {
            let mut s = 0.0f32;
            for p in 0..k {
                s = (*a_row.add(p)).mul_add(*bp.add(p * n + j), s);
            }
            *op.add(ob + j) = s;
            j += 1;
        }
        i += 1;
    }
}

#[inline(always)]
fn matmul_chunk_body(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = rows.start;
        while i + MR <= rows.end {
            let base = (i - rows.start) * n;
            let slab = &mut out[base..base + MR * n];
            let (r0, rest) = slab.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for p in kb..kend {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        while i < rows.end {
            let base = (i - rows.start) * n;
            let row = &mut out[base..base + n];
            for p in kb..kend {
                let av = a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

/// `out = a · bᵀ`, resizing `out` as needed.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    matmul_transpose_view_into(a.view(), b.view(), out);
}

/// [`matmul_transpose_into`] over borrowed views.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose_view_into(a: MatRef<'_>, b: MatRef<'_>, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transpose: {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    out.resize(m, n);
    if m == 0 || n == 0 {
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let ptr = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    par::parallel_for(m, min_rows(k, n), |rows| {
        // SAFETY: disjoint row windows (see `matmul_into`).
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(rows.start * n), rows.len() * n)
        };
        matmul_transpose_chunk(a_s, b_s, chunk, rows, k, n);
    });
}

/// Serial kernel for `out_chunk = a[rows] · bᵀ` (row-against-row dot
/// products), dispatching to the wide code path when available.
fn matmul_transpose_chunk(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { matmul_transpose_chunk_fma(a, b, out, rows, k, n) };
        return;
    }
    matmul_transpose_chunk_body(a, b, out, rows, k, n);
}

/// Horizontal sum of one AVX register, in a fixed reduction order that
/// [`reduce8`] mirrors exactly (see its docs for why).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn hsum256(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    _mm_cvtss_f32(s)
}

/// Explicit-intrinsics panel kernel: 2 a-rows × 4 b-rows of dot products
/// per pass (eight FMA accumulator registers sharing every operand load),
/// j-loop outermost so the four b-rows stay L1-resident while the a-rows
/// stream past. Autovectorization never produces this shape from the
/// portable dot loop — the multi-row register reuse is exactly what a
/// dot-product kernel needs to stop being load-bound.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn matmul_transpose_chunk_fma(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let k8 = k - k % 8;
    let mut j = 0;
    while j + 4 <= n {
        let b0 = bp.add(j * k);
        let b1 = bp.add((j + 1) * k);
        let b2 = bp.add((j + 2) * k);
        let b3 = bp.add((j + 3) * k);
        let mut i = rows.start;
        while i + 2 <= rows.end {
            let a0 = ap.add(i * k);
            let a1 = ap.add((i + 1) * k);
            let mut acc00 = _mm256_setzero_ps();
            let mut acc01 = _mm256_setzero_ps();
            let mut acc02 = _mm256_setzero_ps();
            let mut acc03 = _mm256_setzero_ps();
            let mut acc10 = _mm256_setzero_ps();
            let mut acc11 = _mm256_setzero_ps();
            let mut acc12 = _mm256_setzero_ps();
            let mut acc13 = _mm256_setzero_ps();
            let mut p = 0;
            while p < k8 {
                let va0 = _mm256_loadu_ps(a0.add(p));
                let va1 = _mm256_loadu_ps(a1.add(p));
                let vb0 = _mm256_loadu_ps(b0.add(p));
                let vb1 = _mm256_loadu_ps(b1.add(p));
                let vb2 = _mm256_loadu_ps(b2.add(p));
                let vb3 = _mm256_loadu_ps(b3.add(p));
                acc00 = _mm256_fmadd_ps(va0, vb0, acc00);
                acc01 = _mm256_fmadd_ps(va0, vb1, acc01);
                acc02 = _mm256_fmadd_ps(va0, vb2, acc02);
                acc03 = _mm256_fmadd_ps(va0, vb3, acc03);
                acc10 = _mm256_fmadd_ps(va1, vb0, acc10);
                acc11 = _mm256_fmadd_ps(va1, vb1, acc11);
                acc12 = _mm256_fmadd_ps(va1, vb2, acc12);
                acc13 = _mm256_fmadd_ps(va1, vb3, acc13);
                p += 8;
            }
            let mut d = [
                [
                    hsum256(acc00),
                    hsum256(acc01),
                    hsum256(acc02),
                    hsum256(acc03),
                ],
                [
                    hsum256(acc10),
                    hsum256(acc11),
                    hsum256(acc12),
                    hsum256(acc13),
                ],
            ];
            while p < k {
                let x0 = *a0.add(p);
                let x1 = *a1.add(p);
                d[0][0] = x0.mul_add(*b0.add(p), d[0][0]);
                d[0][1] = x0.mul_add(*b1.add(p), d[0][1]);
                d[0][2] = x0.mul_add(*b2.add(p), d[0][2]);
                d[0][3] = x0.mul_add(*b3.add(p), d[0][3]);
                d[1][0] = x1.mul_add(*b0.add(p), d[1][0]);
                d[1][1] = x1.mul_add(*b1.add(p), d[1][1]);
                d[1][2] = x1.mul_add(*b2.add(p), d[1][2]);
                d[1][3] = x1.mul_add(*b3.add(p), d[1][3]);
                p += 1;
            }
            let base = (i - rows.start) * n + j;
            out[base..base + 4].copy_from_slice(&d[0]);
            out[base + n..base + n + 4].copy_from_slice(&d[1]);
            i += 2;
        }
        if i < rows.end {
            let a_row = &a[i * k..(i + 1) * k];
            let base = (i - rows.start) * n + j;
            out[base] = dot8_fma(a_row, &b[j * k..(j + 1) * k]);
            out[base + 1] = dot8_fma(a_row, &b[(j + 1) * k..(j + 2) * k]);
            out[base + 2] = dot8_fma(a_row, &b[(j + 2) * k..(j + 3) * k]);
            out[base + 3] = dot8_fma(a_row, &b[(j + 3) * k..(j + 4) * k]);
        }
        j += 4;
    }
    while j < n {
        let b_row = &b[j * k..(j + 1) * k];
        for i in rows.clone() {
            let a_row = &a[i * k..(i + 1) * k];
            out[(i - rows.start) * n + j] = dot8_fma(a_row, b_row);
        }
        j += 1;
    }
}

/// Portable matmul-transpose chunk (non-FMA machines).
#[inline(always)]
fn matmul_transpose_chunk_body(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
) {
    for i in rows.clone() {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[(i - rows.start) * n..(i - rows.start) * n + n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Reduces one 8-lane accumulator to a scalar in a fixed pairwise order.
///
/// The association **must match [`hsum256`]** exactly (`lo+hi`, then
/// `movehl`, then the final lane add): which of the two reductions a given
/// output row takes depends on how `parallel_for` paired the rows, so any
/// divergence would make `matmul_transpose` results vary with
/// `PITOT_THREADS` — violating the kernel layer's determinism guarantee
/// (covered by the `*_row_partitioning_is_bitwise_identical` tests).
#[inline(always)]
fn reduce8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// FMA-dispatched dot product entry used by [`crate::ops::dot`]; returns
/// `None` when the wide path is unavailable and the caller should use its
/// portable loop.
#[inline]
pub(crate) fn dot_fast(a: &[f32], b: &[f32]) -> Option<f32> {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        return Some(unsafe { dot8_fma_entry(a, b) });
    }
    let _ = (a, b);
    None
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot8_fma_entry(a: &[f32], b: &[f32]) -> f32 {
    dot8_fma(a, b)
}

/// FMA-dispatched AXPY entry used by [`crate::ops::axpy_slice`]; returns
/// `false` when the wide path is unavailable.
#[inline]
pub(crate) fn axpy_fast(alpha: f32, x: &[f32], y: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { axpy_fma_entry(alpha, x, y) };
        return true;
    }
    let _ = (alpha, x, y);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_fma_entry(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = alpha.mul_add(xv, *yv);
    }
}

/// Fused gradient fan-out: `sum += src` and `dst += alpha·x` in one pass.
///
/// This is the inner loop of `accumulate_grads`' interferer fan-out, where
/// for every interferer one tower row is accumulated into a scratch sum
/// *and* the same-length gradient window receives `alpha·x`. Fusing the two
/// AXPYs halves the loop overhead and keeps four streams in flight per
/// iteration. Per element the arithmetic is exactly the two
/// [`crate::axpy_slice`] calls it replaces (`+` for the sum — `1·src`
/// fused or not rounds identically — and a fused multiply-add on the FMA
/// path for the destination), so training trajectories are bitwise
/// unchanged; a property test pins this.
///
/// # Panics
///
/// Panics if the four slice lengths disagree.
pub fn axpy_fanout(sum: &mut [f32], src: &[f32], alpha: f32, x: &[f32], dst: &mut [f32]) {
    assert_eq!(sum.len(), src.len(), "fanout sum/src length mismatch");
    assert_eq!(dst.len(), x.len(), "fanout dst/x length mismatch");
    assert_eq!(sum.len(), dst.len(), "fanout pair length mismatch");
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { axpy_fanout_fma(sum, src, alpha, x, dst) };
        return;
    }
    for i in 0..sum.len() {
        sum[i] += src[i];
        dst[i] += alpha * x[i];
    }
}

/// FMA clone of [`axpy_fanout`]; the destination update uses the same
/// per-element `alpha.mul_add(x, dst)` as [`axpy_fma_entry`] so the fused
/// form is bitwise identical to the two separate AXPYs it replaces.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_fanout_fma(sum: &mut [f32], src: &[f32], alpha: f32, x: &[f32], dst: &mut [f32]) {
    for i in 0..sum.len() {
        sum[i] += src[i];
        dst[i] = alpha.mul_add(x[i], dst[i]);
    }
}

/// Single 8-wide dot product for the FMA path (column tails).
#[inline(always)]
fn dot8_fma(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    for (av, bv) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        for l in 0..8 {
            acc[l] = av[l].mul_add(bv[l], acc[l]);
        }
    }
    let mut s = reduce8(acc);
    let tail = a.len() - a.len() % 8;
    for t in tail..a.len() {
        s = a[t].mul_add(b[t], s);
    }
    s
}

/// `out = aᵀ · b`, resizing `out` as needed.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn transpose_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, n) = (a.cols(), b.cols());
    out.resize(m, n);
    transpose_matmul_buf(a.view(), b.view(), out.as_mut_slice());
}

/// [`transpose_matmul_into`] writing into a pre-sized flat buffer (row-major
/// `a.cols() × b.cols()`) — the weight-gradient path of the flat gradient
/// plane, where the output window is a slice of a larger allocation.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()` or `out` has the wrong length.
pub fn transpose_matmul_buf(a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "transpose_matmul: ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.len(), m * n, "output buffer length");
    if m == 0 || n == 0 {
        return;
    }
    let (a_s, b_s) = (a.as_slice(), b.as_slice());
    let ptr = SendPtr::new(out.as_mut_ptr());
    par::parallel_for(m, min_rows(k, n), |rows| {
        // SAFETY: disjoint row windows (see `matmul_into`).
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(ptr.get().add(rows.start * n), rows.len() * n)
        };
        transpose_matmul_chunk(a_s, b_s, chunk, rows, k, m, n);
    });
}

/// Serial blocked kernel for `out_chunk = aᵀ[rows] · b`; `rows` ranges over
/// columns of `a` (= rows of the output). Dispatches to the wide code path
/// when available.
fn transpose_matmul_chunk(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { transpose_matmul_chunk_fma(a, b, out, rows, k, m, n) };
        return;
    }
    // The portable kernel accumulates into `out` and needs it zeroed; the
    // register-tile FMA kernel assigns every element instead.
    out.fill(0.0);
    transpose_matmul_chunk_body(a, b, out, rows, k, m, n);
}

/// Register-tile kernel for `out_chunk = aᵀ[rows] · b` (see
/// [`matmul_chunk_fma`]); identical structure, with the A broadcasts read
/// down a column of `a` (stride `m`, adjacent within each 4-row group).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn transpose_matmul_chunk_fma(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    let mut i = rows.start;
    while i + 4 <= rows.end {
        let ob = (i - rows.start) * n;
        let mut j = 0;
        while j + 16 <= n {
            let mut c00 = _mm256_setzero_ps();
            let mut c01 = _mm256_setzero_ps();
            let mut c10 = _mm256_setzero_ps();
            let mut c11 = _mm256_setzero_ps();
            let mut c20 = _mm256_setzero_ps();
            let mut c21 = _mm256_setzero_ps();
            let mut c30 = _mm256_setzero_ps();
            let mut c31 = _mm256_setzero_ps();
            for p in 0..k {
                let vb0 = _mm256_loadu_ps(bp.add(p * n + j));
                let vb1 = _mm256_loadu_ps(bp.add(p * n + j + 8));
                let arow = ap.add(p * m + i);
                let va0 = _mm256_set1_ps(*arow);
                c00 = _mm256_fmadd_ps(va0, vb0, c00);
                c01 = _mm256_fmadd_ps(va0, vb1, c01);
                let va1 = _mm256_set1_ps(*arow.add(1));
                c10 = _mm256_fmadd_ps(va1, vb0, c10);
                c11 = _mm256_fmadd_ps(va1, vb1, c11);
                let va2 = _mm256_set1_ps(*arow.add(2));
                c20 = _mm256_fmadd_ps(va2, vb0, c20);
                c21 = _mm256_fmadd_ps(va2, vb1, c21);
                let va3 = _mm256_set1_ps(*arow.add(3));
                c30 = _mm256_fmadd_ps(va3, vb0, c30);
                c31 = _mm256_fmadd_ps(va3, vb1, c31);
            }
            _mm256_storeu_ps(op.add(ob + j), c00);
            _mm256_storeu_ps(op.add(ob + j + 8), c01);
            _mm256_storeu_ps(op.add(ob + n + j), c10);
            _mm256_storeu_ps(op.add(ob + n + j + 8), c11);
            _mm256_storeu_ps(op.add(ob + 2 * n + j), c20);
            _mm256_storeu_ps(op.add(ob + 2 * n + j + 8), c21);
            _mm256_storeu_ps(op.add(ob + 3 * n + j), c30);
            _mm256_storeu_ps(op.add(ob + 3 * n + j + 8), c31);
            j += 16;
        }
        // Same narrower tail tiles as `matmul_chunk_fma` (8- then 4-wide
        // before scalars): per-lane fused multiply-adds in ascending k,
        // bitwise identical to the scalar tail they shortcut.
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            let mut c1 = _mm256_setzero_ps();
            let mut c2 = _mm256_setzero_ps();
            let mut c3 = _mm256_setzero_ps();
            for p in 0..k {
                let vb = _mm256_loadu_ps(bp.add(p * n + j));
                let arow = ap.add(p * m + i);
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(*arow), vb, c0);
                c1 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(1)), vb, c1);
                c2 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(2)), vb, c2);
                c3 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(3)), vb, c3);
            }
            _mm256_storeu_ps(op.add(ob + j), c0);
            _mm256_storeu_ps(op.add(ob + n + j), c1);
            _mm256_storeu_ps(op.add(ob + 2 * n + j), c2);
            _mm256_storeu_ps(op.add(ob + 3 * n + j), c3);
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm_setzero_ps();
            let mut c1 = _mm_setzero_ps();
            let mut c2 = _mm_setzero_ps();
            let mut c3 = _mm_setzero_ps();
            for p in 0..k {
                let vb = _mm_loadu_ps(bp.add(p * n + j));
                let arow = ap.add(p * m + i);
                c0 = _mm_fmadd_ps(_mm_set1_ps(*arow), vb, c0);
                c1 = _mm_fmadd_ps(_mm_set1_ps(*arow.add(1)), vb, c1);
                c2 = _mm_fmadd_ps(_mm_set1_ps(*arow.add(2)), vb, c2);
                c3 = _mm_fmadd_ps(_mm_set1_ps(*arow.add(3)), vb, c3);
            }
            _mm_storeu_ps(op.add(ob + j), c0);
            _mm_storeu_ps(op.add(ob + n + j), c1);
            _mm_storeu_ps(op.add(ob + 2 * n + j), c2);
            _mm_storeu_ps(op.add(ob + 3 * n + j), c3);
            j += 4;
        }
        while j < n {
            for r in 0..4 {
                let mut s = 0.0f32;
                for p in 0..k {
                    s = (*ap.add(p * m + i + r)).mul_add(*bp.add(p * n + j), s);
                }
                *op.add(ob + r * n + j) = s;
            }
            j += 1;
        }
        i += 4;
    }
    while i < rows.end {
        let ob = (i - rows.start) * n;
        let mut j = 0;
        while j + 8 <= n {
            let mut c0 = _mm256_setzero_ps();
            for p in 0..k {
                let vb = _mm256_loadu_ps(bp.add(p * n + j));
                let va = _mm256_set1_ps(*ap.add(p * m + i));
                c0 = _mm256_fmadd_ps(va, vb, c0);
            }
            _mm256_storeu_ps(op.add(ob + j), c0);
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm_setzero_ps();
            for p in 0..k {
                let vb = _mm_loadu_ps(bp.add(p * n + j));
                c0 = _mm_fmadd_ps(_mm_set1_ps(*ap.add(p * m + i)), vb, c0);
            }
            _mm_storeu_ps(op.add(ob + j), c0);
            j += 4;
        }
        while j < n {
            let mut s = 0.0f32;
            for p in 0..k {
                s = (*ap.add(p * m + i)).mul_add(*bp.add(p * n + j), s);
            }
            *op.add(ob + j) = s;
            j += 1;
        }
        i += 1;
    }
}

#[inline(always)]
fn transpose_matmul_chunk_body(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KC).min(k);
        let mut i = rows.start;
        while i + MR <= rows.end {
            let base = (i - rows.start) * n;
            let slab = &mut out[base..base + MR * n];
            let (r0, rest) = slab.split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for p in kb..kend {
                let a0 = a[p * m + i];
                let a1 = a[p * m + i + 1];
                let a2 = a[p * m + i + 2];
                let a3 = a[p * m + i + 3];
                let b_row = &b[p * n..(p + 1) * n];
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        while i < rows.end {
            let base = (i - rows.start) * n;
            let row = &mut out[base..base + n];
            for p in kb..kend {
                let av = a[p * m + i];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
            i += 1;
        }
        kb = kend;
    }
}

// ---------------------------------------------------------------------------
// Fused elementwise kernels for the flat parameter plane.
//
// The optimizer update used to be a scalar loop per parameter block; with
// all parameters in one contiguous plane it becomes a single fused pass:
// read the gradient once, update both AdaMax moments, and write the weight —
// four streams, one traversal, no temporaries. Both kernels are elementwise
// (no cross-element reductions), so results are trivially independent of
// `PITOT_THREADS`; the AVX2+FMA clones are selected by the same runtime
// dispatch as the matrix products.
// ---------------------------------------------------------------------------

/// One fused AdaMax update over a parameter window:
///
/// ```text
/// m ← β₁·m + (1−β₁)·g
/// u ← max(β₂·u, |g|)
/// p ← p − lr_t · m / (u + eps)
/// ```
///
/// `lr_t` is the bias-corrected step size `lr / (1 − β₁ᵗ)`. All four slices
/// must alias the same element index range of the (parameter, gradient,
/// first-moment, infinity-norm) planes.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn adamax_update(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    u: &mut [f32],
    lr_t: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    assert_eq!(p.len(), g.len(), "param/grad length mismatch");
    assert_eq!(p.len(), m.len(), "param/moment length mismatch");
    assert_eq!(p.len(), u.len(), "param/moment length mismatch");
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { adamax_update_fma(p, g, m, u, lr_t, beta1, beta2, eps) };
        return;
    }
    adamax_update_body(p, g, m, u, lr_t, beta1, beta2, eps);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn adamax_update_body(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    u: &mut [f32],
    lr_t: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    for i in 0..p.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        u[i] = (beta2 * u[i]).max(g[i].abs());
        p[i] -= lr_t * m[i] / (u[i] + eps);
    }
}

/// AVX2+FMA clone of [`adamax_update`]: 8 lanes per iteration, |g| via a
/// sign-bit mask, max and divide as single vector ops. The arithmetic uses
/// fused multiply-adds, so the last bits can differ from the portable body —
/// same per-machine dispatch contract as the matrix products.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn adamax_update_fma(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    u: &mut [f32],
    lr_t: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    use std::arch::x86_64::*;
    let n = p.len();
    let n8 = n - n % 8;
    let vb1 = _mm256_set1_ps(beta1);
    let vb1c = _mm256_set1_ps(1.0 - beta1);
    let vb2 = _mm256_set1_ps(beta2);
    let vlr = _mm256_set1_ps(lr_t);
    let veps = _mm256_set1_ps(eps);
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let pp = p.as_mut_ptr();
    let gp = g.as_ptr();
    let mp = m.as_mut_ptr();
    let up = u.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        let vg = _mm256_loadu_ps(gp.add(i));
        let vm = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(mp.add(i)), _mm256_mul_ps(vb1c, vg));
        let vu = _mm256_max_ps(
            _mm256_mul_ps(vb2, _mm256_loadu_ps(up.add(i))),
            _mm256_and_ps(vg, abs_mask),
        );
        let step = _mm256_div_ps(_mm256_mul_ps(vlr, vm), _mm256_add_ps(vu, veps));
        let vp = _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), step);
        _mm256_storeu_ps(mp.add(i), vm);
        _mm256_storeu_ps(up.add(i), vu);
        _mm256_storeu_ps(pp.add(i), vp);
        i += 8;
    }
    adamax_update_body(
        &mut p[n8..],
        &g[n8..],
        &mut m[n8..],
        &mut u[n8..],
        lr_t,
        beta1,
        beta2,
        eps,
    );
}

/// Fused scale-and-add: `y ← beta·y + alpha·x`.
///
/// This is the other optimizer-adjacent elementwise shape (momentum decay,
/// gradient-plane accumulation with a weight); `beta = 1` degenerates to
/// [`crate::axpy_slice`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn scale_add(y: &mut [f32], beta: f32, x: &[f32], alpha: f32) {
    assert_eq!(y.len(), x.len(), "scale_add length mismatch");
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        // SAFETY: feature presence checked at runtime by `fma_dispatch`.
        unsafe { scale_add_fma(y, beta, x, alpha) };
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = beta * *yv + alpha * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn scale_add_fma(y: &mut [f32], beta: f32, x: &[f32], alpha: f32) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = alpha.mul_add(xv, beta * *yv);
    }
}

// ---------------------------------------------------------------------------
// Vectorized activation maps.
//
// GELU is applied to every hidden unit of every entity on every training
// step, forward *and* backward. The scalar rational-tanh form is
// branch-free, but the compiler does not vectorize it through the generic
// map closures, leaving ~6 ns/element forward and ~15 ns/element backward —
// which made the activation maps, not the matrix products, the largest
// single cost of a training step. These kernels evaluate the same
// polynomials 8 lanes at a time behind the usual AVX2+FMA dispatch.
//
// Parallel chunking is aligned to 8-element groups (the residual tail runs
// once, on the caller), so results are bitwise identical across
// `PITOT_THREADS` even though the vector and scalar paths round differently.
// ---------------------------------------------------------------------------

/// Clamp beyond which the float tanh is indistinguishable from ±1.
const TANH_CLAMP: f32 = 7.998_811_7;
const TANH_A: [f32; 7] = [
    -2.760_768_5e-16,
    2.000_188e-13,
    -8.604_672e-11,
    5.122_297_1e-8,
    1.485_722_4e-5,
    6.372_619_3e-4,
    4.893_524_6e-3,
];
const TANH_B: [f32; 4] = [1.198_258_4e-6, 1.185_347_1e-4, 2.268_434_6e-3, 4.893_525e-3];
const GELU_SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEFF: f32 = 0.044_715;

/// Rational-polynomial tanh (the classic 13/6-degree float approximation
/// used by Eigen and the ML runtimes), accurate to a few ulps on the
/// clamped range. This is the scalar form; the vector kernels evaluate the
/// same polynomial with fused multiply-adds.
#[inline(always)]
pub fn tanh_f32(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let [a13, a11, a9, a7, a5, a3, a1] = TANH_A;
    let p = ((((((a13 * x2 + a11) * x2 + a9) * x2 + a7) * x2 + a5) * x2 + a3) * x2) + a1;
    let [b6, b4, b2, b0] = TANH_B;
    let q = ((b6 * x2 + b4) * x2 + b2) * x2 + b0;
    x * (p / q)
}

/// GELU, tanh approximation (the form used by JAX's `gelu(approximate=True)`).
#[inline(always)]
pub fn gelu_f32(x: f32) -> f32 {
    let inner = GELU_SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
    0.5 * x * (1.0 + tanh_f32(inner))
}

/// Derivative of [`gelu_f32`] with respect to its input.
#[inline(always)]
pub fn gelu_grad_f32(x: f32) -> f32 {
    let u = GELU_SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
    let t = tanh_f32(u);
    let du = GELU_SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// 8-lane rational tanh mirroring [`tanh_f32`] with FMA contraction.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn tanh_ps(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let clamp = _mm256_set1_ps(TANH_CLAMP);
    let x = _mm256_max_ps(
        _mm256_min_ps(x, clamp),
        _mm256_sub_ps(_mm256_setzero_ps(), clamp),
    );
    let x2 = _mm256_mul_ps(x, x);
    let mut p = _mm256_set1_ps(TANH_A[0]);
    for &c in &TANH_A[1..] {
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(c));
    }
    let mut q = _mm256_set1_ps(TANH_B[0]);
    for &c in &TANH_B[1..] {
        q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(c));
    }
    _mm256_mul_ps(x, _mm256_div_ps(p, q))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gelu_map_fma(data: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(data.len() % 8, 0);
    let s = _mm256_set1_ps(GELU_SQRT_2_OVER_PI);
    let c = _mm256_set1_ps(GELU_COEFF);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let p = data.as_mut_ptr();
    let mut i = 0;
    while i < data.len() {
        let x = _mm256_loadu_ps(p.add(i));
        let x2 = _mm256_mul_ps(x, x);
        let x3 = _mm256_mul_ps(x, x2);
        let inner = _mm256_mul_ps(s, _mm256_fmadd_ps(c, x3, x));
        let t = tanh_ps(inner);
        let y = _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, t));
        _mm256_storeu_ps(p.add(i), y);
        i += 8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gelu_backward_map_fma(pre: &[f32], dy: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(pre.len(), dy.len());
    debug_assert_eq!(pre.len() % 8, 0);
    let s = _mm256_set1_ps(GELU_SQRT_2_OVER_PI);
    let c = _mm256_set1_ps(GELU_COEFF);
    let s3c = _mm256_set1_ps(GELU_SQRT_2_OVER_PI * 3.0 * GELU_COEFF);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let xp = pre.as_ptr();
    let gp = dy.as_mut_ptr();
    let mut i = 0;
    while i < pre.len() {
        let x = _mm256_loadu_ps(xp.add(i));
        let x2 = _mm256_mul_ps(x, x);
        let x3 = _mm256_mul_ps(x, x2);
        let u = _mm256_mul_ps(s, _mm256_fmadd_ps(c, x3, x));
        let t = tanh_ps(u);
        // du = √(2/π)·(1 + 3·coeff·x²)
        let du = _mm256_fmadd_ps(s3c, x2, s);
        // g = ½(1 + t) + ½·x·(1 − t²)·du
        let sech2 = _mm256_fnmadd_ps(t, t, one);
        let grad = _mm256_fmadd_ps(
            _mm256_mul_ps(_mm256_mul_ps(half, x), sech2),
            du,
            _mm256_mul_ps(half, _mm256_add_ps(one, t)),
        );
        let g = _mm256_mul_ps(_mm256_loadu_ps(gp.add(i)), grad);
        _mm256_storeu_ps(gp.add(i), g);
        i += 8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tanh_map_fma(data: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(data.len() % 8, 0);
    let p = data.as_mut_ptr();
    let mut i = 0;
    while i < data.len() {
        _mm256_storeu_ps(p.add(i), tanh_ps(_mm256_loadu_ps(p.add(i))));
        i += 8;
    }
}

/// Minimum elements per parallel chunk for the activation maps (the
/// per-element cost is tens of FLOPs, so this keeps dispatch overhead low).
const MAP_GRAIN: usize = 4096;

/// In-place GELU over a flat buffer (AVX2+FMA when available, row-parallel
/// in 8-aligned chunks).
pub fn gelu_map(data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        let n8 = data.len() - data.len() % 8;
        let (head, tail) = data.split_at_mut(n8);
        par::parallel_for_rows(head, 8, MAP_GRAIN / 8, |_, chunk| {
            // SAFETY: feature presence checked by `fma_dispatch`.
            unsafe { gelu_map_fma(chunk) };
        });
        for v in tail {
            *v = gelu_f32(*v);
        }
        return;
    }
    par_map_slice(data, MAP_GRAIN, gelu_f32);
}

/// In-place GELU backward: `dy[i] *= gelu'(pre[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn gelu_backward_map(pre: &[f32], dy: &mut [f32]) {
    assert_eq!(pre.len(), dy.len(), "gelu backward length mismatch");
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        let n8 = pre.len() - pre.len() % 8;
        let (head, tail) = dy.split_at_mut(n8);
        par::parallel_for_rows(head, 8, MAP_GRAIN / 8, |start, chunk| {
            // SAFETY: feature presence checked by `fma_dispatch`.
            unsafe { gelu_backward_map_fma(&pre[start * 8..start * 8 + chunk.len()], chunk) };
        });
        for (g, &x) in tail.iter_mut().zip(&pre[n8..]) {
            *g *= gelu_grad_f32(x);
        }
        return;
    }
    for (g, &x) in dy.iter_mut().zip(pre) {
        *g *= gelu_grad_f32(x);
    }
}

/// In-place rational tanh over a flat buffer (AVX2+FMA when available).
pub fn tanh_map(data: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if fma_dispatch() {
        let n8 = data.len() - data.len() % 8;
        let (head, tail) = data.split_at_mut(n8);
        par::parallel_for_rows(head, 8, MAP_GRAIN / 8, |_, chunk| {
            // SAFETY: feature presence checked by `fma_dispatch`.
            unsafe { tanh_map_fma(chunk) };
        });
        for v in tail {
            *v = tanh_f32(*v);
        }
        return;
    }
    par_map_slice(data, MAP_GRAIN, tanh_f32);
}

/// Parallel in-place map over a flat buffer (used by the big elementwise
/// activation maps).
pub(crate) fn par_map_slice<F>(data: &mut [f32], min_chunk: usize, f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    let len = data.len();
    let ptr = SendPtr::new(data.as_mut_ptr());
    par::parallel_for(len, min_chunk, |range| {
        // SAFETY: disjoint index ranges over one allocation.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(ptr.get().add(range.start), range.len()) };
        for v in chunk {
            *v = f(*v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_kernels_match_reference_on_odd_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (9, 300, 2),
            (33, 17, 65),
        ] {
            let a = Matrix::randn(m, k, &mut rng);
            let b = Matrix::randn(k, n, &mut rng);
            let mut out = Matrix::zeros(0, 0);
            matmul_into(&a, &b, &mut out);
            close(&out, &reference::matmul(&a, &b));

            let bt = Matrix::randn(n, k, &mut rng);
            matmul_transpose_into(&a, &bt, &mut out);
            close(&out, &reference::matmul_transpose(&a, &bt));

            let at = Matrix::randn(k, m, &mut rng);
            transpose_matmul_into(&at, &b, &mut out);
            close(&out, &reference::transpose_matmul(&at, &b));
        }
    }

    #[test]
    fn into_reuses_capacity_without_allocating() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Matrix::randn(16, 8, &mut rng);
        let b = Matrix::randn(8, 12, &mut rng);
        let mut out = Matrix::zeros(16, 12);
        crate::alloc_count::reset();
        matmul_into(&a, &b, &mut out);
        matmul_into(&a, &b, &mut out);
        assert_eq!(crate::alloc_count::matrix_allocs(), 0);
    }

    /// Computes `chunk_fn` over `0..m` both as one chunk and as every
    /// two-way split, asserting the bits agree. This is what makes results
    /// independent of `PITOT_THREADS`: whatever the pool's row partition,
    /// every output element sees the same arithmetic. Splits at odd offsets
    /// matter — they shift which rows land in the paired/4-row microkernel
    /// paths versus the leftover-row paths.
    fn assert_split_invariant(
        m: usize,
        n: usize,
        chunk_fn: impl Fn(&mut [f32], Range<usize>),
        label: &str,
    ) {
        let mut whole = vec![0.0f32; m * n];
        chunk_fn(&mut whole, 0..m);
        for split in 1..m {
            let mut lo = vec![0.0f32; split * n];
            let mut hi = vec![0.0f32; (m - split) * n];
            chunk_fn(&mut lo, 0..split);
            chunk_fn(&mut hi, split..m);
            lo.extend_from_slice(&hi);
            assert_eq!(lo, whole, "{label}: split at {split}");
        }
    }

    #[test]
    fn matmul_row_partitioning_is_bitwise_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let (m, k, n) = (13, 37, 9);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        assert_split_invariant(
            m,
            n,
            |out, rows| matmul_chunk(a.as_slice(), b.as_slice(), out, rows, k, n),
            "matmul",
        );
    }

    #[test]
    fn matmul_transpose_row_partitioning_is_bitwise_identical() {
        // Regression test: the FMA path's paired-row kernel reduces its
        // accumulators via hsum256 while leftover odd rows go through
        // dot8_fma/reduce8, and which path a row takes depends on the
        // split. The two reductions must associate identically or results
        // vary with thread count. k deliberately not a multiple of 8 and n
        // not a multiple of 4 so the scalar tails are exercised too.
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let (m, k, n) = (13, 37, 9);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(n, k, &mut rng);
        assert_split_invariant(
            m,
            n,
            |out, rows| matmul_transpose_chunk(a.as_slice(), b.as_slice(), out, rows, k, n),
            "matmul_transpose",
        );
    }

    #[test]
    fn transpose_matmul_row_partitioning_is_bitwise_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let (m, k, n) = (13, 37, 9);
        let a = Matrix::randn(k, m, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        assert_split_invariant(
            m,
            n,
            |out, rows| transpose_matmul_chunk(a.as_slice(), b.as_slice(), out, rows, k, m, n),
            "transpose_matmul",
        );
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut out = Matrix::zeros(7, 7);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out.shape(), (0, 3));

        // Empty shared dimension: the product is defined and all-zero.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut out = Matrix::full(2, 3, 9.0);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, Matrix::zeros(2, 3));
    }
}
