//! Matrix-allocation counter for no-alloc regression tests.
//!
//! Every code path in this crate that takes a fresh heap buffer for matrix
//! data calls `record`; hot-path tests reset the counter, run a
//! steady-state window, and assert it stayed at zero. The counter is
//! thread-local, which is exactly right for those tests: the training loop
//! under test runs on one thread, and the kernel pool never allocates.

use std::cell::Cell;

thread_local! {
    static MATRIX_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Resets this thread's matrix-allocation counter to zero.
pub fn reset() {
    MATRIX_ALLOCS.with(|c| c.set(0));
}

/// Number of matrix-data heap allocations on this thread since [`reset`].
pub fn matrix_allocs() -> u64 {
    MATRIX_ALLOCS.with(Cell::get)
}

/// Records one fresh matrix-data allocation of `len` floats; zero-length
/// "allocations" never touch the heap and are not counted (crate-internal).
#[inline]
pub(crate) fn record_len(len: usize) {
    if len > 0 {
        MATRIX_ALLOCS.with(|c| c.set(c.get() + 1));
    }
}

/// Records a fresh numeric-plane allocation made *outside* this crate (the
/// flat parameter/gradient/moment planes in `pitot-nn`), so the zero-alloc
/// assertions cover the full optimizer step — forward, backward, and the
/// fused update — not just the matrix products. Zero-length buffers are not
/// counted.
#[inline]
pub fn record_buffer(len: usize) {
    record_len(len);
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn constructors_and_clones_are_counted() {
        super::reset();
        let m = Matrix::zeros(4, 4);
        let _c = m.clone();
        let _e = Matrix::eye(2);
        assert_eq!(super::matrix_allocs(), 3);
        super::reset();
        assert_eq!(super::matrix_allocs(), 0);
    }

    #[test]
    fn in_place_ops_do_not_count() {
        let mut m = Matrix::zeros(8, 8);
        super::reset();
        m.fill(1.5);
        m.scale(2.0);
        m.map_inplace(|v| v + 1.0);
        m.resize(4, 4); // shrink reuses the buffer
        assert_eq!(super::matrix_allocs(), 0);
    }
}
