//! A reusable buffer arena for allocation-free hot loops.
//!
//! [`Scratch`] recycles `Vec<f32>` backing stores between uses: the first
//! pass through a training step allocates, every later pass serves the same
//! buffers back. Buffers are matched by capacity (first fit), so a loop that
//! takes and recycles the same shapes settles into zero allocations.
//!
//! ```
//! use pitot_linalg::{Matrix, Scratch};
//!
//! let mut scratch = Scratch::new();
//! let m = scratch.take_matrix(4, 8); // fresh allocation
//! scratch.recycle_matrix(m);
//! pitot_linalg::alloc_count::reset();
//! let m = scratch.take_matrix(8, 4); // same 32-float buffer, reshaped
//! assert_eq!(pitot_linalg::alloc_count::matrix_allocs(), 0);
//! assert_eq!(m.shape(), (8, 4));
//! # drop(m);
//! ```

use crate::{alloc_count, Matrix};

/// A pool of recycled `f32` buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub const fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// Takes a zeroed buffer of exactly `len` floats, reusing a recycled
    /// allocation when one is large enough.
    pub fn take_vec(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match self.free.iter().position(|b| b.capacity() >= len) {
            Some(i) => self.free.swap_remove(i),
            None => {
                alloc_count::record_len(len);
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a zeroed `rows × cols` matrix backed by a recycled buffer.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_vec(rows * cols))
    }

    /// Returns a buffer to the arena for reuse.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Returns a matrix's backing buffer to the arena for reuse.
    pub fn recycle_matrix(&mut self, m: Matrix) {
        self.recycle_vec(m.into_vec());
    }

    /// Number of buffers currently parked in the arena.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_recycled_contents() {
        let mut s = Scratch::new();
        let mut m = s.take_matrix(2, 2);
        m.fill(7.0);
        s.recycle_matrix(m);
        let again = s.take_matrix(2, 2);
        assert_eq!(again.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn first_fit_reuses_larger_buffers() {
        let mut s = Scratch::new();
        let big = s.take_vec(100);
        s.recycle_vec(big);
        alloc_count::reset();
        let small = s.take_vec(10);
        assert_eq!(alloc_count::matrix_allocs(), 0);
        assert_eq!(small.len(), 10);
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn undersized_buffers_are_not_matched() {
        let mut s = Scratch::new();
        s.recycle_vec(vec![0.0; 4]);
        alloc_count::reset();
        let v = s.take_vec(16);
        assert_eq!(alloc_count::matrix_allocs(), 1);
        assert_eq!(v.len(), 16);
        // The too-small buffer stays parked for a later fit.
        assert_eq!(s.parked(), 1);
    }
}
