//! The row-major dense matrix type.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the only tensor type in the workspace. Vectors are represented
/// as `1×n` or `n×1` matrices, or as plain slices where that is clearer.
///
/// # Examples
///
/// ```
/// use pitot_linalg::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        crate::alloc_count::record_len(self.data.len());
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.copy_from(source);
    }
}

impl Default for Matrix {
    /// The empty `0×0` matrix (no heap allocation).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        crate::alloc_count::record_len(rows * cols);
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        crate::alloc_count::record_len(rows * cols);
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot back a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        crate::alloc_count::record_len(r * c);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        crate::alloc_count::record_len(rows * cols);
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with standard-normal entries (Box–Muller; no extra deps).
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let n = rows * cols;
        crate::alloc_count::record_len(n);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform produces pairs of independent normals.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the matrix to `rows × cols`, reusing the backing buffer when
    /// its capacity suffices (the usual case in warm hot loops).
    ///
    /// Entry values are **unspecified** after a resize; callers are expected
    /// to overwrite them (every `*_into` kernel does).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        if len > self.data.capacity() {
            crate::alloc_count::record_len(len);
        }
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Sets every entry to `value` without reallocating.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Makes `self` an entrywise copy of `other`, reusing the backing buffer
    /// when possible.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// In-place [`Matrix::hcat`]: `out = [self | other]` without allocating
    /// when `out` has capacity.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "row mismatch in hcat");
        out.resize(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// In-place [`Matrix::columns`]: copies the `cols`-wide slab starting at
    /// column `start` into `out` without allocating when `out` has capacity.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn columns_into(&self, start: usize, cols: usize, out: &mut Matrix) {
        assert!(start + cols <= self.cols, "column slice out of range");
        out.resize(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + cols]);
        }
    }

    /// Borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column {c} out of bounds for {} columns",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (one output row per index).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (o, &i) in indices.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i));
        }
        out
    }

    /// Adds `other`'s rows into this matrix at the given indices
    /// (`self[idx[o]] += other[o]`), accumulating on repeats.
    ///
    /// This is the adjoint of [`Matrix::gather_rows`] and is the backbone of
    /// embedding-table backprop.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or an index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], other: &Matrix) {
        assert_eq!(indices.len(), other.rows, "index/row count mismatch");
        assert_eq!(self.cols, other.cols, "column mismatch");
        for (o, &i) in indices.iter().enumerate() {
            let dst = self.row_mut(i);
            let src = other.row(o);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch in hcat");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns the `cols`-wide slab starting at column `start` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the matrix width.
    pub fn columns(&self, start: usize, cols: usize) -> Matrix {
        assert!(start + cols <= self.cols, "column slice out of range");
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + cols]);
        }
        out
    }
}

/// A borrowed row-major matrix view over a plain slice.
///
/// This is how the flat parameter plane is consumed: a layer's weight block
/// lives as a contiguous window of one shared buffer, and the kernels accept
/// `MatRef` operands so no `Matrix` needs to own (or copy) the block. Cheap
/// to copy; shape-checked at construction.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
}

impl<'a> MatRef<'a> {
    /// Wraps a flat row-major slice as a `rows × cols` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[inline]
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "slice of length {} cannot view a {rows}x{cols} matrix",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The backing flat row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        self.data
    }

    /// Borrows row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the view into an owned matrix.
    pub fn to_matrix(&self) -> Matrix {
        crate::alloc_count::record_len(self.data.len());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }
}

impl Matrix {
    /// Borrows the whole matrix as a [`MatRef`] view.
    #[inline]
    pub fn view(&self) -> MatRef<'_> {
        MatRef {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// [`Matrix::hcat_into`] with a view right-hand side:
    /// `out = [self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat_view_into(&self, other: MatRef<'_>, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows(), "row mismatch in hcat");
        out.resize(self.rows, self.cols + other.cols());
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// [`Matrix::columns_into`] writing into a pre-sized flat buffer
    /// (row-major `rows × cols`), e.g. a window of a gradient plane.
    ///
    /// # Panics
    ///
    /// Panics if the column range exceeds the width or `out` has the wrong
    /// length.
    pub fn columns_into_buf(&self, start: usize, cols: usize, out: &mut [f32]) {
        assert!(start + cols <= self.cols, "column slice out of range");
        assert_eq!(out.len(), self.rows * cols, "output buffer length");
        for (r, dst) in out.chunks_exact_mut(cols.max(1)).enumerate() {
            dst.copy_from_slice(&self.row(r)[start..start + cols]);
        }
    }
}

/// Fills a slice with standard-normal entries (the same Box–Muller stream
/// [`Matrix::randn`] uses), for initializing windows of a flat parameter
/// plane in place.
pub fn fill_randn<R: Rng + ?Sized>(out: &mut [f32], rng: &mut R) {
    let n = out.len();
    let mut i = 0;
    while i < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out[i] = r * theta.cos();
        i += 1;
        if i < n {
            out[i] = r * theta.sin();
            i += 1;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::full(1, 4, 2.5).as_slice(), &[2.5; 4]);
        let i = Matrix::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot back")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gather_scatter_are_adjoint_on_simple_case() {
        let table = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let picked = table.gather_rows(&[2, 0, 2]);
        assert_eq!(picked.row(0), &[2.0, 2.0]);
        assert_eq!(picked.row(1), &[1.0, 0.0]);

        let mut grad = Matrix::zeros(3, 2);
        grad.scatter_add_rows(&[2, 0, 2], &Matrix::full(3, 2, 1.0));
        assert_eq!(grad.row(2), &[2.0, 2.0]); // index 2 hit twice
        assert_eq!(grad.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn hcat_and_columns() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
        assert_eq!(h.columns(1, 2), b);
    }

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let m = Matrix::randn(100, 100, &mut rng);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 10_000.0;
        let var: f32 = m.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn col_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "column slice out of range")]
    fn columns_bounds_checked() {
        let _ = Matrix::zeros(2, 3).columns(2, 2);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn hcat_checks_rows() {
        let _ = Matrix::zeros(2, 1).hcat(&Matrix::zeros(3, 1));
    }

    #[test]
    fn uniform_respects_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let m = Matrix::uniform(20, 20, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn display_never_empty() {
        let shown = format!("{}", Matrix::zeros(1, 1));
        assert!(shown.contains("Matrix 1x1"));
        let big = format!("{}", Matrix::zeros(20, 20));
        assert!(big.contains('…'), "large matrices elide");
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, -2.0], &[0.0, 3.25]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
