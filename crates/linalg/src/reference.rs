//! Naive reference kernels: the oracle the blocked kernels are tested
//! against, and the "before" side of the kernel benchmarks.
//!
//! These are deliberately the simplest possible triple loops — no blocking,
//! no unrolling, no parallelism — so their correctness is inspectable at a
//! glance. They allocate their outputs and are O(m·k·n) with poor cache
//! behaviour; never call them from production paths.

use crate::quant::QuantizedMatrix;
use crate::Matrix;

/// `a · b` by the textbook i-j-k triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// `a · bᵀ` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference matmul_transpose shape");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(j, p)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// Scalar AdaMax update, element by element — the oracle for the fused
/// [`crate::adamax_update`] kernel. Same recurrences, no fusion, no SIMD.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn adamax_update(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    u: &mut [f32],
    lr_t: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    assert_eq!(p.len(), g.len(), "reference adamax length mismatch");
    assert_eq!(p.len(), m.len(), "reference adamax length mismatch");
    assert_eq!(p.len(), u.len(), "reference adamax length mismatch");
    for i in 0..p.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        u[i] = (beta2 * u[i]).max(g[i].abs());
        p[i] -= lr_t * m[i] / (u[i] + eps);
    }
}

/// Scalar symmetric per-row quantization of one row — the oracle for
/// [`crate::quant::QuantizedMatrix`]'s packing: scale `max|x|/127` (zero
/// for an all-zero row), values `round(x/s)` clamped to `[-127, 127]`.
pub fn quantize_row(row: &[f32]) -> (Vec<i8>, f32) {
    let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 {
        return (vec![0; row.len()], 0.0);
    }
    let scale = max / 127.0;
    let q = row
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// Quantized row-against-row product by the textbook triple loop with an
/// i32 accumulator — the bitwise oracle for [`crate::quant::matmul_q_into`]
/// and [`crate::quant::matmul_transpose_q_into`] (integer accumulation is
/// exact, so the production kernels must match this *exactly*, not within
/// a tolerance).
///
/// # Panics
///
/// Panics if the stored column (dot) dimensions disagree.
pub fn matmul_q(a: &QuantizedMatrix, b: &QuantizedMatrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference matmul_q shape mismatch");
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for (&x, &y) in a.qrow(i).iter().zip(b.qrow(j)) {
                acc += i32::from(x) * i32::from(y);
            }
            out[(i, j)] = (acc as f32) * (a.scales()[i] * b.scales()[j]);
        }
    }
    out
}

/// Scalar fused fan-out oracle: `sum += src` and `dst += alpha·x`,
/// element by element — the oracle for [`crate::axpy_fanout`].
///
/// # Panics
///
/// Panics if the pair lengths disagree.
pub fn axpy_fanout(sum: &mut [f32], src: &[f32], alpha: f32, x: &[f32], dst: &mut [f32]) {
    assert_eq!(sum.len(), src.len(), "reference fanout length mismatch");
    assert_eq!(dst.len(), x.len(), "reference fanout length mismatch");
    for (s, &v) in sum.iter_mut().zip(src) {
        *s += v;
    }
    for (d, &v) in dst.iter_mut().zip(x) {
        *d += alpha * v;
    }
}

/// `aᵀ · b` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference transpose_matmul shape");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(p, i)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}
