//! Naive reference kernels: the oracle the blocked kernels are tested
//! against, and the "before" side of the kernel benchmarks.
//!
//! These are deliberately the simplest possible triple loops — no blocking,
//! no unrolling, no parallelism — so their correctness is inspectable at a
//! glance. They allocate their outputs and are O(m·k·n) with poor cache
//! behaviour; never call them from production paths.

use crate::Matrix;

/// `a · b` by the textbook i-j-k triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// `a · bᵀ` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference matmul_transpose shape");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(j, p)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// `aᵀ · b` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference transpose_matmul shape");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(p, i)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}
