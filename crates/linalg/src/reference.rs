//! Naive reference kernels: the oracle the blocked kernels are tested
//! against, and the "before" side of the kernel benchmarks.
//!
//! These are deliberately the simplest possible triple loops — no blocking,
//! no unrolling, no parallelism — so their correctness is inspectable at a
//! glance. They allocate their outputs and are O(m·k·n) with poor cache
//! behaviour; never call them from production paths.

use crate::Matrix;

/// `a · b` by the textbook i-j-k triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// `a · bᵀ` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transpose(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference matmul_transpose shape");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(i, p)] * b[(j, p)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// Scalar AdaMax update, element by element — the oracle for the fused
/// [`crate::adamax_update`] kernel. Same recurrences, no fusion, no SIMD.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn adamax_update(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    u: &mut [f32],
    lr_t: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
) {
    assert_eq!(p.len(), g.len(), "reference adamax length mismatch");
    assert_eq!(p.len(), m.len(), "reference adamax length mismatch");
    assert_eq!(p.len(), u.len(), "reference adamax length mismatch");
    for i in 0..p.len() {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        u[i] = (beta2 * u[i]).max(g[i].abs());
        p[i] -= lr_t * m[i] / (u[i] + eps);
    }
}

/// `aᵀ · b` by the textbook triple loop.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference transpose_matmul shape");
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[(p, i)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}
