//! Property tests pinning the blocked/parallel kernels to the naive
//! reference oracle in `pitot_linalg::reference`.
//!
//! Shapes are drawn from ranges that include every degenerate class the
//! kernels special-case: empty (`0×n`, `m×0`, shared dimension 0), `1×1`,
//! tall-skinny, and short-wide. The tolerance is relative at `1e-4`, loose
//! enough for f32 re-association headroom even though today's kernels are
//! bitwise order-preserving.

use pitot_linalg::{reference, MatRef, Matrix, QuantizedMatrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn assert_close(got: &Matrix, want: &Matrix) {
    assert_eq!(got.shape(), want.shape(), "shape mismatch");
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "kernel {x} vs reference {y}"
        );
    }
}

proptest! {
    #[test]
    fn matmul_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        // Start from a dirty, wrongly-shaped buffer: `_into` must fully
        // overwrite and reshape it.
        let mut out = Matrix::full(3, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_close(&out, &reference::matmul(&a, &b));
        assert_close(&a.matmul(&b), &reference::matmul(&a, &b));
    }

    #[test]
    fn matmul_transpose_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(n, k, &mut rng);
        let mut out = Matrix::full(2, 5, f32::NAN);
        a.matmul_transpose_into(&b, &mut out);
        assert_close(&out, &reference::matmul_transpose(&a, &b));
    }

    #[test]
    fn transpose_matmul_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(k, m, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let mut out = Matrix::full(1, 1, f32::NAN);
        a.transpose_matmul_into(&b, &mut out);
        assert_close(&out, &reference::transpose_matmul(&a, &b));
    }

    #[test]
    fn tall_and_wide_shapes_cross_the_blocking_factors(
        tall in 200usize..600, thin in 1usize..4, seed in 0u64..100,
    ) {
        // Exercise shared dimensions beyond KC = 256 and row counts beyond
        // any parallel grain, in both orientations.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(tall, thin, &mut rng);
        let b = Matrix::randn(thin, tall.min(64), &mut rng);
        assert_close(&a.matmul(&b), &reference::matmul(&a, &b));

        let c = Matrix::randn(thin, tall, &mut rng);
        let d = Matrix::randn(tall, thin + 2, &mut rng);
        // Shared dimension `tall` > KC tiles across k-blocks.
        assert_close(&c.matmul(&d), &reference::matmul(&c, &d));
        let ct = Matrix::randn(tall, thin, &mut rng);
        assert_close(
            &ct.transpose_matmul(&d),
            &reference::transpose_matmul(&ct, &d),
        );
        let e = Matrix::randn(thin + 1, tall, &mut rng);
        let f = Matrix::randn(thin + 3, tall, &mut rng);
        assert_close(
            &e.matmul_transpose(&f),
            &reference::matmul_transpose(&e, &f),
        );
    }

    #[test]
    fn one_by_one_is_scalar_multiplication(x in -10.0f32..10.0, y in -10.0f32..10.0) {
        let a = Matrix::full(1, 1, x);
        let b = Matrix::full(1, 1, y);
        for product in [a.matmul(&b), a.matmul_transpose(&b), a.transpose_matmul(&b)] {
            prop_assert!((product[(0, 0)] - x * y).abs() <= 1e-5 * (1.0 + (x * y).abs()));
        }
    }

    /// The view entry points (flat-plane windows) are the same kernels as
    /// the `Matrix` entry points — bitwise, not approximately.
    #[test]
    fn view_kernels_are_bitwise_identical_to_matrix_kernels(
        m in 1usize..10, k in 1usize..24, n in 1usize..12, seed in 0u64..5_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let mut via_matrix = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut via_matrix);
        let mut via_view = Matrix::zeros(0, 0);
        pitot_linalg::kernels::matmul_view_into(
            MatRef::new(a.as_slice(), m, k),
            MatRef::new(b.as_slice(), k, n),
            &mut via_view,
        );
        prop_assert_eq!(via_matrix.as_slice(), via_view.as_slice());

        let at = Matrix::randn(k, m, &mut rng);
        let mut grads = vec![f32::NAN; m * n];
        pitot_linalg::kernels::transpose_matmul_buf(at.view(), b.view(), &mut grads);
        let mut want = Matrix::zeros(0, 0);
        at.transpose_matmul_into(&b, &mut want);
        prop_assert_eq!(want.as_slice(), &grads[..]);
    }

    /// The fused (possibly SIMD) AdaMax kernel tracks the scalar oracle
    /// over multiple consecutive steps, including the moment state.
    #[test]
    fn fused_adamax_matches_scalar_reference(
        len in 1usize..200, steps in 1usize..6, seed in 0u64..5_000, lr in 1e-4f32..0.1,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let init = Matrix::randn(1, len, &mut rng);
        let (mut p_f, mut m_f, mut u_f) =
            (init.as_slice().to_vec(), vec![0.0f32; len], vec![0.0f32; len]);
        let (mut p_r, mut m_r, mut u_r) = (p_f.clone(), m_f.clone(), u_f.clone());
        for t in 1..=steps {
            let g = Matrix::randn(1, len, &mut rng);
            let lr_t = lr / (1.0 - 0.9f32.powi(t as i32));
            pitot_linalg::adamax_update(
                &mut p_f, g.as_slice(), &mut m_f, &mut u_f, lr_t, 0.9, 0.999, 1e-8,
            );
            reference::adamax_update(
                &mut p_r, g.as_slice(), &mut m_r, &mut u_r, lr_t, 0.9, 0.999, 1e-8,
            );
        }
        for ((pf, pr), (uf, ur)) in p_f.iter().zip(&p_r).zip(u_f.iter().zip(&u_r)) {
            prop_assert!(
                (pf - pr).abs() <= 1e-5 * (1.0 + pf.abs().max(pr.abs())),
                "param {} vs reference {}", pf, pr
            );
            prop_assert!(*uf >= 0.0 && (uf - ur).abs() <= 1e-5 * (1.0 + ur.abs()));
        }
    }

    /// AdaMax steps are bounded by lr_t regardless of gradient scale — the
    /// defining property of the infinity-norm moment.
    #[test]
    fn fused_adamax_step_is_bounded(
        len in 1usize..64, scale in 1.0f32..1e6, seed in 0u64..2_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p = vec![0.0f32; len];
        let (mut m, mut u) = (vec![0.0f32; len], vec![0.0f32; len]);
        let mut g = Matrix::randn(1, len, &mut rng).into_vec();
        for v in &mut g {
            *v *= scale;
        }
        let lr_t = 0.001 / (1.0 - 0.9f32);
        pitot_linalg::adamax_update(&mut p, &g, &mut m, &mut u, lr_t, 0.9, 0.999, 1e-8);
        for v in &p {
            prop_assert!(v.abs() <= lr_t * 1.001, "step {} exceeds bound {}", v, lr_t);
        }
    }

    /// The vectorized GELU maps track the scalar polynomial to float
    /// precision, and chunk-aligned parallelism keeps them bitwise stable
    /// for any buffer length (vector body + scalar tail).
    #[test]
    fn gelu_maps_match_scalar_reference(len in 0usize..200, seed in 0u64..2_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pre = {
            let mut v = Matrix::randn(1, len, &mut rng).into_vec();
            for x in &mut v {
                *x *= 3.0;
            }
            v
        };
        let mut fwd = pre.clone();
        pitot_linalg::kernels::gelu_map(&mut fwd);
        for (&y, &x) in fwd.iter().zip(&pre) {
            let want = pitot_linalg::kernels::gelu_f32(x);
            prop_assert!((y - want).abs() <= 1e-5 * (1.0 + want.abs()), "gelu({x}): {y} vs {want}");
        }

        let dy0 = Matrix::randn(1, len, &mut rng).into_vec();
        let mut dy = dy0.clone();
        pitot_linalg::kernels::gelu_backward_map(&pre, &mut dy);
        for ((&g, &g0), &x) in dy.iter().zip(&dy0).zip(&pre) {
            let want = g0 * pitot_linalg::kernels::gelu_grad_f32(x);
            // Saturated inputs cancel to gradients near zero through
            // (1 − tanh²)·x, where the fused-vs-unfused tanh difference is
            // amplified by |x|; 2e-4 still flags any real polynomial defect
            // (a wrong coefficient shifts results by ≥1e-2).
            prop_assert!((g - want).abs() <= 2e-4 * (1.0 + want.abs()), "gelu'({x})");
        }
    }

    /// Int8 round trip: rounding loses at most half a quantization step
    /// per element (`|x − s·q| ≤ s/2`, the bound documented in
    /// `pitot_linalg::quant`), and the stored codes match the scalar
    /// reference quantizer exactly.
    #[test]
    fn quantize_round_trip_stays_within_half_a_step(
        rows in 0usize..10, cols in 0usize..48, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = Matrix::randn(rows, cols, &mut rng);
        let q = QuantizedMatrix::from_rows(m.view());
        let back = q.dequantize();
        for i in 0..rows {
            let s = q.scales()[i];
            let (want_q, want_s) = reference::quantize_row(m.row(i));
            prop_assert_eq!(s.to_bits(), want_s.to_bits(), "row {} scale", i);
            prop_assert_eq!(q.qrow(i), &want_q[..], "row {} codes", i);
            for (x, y) in m.row(i).iter().zip(back.row(i)) {
                prop_assert!(
                    (x - y).abs() <= 0.5 * s + 1e-7,
                    "round trip {} vs {} exceeds s/2 = {}", x, y, 0.5 * s
                );
            }
        }
    }

    /// The quantized product tracks the f32 scalar oracle within the
    /// accumulated per-term bound `Σ_p (|a_p|·εb + |b_p|·εa + εa·εb)` with
    /// `εa = sa/2`, `εb = sb/2` — the dot-product bound documented in
    /// `pitot_linalg::quant`. Shape ranges include empty, 1×1, tall, and
    /// wide classes.
    #[test]
    fn quantized_matmul_tracks_f32_oracle_within_accumulated_bound(
        m in 0usize..10, k in 0usize..64, n in 0usize..12, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let qa = QuantizedMatrix::from_rows(a.view());
        let qb = QuantizedMatrix::from_cols(b.view());
        let mut got = Matrix::full(3, 3, f32::NAN);
        pitot_linalg::matmul_q_into(&qa, &qb, &mut got);
        let want = reference::matmul(&a, &b);
        prop_assert_eq!(got.shape(), want.shape());
        for i in 0..m {
            let ea = 0.5 * qa.scales()[i];
            for j in 0..n {
                let eb = 0.5 * qb.scales()[j];
                let bound: f32 = (0..k)
                    .map(|p| a.row(i)[p].abs() * eb + b.row(p)[j].abs() * ea + ea * eb)
                    .sum();
                let err = (got[(i, j)] - want[(i, j)]).abs();
                // Small f32 headroom: the bound itself is accumulated in
                // f32 and the oracle rounds once per term.
                prop_assert!(
                    err <= bound * (1.0 + 1e-4) + 1e-6,
                    "({},{}): err {} exceeds accumulated bound {}", i, j, err, bound
                );
            }
        }
    }

    /// Both quantized entry points are bitwise identical to the naive
    /// integer oracle — exact i32 accumulation leaves no room for dispatch
    /// (scalar vs AVX2) or partitioning differences.
    #[test]
    fn quantized_products_are_bitwise_identical_to_integer_oracle(
        m in 0usize..10, k in 0usize..80, n in 0usize..12, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let qa = QuantizedMatrix::from_rows(a.view());

        let b = Matrix::randn(k, n, &mut rng);
        let qb = QuantizedMatrix::from_cols(b.view());
        let mut out = Matrix::full(2, 2, f32::NAN);
        pitot_linalg::matmul_q_into(&qa, &qb, &mut out);
        prop_assert_eq!(out.as_slice(), reference::matmul_q(&qa, &qb).as_slice());

        let bt = Matrix::randn(n, k, &mut rng);
        let qbt = QuantizedMatrix::from_rows(bt.view());
        pitot_linalg::matmul_transpose_q_into(&qa, &qbt, &mut out);
        prop_assert_eq!(out.as_slice(), reference::matmul_q(&qa, &qbt).as_slice());
    }

    /// Tall/wide quantized products cross the parallel grain and the AVX2
    /// 16-lane blocking; still bitwise against the integer oracle.
    #[test]
    fn tall_and_wide_quantized_shapes_stay_bitwise(
        tall in 200usize..500, thin in 1usize..4, seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(tall, thin, &mut rng);
        let b = Matrix::randn(thin, 24, &mut rng);
        let (qa, qb) = (
            QuantizedMatrix::from_rows(a.view()),
            QuantizedMatrix::from_cols(b.view()),
        );
        let mut out = Matrix::zeros(0, 0);
        pitot_linalg::matmul_q_into(&qa, &qb, &mut out);
        prop_assert_eq!(out.as_slice(), reference::matmul_q(&qa, &qb).as_slice());

        // Shared dimension `tall` crosses the 16-lane AVX2 body + scalar
        // tail boundary many times over.
        let c = Matrix::randn(thin, tall, &mut rng);
        let d = Matrix::randn(tall, thin + 2, &mut rng);
        let (qc, qd) = (
            QuantizedMatrix::from_rows(c.view()),
            QuantizedMatrix::from_cols(d.view()),
        );
        pitot_linalg::matmul_q_into(&qc, &qd, &mut out);
        prop_assert_eq!(out.as_slice(), reference::matmul_q(&qc, &qd).as_slice());
    }

    /// The fused gradient fan-out kernel is bitwise identical to the two
    /// `axpy_slice` calls it replaced (its FMA body mirrors theirs lane for
    /// lane), and tracks the scalar reference to float precision.
    #[test]
    fn axpy_fanout_is_bitwise_identical_to_two_axpys(
        len in 0usize..200, alpha in -3.0f32..3.0, seed in 0u64..5_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let src = Matrix::randn(1, len, &mut rng).into_vec();
        let x = Matrix::randn(1, len, &mut rng).into_vec();
        let sum0 = Matrix::randn(1, len, &mut rng).into_vec();
        let dst0 = Matrix::randn(1, len, &mut rng).into_vec();

        let (mut sum_f, mut dst_f) = (sum0.clone(), dst0.clone());
        pitot_linalg::axpy_fanout(&mut sum_f, &src, alpha, &x, &mut dst_f);

        let (mut sum_a, mut dst_a) = (sum0.clone(), dst0.clone());
        pitot_linalg::axpy_slice(1.0, &src, &mut sum_a);
        pitot_linalg::axpy_slice(alpha, &x, &mut dst_a);
        prop_assert_eq!(&sum_f, &sum_a);
        prop_assert_eq!(&dst_f, &dst_a);

        let (mut sum_r, mut dst_r) = (sum0, dst0);
        reference::axpy_fanout(&mut sum_r, &src, alpha, &x, &mut dst_r);
        for (got, want) in sum_f.iter().zip(&sum_r).chain(dst_f.iter().zip(&dst_r)) {
            prop_assert!(
                (got - want).abs() <= 1e-5 * (1.0 + want.abs()),
                "fanout {} vs reference {}", got, want
            );
        }
    }

    #[test]
    fn scale_add_matches_scalar(
        len in 0usize..128, beta in -2.0f32..2.0, alpha in -2.0f32..2.0, seed in 0u64..2_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x = Matrix::randn(1, len, &mut rng).into_vec();
        let y0 = Matrix::randn(1, len, &mut rng).into_vec();
        let mut y = y0.clone();
        pitot_linalg::scale_add(&mut y, beta, &x, alpha);
        for i in 0..len {
            let want = beta * y0[i] + alpha * x[i];
            prop_assert!((y[i] - want).abs() <= 1e-5 * (1.0 + want.abs()));
        }
    }
}

#[test]
fn empty_shapes_produce_empty_or_zero_outputs() {
    // 0×n · n×p = 0×p.
    let a = Matrix::zeros(0, 4);
    let b = Matrix::zeros(4, 3);
    assert_eq!(a.matmul(&b).shape(), (0, 3));
    // m×0 · 0×p is a defined all-zero product.
    let a = Matrix::zeros(2, 0);
    let b = Matrix::zeros(0, 3);
    assert_eq!(a.matmul(&b), Matrix::zeros(2, 3));
    assert_eq!(b.transpose_matmul(&b), Matrix::zeros(3, 3));
    let c = Matrix::zeros(5, 0);
    assert_eq!(a.matmul_transpose(&c), Matrix::zeros(2, 5));
}
