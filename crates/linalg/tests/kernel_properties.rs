//! Property tests pinning the blocked/parallel kernels to the naive
//! reference oracle in `pitot_linalg::reference`.
//!
//! Shapes are drawn from ranges that include every degenerate class the
//! kernels special-case: empty (`0×n`, `m×0`, shared dimension 0), `1×1`,
//! tall-skinny, and short-wide. The tolerance is relative at `1e-4`, loose
//! enough for f32 re-association headroom even though today's kernels are
//! bitwise order-preserving.

use pitot_linalg::{reference, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn assert_close(got: &Matrix, want: &Matrix) {
    assert_eq!(got.shape(), want.shape(), "shape mismatch");
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "kernel {x} vs reference {y}"
        );
    }
}

proptest! {
    #[test]
    fn matmul_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        // Start from a dirty, wrongly-shaped buffer: `_into` must fully
        // overwrite and reshape it.
        let mut out = Matrix::full(3, 3, f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_close(&out, &reference::matmul(&a, &b));
        assert_close(&a.matmul(&b), &reference::matmul(&a, &b));
    }

    #[test]
    fn matmul_transpose_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(m, k, &mut rng);
        let b = Matrix::randn(n, k, &mut rng);
        let mut out = Matrix::full(2, 5, f32::NAN);
        a.matmul_transpose_into(&b, &mut out);
        assert_close(&out, &reference::matmul_transpose(&a, &b));
    }

    #[test]
    fn transpose_matmul_matches_reference(
        m in 0usize..12, k in 0usize..40, n in 0usize..20, seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(k, m, &mut rng);
        let b = Matrix::randn(k, n, &mut rng);
        let mut out = Matrix::full(1, 1, f32::NAN);
        a.transpose_matmul_into(&b, &mut out);
        assert_close(&out, &reference::transpose_matmul(&a, &b));
    }

    #[test]
    fn tall_and_wide_shapes_cross_the_blocking_factors(
        tall in 200usize..600, thin in 1usize..4, seed in 0u64..100,
    ) {
        // Exercise shared dimensions beyond KC = 256 and row counts beyond
        // any parallel grain, in both orientations.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::randn(tall, thin, &mut rng);
        let b = Matrix::randn(thin, tall.min(64), &mut rng);
        assert_close(&a.matmul(&b), &reference::matmul(&a, &b));

        let c = Matrix::randn(thin, tall, &mut rng);
        let d = Matrix::randn(tall, thin + 2, &mut rng);
        // Shared dimension `tall` > KC tiles across k-blocks.
        assert_close(&c.matmul(&d), &reference::matmul(&c, &d));
        let ct = Matrix::randn(tall, thin, &mut rng);
        assert_close(
            &ct.transpose_matmul(&d),
            &reference::transpose_matmul(&ct, &d),
        );
        let e = Matrix::randn(thin + 1, tall, &mut rng);
        let f = Matrix::randn(thin + 3, tall, &mut rng);
        assert_close(
            &e.matmul_transpose(&f),
            &reference::matmul_transpose(&e, &f),
        );
    }

    #[test]
    fn one_by_one_is_scalar_multiplication(x in -10.0f32..10.0, y in -10.0f32..10.0) {
        let a = Matrix::full(1, 1, x);
        let b = Matrix::full(1, 1, y);
        for product in [a.matmul(&b), a.matmul_transpose(&b), a.transpose_matmul(&b)] {
            prop_assert!((product[(0, 0)] - x * y).abs() <= 1e-5 * (1.0 + (x * y).abs()));
        }
    }
}

#[test]
fn empty_shapes_produce_empty_or_zero_outputs() {
    // 0×n · n×p = 0×p.
    let a = Matrix::zeros(0, 4);
    let b = Matrix::zeros(4, 3);
    assert_eq!(a.matmul(&b).shape(), (0, 3));
    // m×0 · 0×p is a defined all-zero product.
    let a = Matrix::zeros(2, 0);
    let b = Matrix::zeros(0, 3);
    assert_eq!(a.matmul(&b), Matrix::zeros(2, 3));
    assert_eq!(b.transpose_matmul(&b), Matrix::zeros(3, 3));
    let c = Matrix::zeros(5, 0);
    assert_eq!(a.matmul_transpose(&c), Matrix::zeros(2, 5));
}
