//! Compressed inference towers: int8 quantization and magnitude pruning.
//!
//! Tower evaluation is the expensive, memory-heavy part of Pitot inference
//! (two MLP passes over every entity). This module compresses the towers
//! *after* training — pruning small-magnitude weights and/or freezing the
//! weight matrices as int8 — and produces a [`TowerCache`] that drops into
//! the exact same prediction path as the dense towers
//! ([`TrainedPitot::predict_log_runtime_cached`]).
//!
//! The central invariant: **compression never touches calibration
//! validity**. Compression perturbs predictions, but conformal calibration
//! only assumes exchangeability of the calibration residuals — not that the
//! predictor is any good. Recalibrating on the *compressed* model's
//! residuals therefore restores the coverage guarantee at every compression
//! level; the interval simply widens to absorb the compression error. The
//! `ext-compress` experiment measures exactly this tradeoff.
//!
//! Determinism: the pruning order is a deterministic total order
//! (magnitude, then plane index), and int8 tower inference accumulates in
//! exact i32 (see [`pitot_linalg::quant`]), so a compressed tower cache is
//! bitwise identical across `PITOT_THREADS` and across the scalar/AVX2
//! dispatch paths — the serving twin tests extend to compressed replicas
//! unchanged.

use crate::train::{TowerCache, TrainedPitot};
use crate::PitotModel;
use pitot_nn::QuantizedMlp;
use pitot_testbed::Dataset;
use serde::{Deserialize, Serialize};

/// How a tower's weights are compressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompressionLevel {
    /// No compression: the dense f32 towers.
    None,
    /// Weights frozen as int8 (symmetric per-output-channel scales);
    /// activations quantized per row on the fly.
    Int8,
    /// Magnitude pruning: the smallest-|w| fraction of each tower weight
    /// matrix is zeroed via a structured mask on the parameter plane.
    Pruned,
    /// Pruning followed by int8 quantization of the masked weights
    /// (a pruned weight quantizes to exactly zero).
    PrunedInt8,
}

impl CompressionLevel {
    /// Whether this level installs a pruning mask.
    pub fn prunes(self) -> bool {
        matches!(
            self,
            CompressionLevel::Pruned | CompressionLevel::PrunedInt8
        )
    }

    /// Whether this level runs int8 tower inference.
    pub fn quantizes(self) -> bool {
        matches!(self, CompressionLevel::Int8 | CompressionLevel::PrunedInt8)
    }

    /// Display name (used in experiment arms and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            CompressionLevel::None => "none",
            CompressionLevel::Int8 => "int8",
            CompressionLevel::Pruned => "pruned",
            CompressionLevel::PrunedInt8 => "pruned+int8",
        }
    }
}

/// A validated compression request: level plus pruning sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionSpec {
    /// Compression level.
    pub level: CompressionLevel,
    /// Fraction of each tower weight matrix to prune (only meaningful for
    /// pruning levels; must be 0 otherwise).
    pub sparsity: f32,
}

impl CompressionSpec {
    /// The identity spec: dense f32 towers.
    pub fn none() -> Self {
        Self {
            level: CompressionLevel::None,
            sparsity: 0.0,
        }
    }

    /// Int8 quantization without pruning.
    pub fn int8() -> Self {
        Self {
            level: CompressionLevel::Int8,
            sparsity: 0.0,
        }
    }

    /// Magnitude pruning at the given sparsity.
    pub fn pruned(sparsity: f32) -> Self {
        Self {
            level: CompressionLevel::Pruned,
            sparsity,
        }
    }

    /// Pruning at the given sparsity followed by int8 quantization.
    pub fn pruned_int8(sparsity: f32) -> Self {
        Self {
            level: CompressionLevel::PrunedInt8,
            sparsity,
        }
    }

    /// Whether this spec leaves the model untouched.
    pub fn is_none(&self) -> bool {
        self.level == CompressionLevel::None
    }

    /// Display name of the level.
    pub fn name(&self) -> &'static str {
        self.level.name()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `sparsity` is inconsistent with the level: pruning levels
    /// need `0 < sparsity < 1`, non-pruning levels need `sparsity == 0`.
    pub fn validate(&self) {
        if self.level.prunes() {
            assert!(
                self.sparsity > 0.0 && self.sparsity < 1.0,
                "compression.sparsity = {} is outside (0, 1): pruning levels \
                 drop a positive fraction of each tower weight matrix; use \
                 level {:?} or Int8 for no pruning",
                self.sparsity,
                CompressionLevel::None,
            );
        } else {
            assert!(
                self.sparsity == 0.0,
                "compression.sparsity = {} is meaningless for level {:?}: \
                 only Pruned / PrunedInt8 read it; set sparsity to 0 or pick \
                 a pruning level",
                self.sparsity,
                self.level,
            );
        }
    }
}

impl Default for CompressionSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// A trained model's towers, compressed per a [`CompressionSpec`].
///
/// Construction clones the model, installs the pruning mask (if any) on the
/// clone's parameter plane, and freezes int8 weights (if any). The
/// [`CompressedTower::tower_cache`] output substitutes for the dense
/// [`TrainedPitot::tower_cache`] in every downstream prediction path — the
/// per-observation predict kernel never sees the compression, only the
/// compressed tower outputs.
#[derive(Debug, Clone)]
pub struct CompressedTower {
    spec: CompressionSpec,
    /// The model clone carrying the (possibly masked) parameter plane.
    model: PitotModel,
    /// Int8-frozen towers for the quantizing levels.
    quantized: Option<(QuantizedMlp, QuantizedMlp)>,
}

impl CompressedTower {
    /// Compresses `trained`'s towers per `spec`.
    ///
    /// Pruning masks only the tower *weight matrices* — biases, layer norms,
    /// and the learned features φ stay dense (they are a sliver of the
    /// parameter count and anchor the embedding scales).
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails [`CompressionSpec::validate`].
    pub fn new(trained: &TrainedPitot, spec: &CompressionSpec) -> Self {
        spec.validate();
        let mut model = trained.model.clone();
        if spec.level.prunes() {
            let ranges: Vec<pitot_nn::ParamRange> = model
                .fw()
                .layers()
                .iter()
                .chain(model.fp().layers())
                .map(pitot_nn::Linear::weight_range)
                .collect();
            let store = model.store_mut();
            for range in ranges {
                store.prune_window_by_magnitude(range, spec.sparsity);
            }
        }
        let quantized = spec.level.quantizes().then(|| {
            (
                QuantizedMlp::quantize(model.fw(), model.store()),
                QuantizedMlp::quantize(model.fp(), model.store()),
            )
        });
        Self {
            spec: *spec,
            model,
            quantized,
        }
    }

    /// The spec this tower was compressed with.
    pub fn spec(&self) -> &CompressionSpec {
        &self.spec
    }

    /// The model clone carrying the compressed plane (masked for pruning
    /// levels; identical to the trained model otherwise).
    pub fn model(&self) -> &PitotModel {
        &self.model
    }

    /// Evaluates the compressed towers over every entity, producing a
    /// [`TowerCache`] interchangeable with the dense one.
    pub fn tower_cache(&self, dataset: &Dataset) -> TowerCache {
        match &self.quantized {
            Some((qfw, qfp)) => {
                let (input_w, input_p) = self.model.tower_inputs(dataset);
                TowerCache {
                    w: qfw.infer(self.model.store(), &input_w),
                    p_full: qfp.infer(self.model.store(), &input_p),
                }
            }
            // Pruned-only: the masked plane already zeroes the weights, so
            // the dense inference path *is* the pruned forward pass.
            None => {
                let (w, p_full) = self.model.infer_towers(dataset);
                TowerCache { w, p_full }
            }
        }
    }

    /// Bytes the compressed tower weights occupy (int8 payloads + scales
    /// for quantizing levels; surviving f32 weights for pruned-only; the
    /// full dense weights for [`CompressionLevel::None`]).
    pub fn weight_bytes(&self) -> usize {
        if let Some((qfw, qfp)) = &self.quantized {
            return qfw.weight_bytes() + qfp.weight_bytes();
        }
        let dense = self.dense_weight_bytes();
        match self.model.store().mask() {
            // Pruned-only: count surviving weights (a sparse deployment
            // format would store roughly this many f32s).
            Some(_) => {
                let store = self.model.store();
                let mask = store.mask().expect("mask checked above");
                let mut kept = 0usize;
                for layer in self
                    .model
                    .fw()
                    .layers()
                    .iter()
                    .chain(self.model.fp().layers())
                {
                    let r = layer.weight_range();
                    kept += mask[r.as_range()].iter().filter(|&&m| m != 0).count();
                }
                kept * std::mem::size_of::<f32>()
            }
            None => dense,
        }
    }

    /// Bytes the same tower weights occupy densely in f32.
    pub fn dense_weight_bytes(&self) -> usize {
        self.model
            .fw()
            .layers()
            .iter()
            .chain(self.model.fp().layers())
            .map(|l| l.weight_range().len * std::mem::size_of::<f32>())
            .sum()
    }
}

impl TrainedPitot {
    /// [`TrainedPitot::tower_cache`] through a compression spec: the
    /// one-call form serving uses per replica. For
    /// [`CompressionLevel::None`] this is exactly the dense cache.
    pub fn compressed_tower_cache(&self, dataset: &Dataset, spec: &CompressionSpec) -> TowerCache {
        if spec.is_none() {
            spec.validate();
            return self.tower_cache(dataset);
        }
        CompressedTower::new(self, spec).tower_cache(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, PitotConfig};
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};

    fn trained() -> (Dataset, TrainedPitot) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 120;
        let t = train(&ds, &split, &cfg);
        (ds, t)
    }

    #[test]
    fn none_spec_matches_dense_cache_bitwise() {
        let (ds, t) = trained();
        let dense = t.tower_cache(&ds);
        let via_spec = t.compressed_tower_cache(&ds, &CompressionSpec::none());
        assert_eq!(dense.w, via_spec.w);
        assert_eq!(dense.p_full, via_spec.p_full);
    }

    #[test]
    fn compressed_caches_stay_close_to_dense() {
        let (ds, t) = trained();
        let dense = t.tower_cache(&ds);
        let scale = dense
            .w
            .as_slice()
            .iter()
            .chain(dense.p_full.as_slice())
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1.0);
        for spec in [
            CompressionSpec::int8(),
            CompressionSpec::pruned(0.3),
            CompressionSpec::pruned_int8(0.3),
        ] {
            let c = t.compressed_tower_cache(&ds, &spec);
            assert_eq!(c.w.shape(), dense.w.shape());
            assert_eq!(c.p_full.shape(), dense.p_full.shape());
            let max_err =
                c.w.as_slice()
                    .iter()
                    .zip(dense.w.as_slice())
                    .chain(c.p_full.as_slice().iter().zip(dense.p_full.as_slice()))
                    .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            // Lossy but bounded: compression error stays small relative to
            // the tower output scale (conformal recalibration absorbs it).
            assert!(
                max_err < 0.5 * scale,
                "{}: max tower error {max_err} vs scale {scale}",
                spec.name()
            );
            // And it must actually differ from dense (compression happened).
            assert!(max_err > 0.0, "{}: compression was a no-op", spec.name());
        }
    }

    #[test]
    fn compression_is_deterministic() {
        let (ds, t) = trained();
        for spec in [CompressionSpec::int8(), CompressionSpec::pruned_int8(0.5)] {
            let a = t.compressed_tower_cache(&ds, &spec);
            let b = t.compressed_tower_cache(&ds, &spec);
            assert_eq!(a.w, b.w, "{}", spec.name());
            assert_eq!(a.p_full, b.p_full, "{}", spec.name());
        }
    }

    #[test]
    fn pruning_zeroes_the_requested_fraction() {
        let (_, t) = trained();
        let spec = CompressionSpec::pruned(0.5);
        let ct = CompressedTower::new(&t, &spec);
        let store = ct.model().store();
        let mask = store.mask().expect("pruning installs a mask");
        for layer in ct
            .model()
            .fw()
            .layers()
            .iter()
            .chain(ct.model().fp().layers())
        {
            let r = layer.weight_range();
            let pruned = mask[r.as_range()].iter().filter(|&&m| m == 0).count();
            assert_eq!(pruned, r.len / 2, "window {:?}", r.as_range());
            // The masked weights are exactly zero on the plane.
            for (i, &m) in mask[r.as_range()].iter().enumerate() {
                if m == 0 {
                    assert_eq!(store.params()[r.offset + i], 0.0);
                }
            }
        }
        // φ windows and biases stay dense.
        let weight_len: usize = ct
            .model()
            .fw()
            .layers()
            .iter()
            .chain(ct.model().fp().layers())
            .map(|l| l.weight_range().len)
            .sum();
        let total_pruned = mask.iter().filter(|&&m| m == 0).count();
        assert_eq!(total_pruned, weight_len / 2);
    }

    #[test]
    fn weight_bytes_shrink_with_compression() {
        let (_, t) = trained();
        let dense = CompressedTower::new(&t, &CompressionSpec::none());
        let int8 = CompressedTower::new(&t, &CompressionSpec::int8());
        let pruned = CompressedTower::new(&t, &CompressionSpec::pruned(0.5));
        let both = CompressedTower::new(&t, &CompressionSpec::pruned_int8(0.5));
        assert_eq!(dense.weight_bytes(), dense.dense_weight_bytes());
        assert!(int8.weight_bytes() * 3 < dense.weight_bytes());
        assert_eq!(pruned.weight_bytes() * 2, dense.weight_bytes());
        assert!(both.weight_bytes() <= int8.weight_bytes());
    }

    #[test]
    #[should_panic(expected = "compression.sparsity")]
    fn validate_rejects_pruning_without_sparsity() {
        CompressionSpec::pruned(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "compression.sparsity")]
    fn validate_rejects_sparsity_without_pruning() {
        CompressionSpec {
            level: CompressionLevel::Int8,
            sparsity: 0.5,
        }
        .validate();
    }
}
