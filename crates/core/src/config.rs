//! Pitot configuration: architecture, objective, and ablation switches.

use pitot_nn::Activation;
use serde::{Deserialize, Serialize};

/// Training objective (paper Sec 5.1: error is evaluated on a squared-loss
/// model, bound tightness on a quantile-regression model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Mean-squared error on the (log-residual) target — for point
    /// prediction and MAPE evaluation.
    Squared,
    /// Pinball loss at each listed target quantile ξ; one workload-embedding
    /// head per quantile (paper Sec 3.5 "Model Architecture").
    Quantiles(Vec<f32>),
}

impl Objective {
    /// The paper's quantile spread (App B.2), denser near 100%.
    pub fn paper_quantiles() -> Self {
        Objective::Quantiles(vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99])
    }

    /// Number of output heads.
    pub fn head_count(&self) -> usize {
        match self {
            Objective::Squared => 1,
            Objective::Quantiles(xs) => xs.len(),
        }
    }

    /// Training quantiles (a lone 0.5 stands in for the squared head when
    /// conformal code needs an ξ per head).
    pub fn xis(&self) -> Vec<f32> {
        match self {
            Objective::Squared => vec![0.5],
            Objective::Quantiles(xs) => xs.clone(),
        }
    }
}

/// Loss formulation ablation (paper Fig 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossSpace {
    /// Pitot's default: squared loss on `log C* − log C̄` (Sec 3.2).
    LogResidual,
    /// Squared loss on `log C*` directly (no scaling baseline).
    Log,
    /// Naive proportional loss: the model predicts the linear-space ratio
    /// `C*/C̄` and pays squared error on it — dominated by the heavy tail.
    NaiveProportional,
}

/// Interference-handling ablation (paper Fig 4c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceMode {
    /// Model interference explicitly (Sec 3.4).
    Aware,
    /// Drop all observations that have interferers.
    Discard,
    /// Keep all observations but ignore who was interfering.
    Ignore,
}

/// Optimizer choice (optimizer ablation; the paper trains with AdaMax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// The paper's choice (App B.3): the l∞ variant of Adam.
    AdaMax,
    /// Standard Adam with the same betas.
    Adam,
    /// SGD with momentum 0.9.
    SgdMomentum,
}

impl OptimizerKind {
    /// Instantiates the optimizer at the given learning rate.
    pub fn build(self, lr: f32) -> Box<dyn pitot_nn::Optimizer> {
        match self {
            OptimizerKind::AdaMax => Box::new(pitot_nn::AdaMax::new(lr)),
            OptimizerKind::Adam => Box::new(pitot_nn::Adam::new(lr)),
            OptimizerKind::SgdMomentum => Box::new(pitot_nn::SgdMomentum::new(lr)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerKind::AdaMax => "adamax",
            OptimizerKind::Adam => "adam",
            OptimizerKind::SgdMomentum => "sgd-momentum",
        }
    }
}

/// Full Pitot hyperparameter set.
///
/// Defaults reproduce the paper (App B.3 / D.2). [`PitotConfig::fast`] is a
/// scaled-down configuration for the single-core experiment harness and
/// tests; shapes of all results are preserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PitotConfig {
    /// Embedding dimension `r` (paper selects 32).
    pub embed_dim: usize,
    /// Learned per-entity features `q` appended to side information
    /// (paper selects 1).
    pub learned_features: usize,
    /// Interference types `s` (rank of the interference matrix; paper: 2).
    pub interference_types: usize,
    /// Hidden layer widths of both towers (paper: two layers of 128).
    pub hidden: Vec<usize>,
    /// Weight β of the interference objective, split equally across the
    /// 2/3/4-way modes (paper: 0.5).
    pub interference_weight: f32,
    /// Training objective.
    pub objective: Objective,
    /// Loss formulation (Fig 4a ablation).
    pub loss_space: LossSpace,
    /// Interference handling (Fig 4c ablation).
    pub interference: InterferenceMode,
    /// Activation α applied to accumulated interference magnitude
    /// (paper: leaky ReLU 0.1; identity = "simple multiplicative", Fig 4d).
    pub interference_activation: Activation,
    /// Use workload side information `x_w` (Fig 4b ablation).
    pub use_workload_features: bool,
    /// Use platform side information `x_p` (Fig 4b ablation).
    pub use_platform_features: bool,
    /// SGD steps (paper: 20,000).
    pub steps: usize,
    /// Batch size per interference mode (paper: 512, i.e. 2048 total).
    pub batch_per_mode: usize,
    /// Optimizer learning rate (paper: 1e-3).
    pub learning_rate: f32,
    /// Optimizer (paper: AdaMax; the others exist for the ablation).
    pub optimizer: OptimizerKind,
    /// Apply monotone rearrangement to multi-head predictions
    /// (Chernozhukov et al.), fixing crossed quantile heads. Off by default
    /// to match the paper; never increases pinball loss when enabled.
    pub rearrange_quantiles: bool,
    /// Layer-normalize the tower hidden layers (extension knob for deep
    /// tower experiments; the paper's 2-layer towers train fine without it).
    pub tower_layer_norm: bool,
    /// Validate (and maybe checkpoint) every this many steps (paper: 200).
    pub eval_every: usize,
    /// Cap on validation observations per mode used during checkpointing
    /// (keeps single-core evaluation cheap; 0 = use all).
    pub val_cap: usize,
    /// Parameter/batch RNG seed.
    pub seed: u64,
}

impl PitotConfig {
    /// Paper-scale configuration (App B.3).
    pub fn paper() -> Self {
        Self {
            embed_dim: 32,
            learned_features: 1,
            interference_types: 2,
            hidden: vec![128, 128],
            interference_weight: 0.5,
            objective: Objective::Squared,
            loss_space: LossSpace::LogResidual,
            interference: InterferenceMode::Aware,
            interference_activation: Activation::LeakyRelu(0.1),
            use_workload_features: true,
            use_platform_features: true,
            steps: 20_000,
            batch_per_mode: 512,
            learning_rate: 1e-3,
            optimizer: OptimizerKind::AdaMax,
            rearrange_quantiles: false,
            tower_layer_norm: false,
            eval_every: 200,
            val_cap: 4096,
            seed: 0,
        }
    }

    /// Reduced configuration for the single-core experiment harness:
    /// smaller towers and far fewer steps, same structure.
    pub fn fast() -> Self {
        Self {
            embed_dim: 16,
            hidden: vec![32, 32],
            steps: 1200,
            batch_per_mode: 192,
            eval_every: 100,
            val_cap: 1024,
            ..Self::paper()
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            embed_dim: 8,
            hidden: vec![16],
            steps: 300,
            batch_per_mode: 96,
            eval_every: 50,
            val_cap: 512,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different seed (replicates).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the paper's quantile-regression objective.
    pub fn with_quantiles(mut self) -> Self {
        self.objective = Objective::paper_quantiles();
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical settings (zero dims, empty quantiles, quantiles
    /// outside (0,1)).
    pub fn validate(&self) {
        assert!(self.embed_dim > 0, "embed_dim must be positive");
        assert!(
            self.interference_types > 0,
            "need at least one interference type"
        );
        assert!(self.steps > 0 && self.batch_per_mode > 0);
        assert!(self.interference_weight >= 0.0);
        if let Objective::Quantiles(xs) = &self.objective {
            assert!(!xs.is_empty(), "quantile objective needs at least one ξ");
            assert!(xs.iter().all(|x| *x > 0.0 && *x < 1.0), "ξ outside (0,1)");
        }
    }
}

impl Default for PitotConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_appendix() {
        let c = PitotConfig::paper();
        assert_eq!(c.embed_dim, 32);
        assert_eq!(c.learned_features, 1);
        assert_eq!(c.interference_types, 2);
        assert_eq!(c.hidden, vec![128, 128]);
        assert_eq!(c.steps, 20_000);
        assert_eq!(c.batch_per_mode, 512);
        assert_eq!(c.interference_weight, 0.5);
        assert_eq!(c.interference_activation, Activation::LeakyRelu(0.1));
        c.validate();
    }

    #[test]
    fn quantile_spread_matches_appendix_b2() {
        let q = Objective::paper_quantiles();
        assert_eq!(q.head_count(), 8);
        assert_eq!(q.xis()[0], 0.5);
        assert_eq!(*q.xis().last().unwrap(), 0.99);
    }

    #[test]
    #[should_panic(expected = "ξ outside")]
    fn validate_rejects_bad_quantiles() {
        let mut c = PitotConfig::tiny();
        c.objective = Objective::Quantiles(vec![1.5]);
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = PitotConfig::fast().with_seed(9).with_quantiles();
        assert_eq!(c.seed, 9);
        assert_eq!(c.objective.head_count(), 8);
    }
}
