//! Pitot: interference-aware edge runtime prediction with conformal matrix
//! completion.
//!
//! This crate reproduces the method of Huang et al., *Interference-aware Edge
//! Runtime Prediction with Conformal Matrix Completion* (MLSys 2025). Pitot
//! predicts how long a workload will run on a heterogeneous edge platform
//! while other workloads interfere, and can wrap every prediction in a
//! provably calibrated upper bound. The pipeline:
//!
//! 1. [`ScalingBaseline`] — a log-linear "difficulty × speed" model fit by
//!    alternating minimization (paper Sec 3.2 / App B.1); the network then
//!    predicts only the *residual* of this baseline.
//! 2. [`PitotModel`] — a two-tower matrix-factorization network: MLPs embed
//!    workload and platform side information (plus per-entity learned
//!    features φ) into a shared space; the residual is the inner product
//!    `wᵢᵀpⱼ` plus an interference term `Σₜ (wᵢᵀv_s⁽ᵗ⁾)·α(Σₖ wₖᵀv_g⁽ᵗ⁾)`
//!    (paper Secs 3.3–3.4).
//! 3. [`train`] — AdaMax training with per-interference-mode batches and a
//!    weighted multi-objective loss (paper App B.3), returning a
//!    [`TrainedPitot`] with the best-validation checkpoint.
//! 4. [`TrainedPitot::fit_bounds`] — conformalized quantile regression with
//!    calibration pools and optimal quantile selection (paper Sec 3.5),
//!    yielding a [`RuntimeBounds`] that answers "what budget suffices with
//!    probability 1 − ε?".
//!
//! # Examples
//!
//! ```no_run
//! use pitot::{train, PitotConfig};
//! use pitot_testbed::{split::Split, Testbed, TestbedConfig};
//!
//! let testbed = Testbed::generate(&TestbedConfig::small());
//! let dataset = testbed.collect_dataset();
//! let split = Split::stratified(&dataset, 0.5, 0);
//! let trained = train(&dataset, &split, &PitotConfig::fast());
//! let mape = trained.mape(&dataset, &split.test, None);
//! println!("test MAPE: {:.1}%", 100.0 * mape);
//! ```

// Every public item in this crate is part of the documented core prediction
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod compress;
mod config;
mod eval;
mod model;
mod scaling;
mod train;
mod uncertainty;

pub use compress::{CompressedTower, CompressionLevel, CompressionSpec};
pub use config::{InterferenceMode, LossSpace, Objective, OptimizerKind, PitotConfig};
pub use eval::{mape, mape_by_mode};
pub use model::{PitotModel, PlatformEmbeddings, TowerOutputs};
pub use scaling::ScalingBaseline;
pub use train::{train, train_from, TowerCache, TrainContext, TrainProgress, TrainedPitot};
pub use uncertainty::{RuntimeBounds, RuntimeCalibration};
