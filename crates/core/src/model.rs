//! The Pitot two-tower matrix-factorization model with interference term
//! (paper Secs 3.3–3.4).
//!
//! Workload and platform towers are MLPs over side information concatenated
//! with learned per-entity features φ. Following the paper's implementation
//! note (App B.3), *all* entity embeddings are computed densely every step
//! and gathered by index — the entity sets are small (hundreds), so this is
//! far cheaper than per-sample tower evaluation at batch size 2048.
//!
//! Every trainable scalar — both towers and both φ tables — lives in one
//! flat [`ParamStore`] plane; the layers hold window descriptors into it.
//! Gradients land in a [`GradPlane`] of identical layout, so the optimizer
//! step is a single fused pass over contiguous buffers.

use crate::config::{InterferenceMode, PitotConfig};
use pitot_linalg::{MatRef, Matrix};
use pitot_nn::{Activation, GradPlane, Mlp, MlpCache, ParamRange, ParamStore, ParamStoreBuilder};
use pitot_testbed::{Dataset, Observation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Everything the initial parameter plane is a pure function of. Two
/// constructions with equal keys draw bitwise-identical planes, so the
/// plane can be replayed from a cache instead of re-running the Box–Muller
/// fill (~0.5 ms per `train()` at the paper architecture — material when an
/// experiment trains hundreds of replicates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct InitKey {
    seed: u64,
    hidden: Vec<usize>,
    embed_dim: usize,
    interference_types: usize,
    learned_features: usize,
    n_heads: usize,
    layer_norm: bool,
    workload_feature_dim: usize,
    platform_feature_dim: usize,
    n_workloads: usize,
    n_platforms: usize,
}

/// Retained initial planes. Bounded: the map is cleared once it holds
/// [`INIT_CACHE_CAP`] entries (sweeps vary seeds, so a dumb clear beats an
/// LRU's bookkeeping here).
const INIT_CACHE_CAP: usize = 16;

thread_local! {
    static INIT_PLANES: RefCell<std::collections::HashMap<InitKey, std::rc::Rc<[f32]>>> =
        RefCell::new(std::collections::HashMap::new());
    /// Cache hits, for tests asserting the replay path actually ran.
    static INIT_CACHE_HITS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The two-tower model: architecture descriptors plus the flat parameter
/// plane they view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PitotModel {
    config: PitotConfig,
    store: ParamStore,
    fw: Mlp,
    fp: Mlp,
    /// Learned workload features φ_w (`Nw × q` window of the plane).
    phi_w: ParamRange,
    /// Learned platform features φ_p (`Np × q` window of the plane).
    phi_p: ParamRange,
    n_workloads: usize,
    n_platforms: usize,
    workload_feature_dim: usize,
    platform_feature_dim: usize,
}

/// Dense tower outputs plus backprop caches for one forward pass.
///
/// Reusable: feed the same instance to [`PitotModel::forward_towers_with`]
/// every training step and all buffers (tower inputs, MLP caches, outputs)
/// are recycled in place.
#[derive(Debug, Clone, Default)]
pub struct TowerOutputs {
    /// Workload embeddings, `Nw × r·n_heads` (head-major column blocks).
    pub w: Matrix,
    /// Platform tower output, `Np × r·(1+2s)`:
    /// columns `[0, r)` are `p_j`, then `s` blocks of `v_s`, then `s` of `v_g`.
    pub p_full: Matrix,
    cache_w: MlpCache,
    cache_p: MlpCache,
    /// Reused concatenated tower inputs (`[features | φ]`).
    input_w: Matrix,
    input_p: Matrix,
}

impl TowerOutputs {
    /// Creates an empty instance; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Decoded platform embeddings (for interpretation / Fig 12).
#[derive(Debug, Clone)]
pub struct PlatformEmbeddings {
    /// Platform embeddings `p_j` (`Np × r`).
    pub p: Matrix,
    /// Interference susceptibility vectors `v_s⁽ᵗ⁾`, one `Np × r` matrix per type.
    pub vs: Vec<Matrix>,
    /// Interference magnitude vectors `v_g⁽ᵗ⁾`, one `Np × r` matrix per type.
    pub vg: Vec<Matrix>,
}

impl PitotModel {
    /// Creates a model for the given dataset dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves a tower with zero input width
    /// (no side information and `q = 0`).
    pub fn new(config: &PitotConfig, dataset: &Dataset) -> Self {
        config.validate();
        let q = config.learned_features;
        let wf = if config.use_workload_features {
            dataset.workload_features.cols()
        } else {
            0
        };
        let pf = if config.use_platform_features {
            dataset.platform_features.cols()
        } else {
            0
        };
        assert!(
            wf + q > 0,
            "workload tower has no inputs (enable features or set q > 0)"
        );
        assert!(
            pf + q > 0,
            "platform tower has no inputs (enable features or set q > 0)"
        );

        let n_heads = config.objective.head_count();
        let r = config.embed_dim;
        let s = config.interference_types;

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(0x9157_0CAD));
        let mut w_widths = vec![wf + q];
        w_widths.extend_from_slice(&config.hidden);
        w_widths.push(r * n_heads);
        let mut p_widths = vec![pf + q];
        p_widths.extend_from_slice(&config.hidden);
        p_widths.push(r * (1 + 2 * s));

        // The initial plane is a pure function of this key; replay it from
        // the cache when an identical construction already ran on this
        // thread (repeated `train()` calls in experiments and serving
        // fine-tune rebuilds), skipping the Box–Muller fill.
        let key = InitKey {
            seed: config.seed,
            hidden: config.hidden.clone(),
            embed_dim: r,
            interference_types: s,
            learned_features: q,
            n_heads,
            layer_norm: config.tower_layer_norm,
            workload_feature_dim: wf,
            platform_feature_dim: pf,
            n_workloads: dataset.n_workloads,
            n_platforms: dataset.n_platforms,
        };
        // An Rc clone: the hit path shares the cached plane with the
        // builder instead of copying it.
        let cached: Option<std::rc::Rc<[f32]>> =
            INIT_PLANES.with(|c| c.borrow().get(&key).cloned());
        let replayed = cached.is_some();
        if replayed {
            INIT_CACHE_HITS.with(|h| h.set(h.get() + 1));
        }

        let mut builder = match cached {
            Some(plane) => ParamStoreBuilder::prefilled(plane),
            None => ParamStoreBuilder::new(),
        };
        let build = |widths: &[usize], rng: &mut ChaCha8Rng, b: &mut ParamStoreBuilder| {
            if config.tower_layer_norm {
                Mlp::with_layer_norm(widths, Activation::Gelu, rng, b)
            } else {
                Mlp::new(widths, Activation::Gelu, rng, b)
            }
        };
        let fw = build(&w_widths, &mut rng, &mut builder);
        let fp = build(&p_widths, &mut rng, &mut builder);
        // φ starts small so early training is driven by side information.
        let phi_w = builder.alloc_randn(dataset.n_workloads * q, 0.1, &mut rng);
        let phi_p = builder.alloc_randn(dataset.n_platforms * q, 0.1, &mut rng);
        let mut store = builder.finish();
        if !replayed {
            // Start both towers near zero so early predictions stay close
            // to the scaling baseline; the inner product of two
            // ~N(0, 0.3²·r) embeddings is then a mild residual instead of
            // several nats. (A replayed plane is cached post-scaling.)
            fw.scale_output_layer(store.params_mut(), 0.3);
            fp.scale_output_layer(store.params_mut(), 0.3);
            INIT_PLANES.with(|c| {
                let mut map = c.borrow_mut();
                if map.len() >= INIT_CACHE_CAP {
                    map.clear();
                }
                map.insert(key, std::rc::Rc::from(store.params()));
            });
        }

        Self {
            config: config.clone(),
            store,
            fw,
            fp,
            phi_w,
            phi_p,
            n_workloads: dataset.n_workloads,
            n_platforms: dataset.n_platforms,
            workload_feature_dim: wf,
            platform_feature_dim: pf,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &PitotConfig {
        &self.config
    }

    /// Replaces the stored configuration, for toggling inference-time
    /// options (e.g. quantile rearrangement) on an already-trained model.
    ///
    /// # Panics
    ///
    /// Panics if the new configuration would change the architecture
    /// (dimensions, head count, tower widths) rather than inference-time
    /// behavior.
    pub fn set_config(&mut self, config: PitotConfig) {
        assert_eq!(
            config.embed_dim, self.config.embed_dim,
            "embed_dim is architectural"
        );
        assert_eq!(
            config.objective.head_count(),
            self.config.objective.head_count(),
            "head count is architectural"
        );
        assert_eq!(
            config.interference_types, self.config.interference_types,
            "interference types are architectural"
        );
        assert_eq!(
            config.hidden, self.config.hidden,
            "tower widths are architectural"
        );
        assert_eq!(
            config.learned_features, self.config.learned_features,
            "learned-feature width is architectural"
        );
        self.config = config;
    }

    /// Number of quantile heads.
    pub fn n_heads(&self) -> usize {
        self.config.objective.head_count()
    }

    /// Total scalar parameter count (paper reports ≈111k at r=32, 2×128).
    pub fn param_count(&self) -> usize {
        self.store.len()
    }

    /// The flat parameter plane.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The flat parameter plane with its mask state, mutably. The
    /// compression layer uses this to install pruning masks
    /// ([`ParamStore::prune_window_by_magnitude`]); training re-applies an
    /// installed mask after every optimizer step.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// The workload tower (layer descriptors into the plane).
    pub fn fw(&self) -> &Mlp {
        &self.fw
    }

    /// The platform tower (layer descriptors into the plane).
    pub fn fp(&self) -> &Mlp {
        &self.fp
    }

    /// The concatenated tower inputs (`[features | φ]`) both towers read —
    /// the matrices [`PitotModel::infer_towers`] feeds through the MLPs.
    /// Exposed so compressed inference paths can run alternative tower
    /// implementations (e.g. int8) over the exact same inputs.
    pub fn tower_inputs(&self, dataset: &Dataset) -> (Matrix, Matrix) {
        let mut input_w = Matrix::zeros(0, 0);
        let mut input_p = Matrix::zeros(0, 0);
        Self::tower_input_into(
            &dataset.workload_features,
            self.phi_w(),
            self.config.use_workload_features,
            &mut input_w,
        );
        Self::tower_input_into(
            &dataset.platform_features,
            self.phi_p(),
            self.config.use_platform_features,
            &mut input_p,
        );
        (input_w, input_p)
    }

    /// The flat parameter plane, mutably (the optimizer's single block).
    pub fn params_mut(&mut self) -> &mut [f32] {
        self.store.params_mut()
    }

    /// The learned workload features as an `Nw × q` view.
    pub fn phi_w(&self) -> MatRef<'_> {
        self.store
            .matrix(self.phi_w, self.n_workloads, self.config.learned_features)
    }

    /// The learned platform features as an `Np × q` view.
    pub fn phi_p(&self) -> MatRef<'_> {
        self.store
            .matrix(self.phi_p, self.n_platforms, self.config.learned_features)
    }

    fn tower_input_into(features: &Matrix, phi: MatRef<'_>, use_features: bool, out: &mut Matrix) {
        if use_features {
            features.hcat_view_into(phi, out);
        } else {
            out.resize(phi.rows(), phi.cols());
            out.as_mut_slice().copy_from_slice(phi.as_slice());
        }
    }

    /// Runs both towers over every entity, returning outputs plus caches.
    pub fn forward_towers(&self, dataset: &Dataset) -> TowerOutputs {
        let mut towers = TowerOutputs::new();
        self.forward_towers_with(dataset, &mut towers);
        towers
    }

    /// Runs both towers into a reusable [`TowerOutputs`]: the per-step dense
    /// pass of training (paper App B.3), allocation-free once warm.
    pub fn forward_towers_with(&self, dataset: &Dataset, towers: &mut TowerOutputs) {
        Self::tower_input_into(
            &dataset.workload_features,
            self.phi_w(),
            self.config.use_workload_features,
            &mut towers.input_w,
        );
        Self::tower_input_into(
            &dataset.platform_features,
            self.phi_p(),
            self.config.use_platform_features,
            &mut towers.input_p,
        );
        self.fw
            .forward_with(self.store.params(), &towers.input_w, &mut towers.cache_w);
        self.fp
            .forward_with(self.store.params(), &towers.input_p, &mut towers.cache_p);
        towers.w.copy_from(towers.cache_w.output());
        towers.p_full.copy_from(towers.cache_p.output());
    }

    /// Inference-only tower pass (no caches).
    pub fn infer_towers(&self, dataset: &Dataset) -> (Matrix, Matrix) {
        let mut input_w = Matrix::zeros(0, 0);
        let mut input_p = Matrix::zeros(0, 0);
        Self::tower_input_into(
            &dataset.workload_features,
            self.phi_w(),
            self.config.use_workload_features,
            &mut input_w,
        );
        Self::tower_input_into(
            &dataset.platform_features,
            self.phi_p(),
            self.config.use_platform_features,
            &mut input_p,
        );
        (
            self.fw.infer(self.store.params(), &input_w),
            self.fp.infer(self.store.params(), &input_p),
        )
    }

    /// Predicts the residual `ŷ` for each head and each listed observation.
    ///
    /// `w` and `p_full` are tower outputs (from [`PitotModel::forward_towers`]
    /// or [`PitotModel::infer_towers`]).
    pub fn predict(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        dataset: &Dataset,
        idx: &[usize],
    ) -> Vec<Vec<f32>> {
        self.predict_each(w, p_full, idx.iter().map(|&oi| &dataset.observations[oi]))
    }

    /// [`PitotModel::predict`] into reusable per-head buffers (cleared and
    /// refilled; inner vectors keep their capacity across steps).
    pub fn predict_into(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        dataset: &Dataset,
        idx: &[usize],
        out: &mut Vec<Vec<f32>>,
    ) {
        self.predict_each_into(
            w,
            p_full,
            idx.iter().map(|&oi| &dataset.observations[oi]),
            out,
        );
    }

    /// The per-observation prediction kernel: evaluates every head for one
    /// observation, emitting `(head, value)` pairs.
    ///
    /// Bounds are asserted here so every public entry point shares the same
    /// catalog checks.
    #[inline]
    fn predict_obs(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        o: &Observation,
        mut emit: impl FnMut(usize, f32),
    ) {
        let n_heads = self.n_heads();
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        let aware = self.config.interference == InterferenceMode::Aware;
        let act = self.config.interference_activation;

        let i = o.workload as usize;
        let j = o.platform as usize;
        assert!(
            i < w.rows(),
            "workload index {i} outside the trained catalog"
        );
        assert!(
            j < p_full.rows(),
            "platform index {j} outside the trained catalog"
        );
        assert!(
            o.interferers.iter().all(|&k| (k as usize) < w.rows()),
            "interferer index outside the trained catalog"
        );
        let p_row = p_full.row(j);
        let p_j = &p_row[..r];
        for h in 0..n_heads {
            let w_i = &w.row(i)[h * r..(h + 1) * r];
            let mut pred = dot(w_i, p_j);
            if aware && !o.interferers.is_empty() {
                for t in 0..s {
                    let vs_t = &p_row[r + t * r..r + (t + 1) * r];
                    let vg_t = &p_row[r + s * r + t * r..r + s * r + (t + 1) * r];
                    let mut m_t = 0.0;
                    for &k in &o.interferers {
                        let w_k = &w.row(k as usize)[h * r..(h + 1) * r];
                        m_t += dot(w_k, vg_t);
                    }
                    pred += dot(w_i, vs_t) * act.apply(m_t);
                }
            }
            emit(h, pred);
        }
    }

    /// Predicts the residual `ŷ` for each head over arbitrary observations.
    ///
    /// Only the index fields of each observation are read (`workload`,
    /// `platform`, `interferers`), so callers may pass synthetic "query"
    /// observations that were never measured — this is how the orchestration
    /// layer asks "what if workload `i` ran on platform `j` next to `K`?".
    pub fn predict_each<'a, I>(&self, w: &Matrix, p_full: &Matrix, obs: I) -> Vec<Vec<f32>>
    where
        I: IntoIterator<Item = &'a Observation>,
    {
        let mut out = Vec::new();
        self.predict_each_into(w, p_full, obs, &mut out);
        out
    }

    /// [`PitotModel::predict_each`] into reusable per-head buffers.
    pub fn predict_each_into<'a, I>(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        obs: I,
        out: &mut Vec<Vec<f32>>,
    ) where
        I: IntoIterator<Item = &'a Observation>,
    {
        let n_heads = self.n_heads();
        out.resize_with(n_heads, Vec::new);
        for head in out.iter_mut() {
            head.clear();
        }
        for o in obs {
            self.predict_obs(w, p_full, o, |h, pred| out[h].push(pred));
        }
    }

    /// Batched residual prediction, row-parallel over observations: fills
    /// `out` as an `obs.len() × n_heads` matrix (one row per observation).
    ///
    /// Observations are independent, so rows are split over the
    /// [`pitot_linalg::par`] pool and results are bitwise identical across
    /// `PITOT_THREADS`. This is the entry point for the post-training
    /// predict/evaluate/calibrate pipeline; reuse `out` across calls to keep
    /// the path allocation-free.
    pub fn predict_batch_into(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        obs: &[&Observation],
        out: &mut Matrix,
    ) {
        let n_heads = self.n_heads();
        out.resize(obs.len(), n_heads);
        if obs.is_empty() {
            return;
        }
        // ~64 rows per chunk: each row is a few hundred FLOPs minimum, so
        // this keeps dispatch overhead well under the chunk cost.
        pitot_linalg::par::parallel_for_rows(out.as_mut_slice(), n_heads, 64, |start, chunk| {
            for (b, row) in chunk.chunks_exact_mut(n_heads).enumerate() {
                self.predict_obs(w, p_full, obs[start + b], |h, pred| row[h] = pred);
            }
        });
    }

    /// [`PitotModel::predict_batch_into`] addressing observations by
    /// dataset index. Checkpoint evaluation calls this once per checkpoint;
    /// indexing directly into the dataset avoids materializing a fresh
    /// `Vec<&Observation>` per call, keeping the eval path allocation-free
    /// once its output buffer is sized.
    pub fn predict_batch_indices_into(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        dataset: &Dataset,
        idx: &[usize],
        out: &mut Matrix,
    ) {
        let n_heads = self.n_heads();
        out.resize(idx.len(), n_heads);
        if idx.is_empty() {
            return;
        }
        pitot_linalg::par::parallel_for_rows(out.as_mut_slice(), n_heads, 64, |start, chunk| {
            for (b, row) in chunk.chunks_exact_mut(n_heads).enumerate() {
                let obs = &dataset.observations[idx[start + b]];
                self.predict_obs(w, p_full, obs, |h, pred| row[h] = pred);
            }
        });
    }

    /// [`PitotModel::predict_into`] that additionally records the
    /// interference inner products — `m_t = Σ_k ⟨w_k, v_g⟩` and
    /// `s_t = ⟨w_i, v_s⟩` per (observation, head, type) — into `mcache`, so
    /// the matching [`PitotModel::accumulate_grads_cached`] call skips
    /// recomputing every interferer dot product. Both passes evaluate the
    /// identical arithmetic, so gradients are bitwise equal to the uncached
    /// path (asserted by the `cached_interference_path_is_bitwise_identical`
    /// test).
    pub(crate) fn predict_into_cached(
        &self,
        w: &Matrix,
        p_full: &Matrix,
        dataset: &Dataset,
        idx: &[usize],
        out: &mut Vec<Vec<f32>>,
        mcache: &mut Vec<f32>,
    ) {
        let n_heads = self.n_heads();
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        let aware = self.config.interference == InterferenceMode::Aware;
        let act = self.config.interference_activation;

        out.resize_with(n_heads, Vec::new);
        for head in out.iter_mut() {
            head.clear();
        }
        mcache.clear();
        mcache.resize(idx.len() * n_heads * s * 2, 0.0);
        for (b, &oi) in idx.iter().enumerate() {
            let o = &dataset.observations[oi];
            let i = o.workload as usize;
            let j = o.platform as usize;
            assert!(
                i < w.rows() && j < p_full.rows(),
                "entity index outside the trained catalog"
            );
            assert!(
                o.interferers.iter().all(|&k| (k as usize) < w.rows()),
                "interferer index outside the trained catalog"
            );
            let p_row = p_full.row(j);
            let p_j = &p_row[..r];
            for (h, head_out) in out.iter_mut().enumerate() {
                let w_i = &w.row(i)[h * r..(h + 1) * r];
                let mut pred = dot(w_i, p_j);
                if aware && !o.interferers.is_empty() {
                    for t in 0..s {
                        let vs_t = &p_row[r + t * r..r + (t + 1) * r];
                        let vg_t = &p_row[r + s * r + t * r..r + s * r + (t + 1) * r];
                        let mut m_t = 0.0;
                        for &k in &o.interferers {
                            let w_k = &w.row(k as usize)[h * r..(h + 1) * r];
                            m_t += dot(w_k, vg_t);
                        }
                        let s_t = dot(w_i, vs_t);
                        let slot = ((b * n_heads + h) * s + t) * 2;
                        mcache[slot] = m_t;
                        mcache[slot + 1] = s_t;
                        pred += s_t * act.apply(m_t);
                    }
                }
                head_out.push(pred);
            }
        }
    }

    /// [`PitotModel::accumulate_grads`] consuming the inner products
    /// recorded by [`PitotModel::predict_into_cached`] for the same batch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn accumulate_grads_cached(
        &self,
        towers: &TowerOutputs,
        dataset: &Dataset,
        idx: &[usize],
        d_pred: &[Vec<f32>],
        d_w: &mut Matrix,
        d_p: &mut Matrix,
        mcache: &[f32],
    ) {
        let n_heads = self.n_heads();
        assert_eq!(d_pred.len(), n_heads, "one gradient vector per head");
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        let aware = self.config.interference == InterferenceMode::Aware;
        let act = self.config.interference_activation;
        assert_eq!(
            mcache.len(),
            idx.len() * n_heads * s * 2,
            "stale interference cache"
        );

        let mut wk_sum = vec![0.0f32; r];
        for (b, &oi) in idx.iter().enumerate() {
            let o = &dataset.observations[oi];
            let i = o.workload as usize;
            let j = o.platform as usize;
            for h in 0..n_heads {
                let g = d_pred[h][b];
                if g == 0.0 {
                    continue;
                }
                let head = h * r..(h + 1) * r;
                let w_i = &towers.w.row(i)[head.clone()];
                let p_row = towers.p_full.row(j);
                let p_j = &p_row[..r];

                axpy(&mut d_p.row_mut(j)[..r], g, w_i);
                axpy(&mut d_w.row_mut(i)[head.clone()], g, p_j);

                if aware && !o.interferers.is_empty() {
                    for t in 0..s {
                        let vs_rng = r + t * r..r + (t + 1) * r;
                        let vg_rng = r + s * r + t * r..r + s * r + (t + 1) * r;
                        let vs_t = &p_row[vs_rng.clone()];
                        let vg_t = &p_row[vg_rng.clone()];
                        let slot = ((b * n_heads + h) * s + t) * 2;
                        let m_t = mcache[slot];
                        let s_t = mcache[slot + 1];
                        let a_t = act.apply(m_t);

                        axpy(&mut d_w.row_mut(i)[head.clone()], g * a_t, vs_t);
                        axpy(&mut d_p.row_mut(j)[vs_rng], g * a_t, w_i);
                        let dm = g * s_t * act.derivative(m_t);
                        if dm != 0.0 {
                            wk_sum.fill(0.0);
                            for &k in &o.interferers {
                                pitot_linalg::axpy_fanout(
                                    &mut wk_sum,
                                    &towers.w.row(k as usize)[head.clone()],
                                    dm,
                                    vg_t,
                                    &mut d_w.row_mut(k as usize)[head.clone()],
                                );
                            }
                            axpy(&mut d_p.row_mut(j)[vg_rng], dm, &wk_sum);
                        }
                    }
                }
            }
        }
    }

    /// Accumulates output-side gradients for a batch into `d_w` / `d_p`
    /// (shaped like the tower outputs).
    ///
    /// `d_pred[h][b]` is `∂L/∂ŷ` for head `h` and the `b`-th observation of
    /// `idx`. Call once per interference mode, then finish the step with
    /// [`PitotModel::backward_towers`].
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_grads(
        &self,
        towers: &TowerOutputs,
        dataset: &Dataset,
        idx: &[usize],
        d_pred: &[Vec<f32>],
        d_w: &mut Matrix,
        d_p: &mut Matrix,
    ) {
        let n_heads = self.n_heads();
        assert_eq!(d_pred.len(), n_heads, "one gradient vector per head");
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        let aware = self.config.interference == InterferenceMode::Aware;
        let act = self.config.interference_activation;

        // One interferer-sum buffer for the whole batch; refilled per use.
        let mut wk_sum = vec![0.0f32; r];
        for (b, &oi) in idx.iter().enumerate() {
            let o = &dataset.observations[oi];
            let i = o.workload as usize;
            let j = o.platform as usize;
            for h in 0..n_heads {
                let g = d_pred[h][b];
                if g == 0.0 {
                    continue;
                }
                let head = h * r..(h + 1) * r;
                // `towers` is read-only while `d_w`/`d_p` are written, so
                // the embedding rows can be borrowed directly.
                let w_i = &towers.w.row(i)[head.clone()];
                let p_row = towers.p_full.row(j);
                let p_j = &p_row[..r];

                // d p_j += g · w_i ; d w_i += g · p_j.
                axpy(&mut d_p.row_mut(j)[..r], g, w_i);
                axpy(&mut d_w.row_mut(i)[head.clone()], g, p_j);

                if aware && !o.interferers.is_empty() {
                    for t in 0..s {
                        let vs_rng = r + t * r..r + (t + 1) * r;
                        let vg_rng = r + s * r + t * r..r + s * r + (t + 1) * r;
                        let vs_t = &p_row[vs_rng.clone()];
                        let vg_t = &p_row[vg_rng.clone()];
                        let mut m_t = 0.0;
                        for &k in &o.interferers {
                            let w_k = &towers.w.row(k as usize)[head.clone()];
                            m_t += dot(w_k, vg_t);
                        }
                        let a_t = act.apply(m_t);
                        let s_t = dot(w_i, vs_t);

                        // d w_i += g · a_t · v_s ; d v_s += g · a_t · w_i.
                        axpy(&mut d_w.row_mut(i)[head.clone()], g * a_t, vs_t);
                        axpy(&mut d_p.row_mut(j)[vs_rng], g * a_t, w_i);
                        // Chain through the activation.
                        let dm = g * s_t * act.derivative(m_t);
                        if dm != 0.0 {
                            // d v_g += dm · Σ_k w_k ; d w_k += dm · v_g.
                            wk_sum.fill(0.0);
                            for &k in &o.interferers {
                                pitot_linalg::axpy_fanout(
                                    &mut wk_sum,
                                    &towers.w.row(k as usize)[head.clone()],
                                    dm,
                                    vg_t,
                                    &mut d_w.row_mut(k as usize)[head.clone()],
                                );
                            }
                            axpy(&mut d_p.row_mut(j)[vg_rng], dm, &wk_sum);
                        }
                    }
                }
            }
        }
    }

    /// Backpropagates accumulated output gradients through both towers,
    /// returning the full parameter-plane gradients.
    pub fn backward_towers(&self, towers: &TowerOutputs, d_w: &Matrix, d_p: &Matrix) -> GradPlane {
        let mut grads = GradPlane::zeros_like(&self.store);
        let mut scratch = pitot_linalg::Scratch::new();
        self.backward_towers_with(towers, d_w, d_p, &mut grads, &mut scratch);
        grads
    }

    /// [`PitotModel::backward_towers`] into a reusable gradient plane
    /// (shaped by [`GradPlane::zeros_like`] over [`PitotModel::store`]);
    /// intermediate matrices recycle through `scratch`, so the steady-state
    /// step is allocation-free.
    pub fn backward_towers_with(
        &self,
        towers: &TowerOutputs,
        d_w: &Matrix,
        d_p: &Matrix,
        grads: &mut GradPlane,
        scratch: &mut pitot_linalg::Scratch,
    ) {
        let q = self.config.learned_features;
        let params = self.store.params();
        let mut d_in_w = scratch.take_matrix(0, 0);
        let mut d_in_p = scratch.take_matrix(0, 0);
        // Only the φ columns of the tower-input gradient feed trainable
        // parameters (side-information columns are data), so the first
        // layer's dy·Wᵀ product is restricted to that window and the result
        // IS the φ gradient, copied straight into the plane.
        self.fw.backward_with_dx_cols(
            params,
            &towers.cache_w,
            d_w,
            &mut d_in_w,
            grads.as_mut_slice(),
            scratch,
            self.workload_feature_dim..self.workload_feature_dim + q,
        );
        self.fp.backward_with_dx_cols(
            params,
            &towers.cache_p,
            d_p,
            &mut d_in_p,
            grads.as_mut_slice(),
            scratch,
            self.platform_feature_dim..self.platform_feature_dim + q,
        );
        grads
            .slice_mut(self.phi_w)
            .copy_from_slice(d_in_w.as_slice());
        grads
            .slice_mut(self.phi_p)
            .copy_from_slice(d_in_p.as_slice());
        scratch.recycle_matrix(d_in_w);
        scratch.recycle_matrix(d_in_p);
    }

    /// Zeroed gradient buffers shaped like the tower outputs.
    pub fn zero_output_grads(&self, dataset: &Dataset) -> (Matrix, Matrix) {
        let n_heads = self.n_heads();
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        (
            Matrix::zeros(dataset.n_workloads, r * n_heads),
            Matrix::zeros(dataset.n_platforms, r * (1 + 2 * s)),
        )
    }

    /// Workload embeddings for head `h` (`Nw × r`), for interpretation
    /// (paper Fig 7 / 12a).
    pub fn workload_embeddings(&self, dataset: &Dataset, head: usize) -> Matrix {
        let (w, _) = self.infer_towers(dataset);
        let r = self.config.embed_dim;
        w.columns(head * r, r)
    }

    /// Decoded platform embeddings (paper Fig 12b–d).
    pub fn platform_embeddings(&self, dataset: &Dataset) -> PlatformEmbeddings {
        let (_, p_full) = self.infer_towers(dataset);
        let r = self.config.embed_dim;
        let s = self.config.interference_types;
        PlatformEmbeddings {
            p: p_full.columns(0, r),
            vs: (0..s).map(|t| p_full.columns(r + t * r, r)).collect(),
            vg: (0..s)
                .map(|t| p_full.columns(r + s * r + t * r, r))
                .collect(),
        }
    }

    /// Residual target for an observation under the configured loss space.
    pub fn residual_target(&self, obs: &Observation, scaling: &crate::ScalingBaseline) -> f32 {
        match self.config.loss_space {
            crate::LossSpace::LogResidual => scaling.residual(obs),
            crate::LossSpace::Log => obs.log_runtime(),
            crate::LossSpace::NaiveProportional => {
                let base = scaling
                    .log_baseline(obs.workload as usize, obs.platform as usize)
                    .exp();
                obs.runtime_s / base.max(1e-12)
            }
        }
    }
}

use pitot_linalg::dot;

#[inline]
fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    pitot_linalg::axpy_slice(alpha, src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LossSpace, Objective, PitotConfig, ScalingBaseline};
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};

    fn setup() -> (Dataset, PitotConfig) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        (ds, PitotConfig::tiny())
    }

    /// Fresh (cache-bypassing) initialization: the oracle for the replay
    /// path. Clearing the thread-local map forces the Box–Muller fill.
    fn fresh_init(cfg: &PitotConfig, ds: &Dataset) -> PitotModel {
        INIT_PLANES.with(|c| c.borrow_mut().clear());
        PitotModel::new(cfg, ds)
    }

    #[test]
    fn replayed_init_is_bitwise_identical_to_fresh_init() {
        let (ds, mut cfg) = setup();
        cfg.seed = 41;
        let fresh = fresh_init(&cfg, &ds);
        // Second construction replays the cached plane (assert it actually
        // took the replay path, then compare every scalar bitwise).
        let hits_before = INIT_CACHE_HITS.with(|h| h.get());
        let replayed = PitotModel::new(&cfg, &ds);
        assert_eq!(
            INIT_CACHE_HITS.with(|h| h.get()),
            hits_before + 1,
            "second identical construction must hit the init cache"
        );
        assert_eq!(fresh.store.params(), replayed.store.params());

        // A different seed must not false-hit.
        cfg.seed = 42;
        let other = PitotModel::new(&cfg, &ds);
        assert_ne!(fresh.store.params(), other.store.params());
        // And the replay of *that* seed matches its own fresh build.
        let other_fresh = fresh_init(&cfg, &ds);
        assert_eq!(other.store.params(), other_fresh.store.params());
    }

    #[test]
    fn shapes_are_consistent() {
        let (ds, cfg) = setup();
        let model = PitotModel::new(&cfg, &ds);
        let towers = model.forward_towers(&ds);
        assert_eq!(towers.w.shape(), (ds.n_workloads, cfg.embed_dim));
        assert_eq!(
            towers.p_full.shape(),
            (
                ds.n_platforms,
                cfg.embed_dim * (1 + 2 * cfg.interference_types)
            )
        );
    }

    #[test]
    fn quantile_heads_multiply_workload_width_only() {
        let (ds, mut cfg) = setup();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.9, 0.99]);
        let model = PitotModel::new(&cfg, &ds);
        let towers = model.forward_towers(&ds);
        assert_eq!(towers.w.cols(), cfg.embed_dim * 3);
        // Platform tower is shared across heads (paper Sec 3.5).
        assert_eq!(
            towers.p_full.cols(),
            cfg.embed_dim * (1 + 2 * cfg.interference_types)
        );
    }

    #[test]
    fn interference_changes_prediction_only_when_aware() {
        let (ds, cfg) = setup();
        let model = PitotModel::new(&cfg, &ds);
        let towers = model.forward_towers(&ds);
        // Find an interference observation.
        let idx = ds.mode_indices(2)[0];
        let with = model.predict(&towers.w, &towers.p_full, &ds, &[idx])[0][0];
        // Same observation with interferers stripped.
        let mut ds2 = ds.clone();
        ds2.observations[idx].interferers.clear();
        let without = model.predict(&towers.w, &towers.p_full, &ds2, &[idx])[0][0];
        assert_ne!(with, without, "interference term should contribute");

        let mut blind_cfg = cfg.clone();
        blind_cfg.interference = InterferenceMode::Ignore;
        let blind = PitotModel::new(&blind_cfg, &ds);
        let t2 = blind.forward_towers(&ds);
        let a = blind.predict(&t2.w, &t2.p_full, &ds, &[idx])[0][0];
        let b = blind.predict(&t2.w, &t2.p_full, &ds2, &[idx])[0][0];
        assert_eq!(a, b, "ignore-mode must not see interferers");
    }

    #[test]
    fn cached_interference_path_is_bitwise_identical() {
        // predict_into_cached + accumulate_grads_cached must produce exactly
        // the predictions and gradients of the uncached pair: the cache only
        // moves the inner products, never changes the arithmetic.
        let (ds, mut cfg) = setup();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.9]);
        let model = PitotModel::new(&cfg, &ds);
        let towers = model.forward_towers(&ds);
        let mut idx = ds.mode_indices(0)[..8].to_vec();
        idx.extend_from_slice(&ds.mode_indices(3)[..8]);

        let mut plain = Vec::new();
        model.predict_into(&towers.w, &towers.p_full, &ds, &idx, &mut plain);
        let mut cached = Vec::new();
        let mut mcache = Vec::new();
        model.predict_into_cached(
            &towers.w,
            &towers.p_full,
            &ds,
            &idx,
            &mut cached,
            &mut mcache,
        );
        assert_eq!(plain, cached, "cached predictions diverged");

        let d_pred: Vec<Vec<f32>> = plain
            .iter()
            .map(|head| head.iter().map(|p| p * 0.1 + 0.01).collect())
            .collect();
        let (mut dw_a, mut dp_a) = model.zero_output_grads(&ds);
        model.accumulate_grads(&towers, &ds, &idx, &d_pred, &mut dw_a, &mut dp_a);
        let (mut dw_b, mut dp_b) = model.zero_output_grads(&ds);
        model.accumulate_grads_cached(&towers, &ds, &idx, &d_pred, &mut dw_b, &mut dp_b, &mcache);
        assert_eq!(dw_a, dw_b, "cached d_w diverged");
        assert_eq!(dp_a, dp_b, "cached d_p diverged");
    }

    #[test]
    fn batch_prediction_matches_serial_bitwise() {
        let (ds, mut cfg) = setup();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.9]);
        let model = PitotModel::new(&cfg, &ds);
        let towers = model.forward_towers(&ds);
        let idx: Vec<usize> = (0..200.min(ds.observations.len())).collect();
        let serial = model.predict(&towers.w, &towers.p_full, &ds, &idx);
        let obs: Vec<&Observation> = idx.iter().map(|&i| &ds.observations[i]).collect();
        let mut batch = Matrix::zeros(0, 0);
        model.predict_batch_into(&towers.w, &towers.p_full, &obs, &mut batch);
        assert_eq!(batch.shape(), (idx.len(), 2));
        for (b, _) in idx.iter().enumerate() {
            for h in 0..2 {
                assert_eq!(batch[(b, h)], serial[h][b], "obs {b} head {h}");
            }
        }
    }

    /// Full-model gradient check: perturb every plane entry a little along a
    /// random direction and compare the analytic directional derivative with
    /// finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        let (ds, mut cfg) = setup();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.9]);
        let model = PitotModel::new(&cfg, &ds);
        let split = Split::stratified(&ds, 0.5, 0);
        let scaling = ScalingBaseline::fit(&ds, &split.train);

        // A small batch mixing isolation and interference observations.
        let mut idx = ds.mode_indices(0)[..4].to_vec();
        idx.extend_from_slice(&ds.mode_indices(3)[..4]);
        let targets: Vec<f32> = idx
            .iter()
            .map(|&i| model.residual_target(&ds.observations[i], &scaling))
            .collect();

        let loss_of = |m: &PitotModel| -> f32 {
            let (w, p) = m.infer_towers(&ds);
            let preds = m.predict(&w, &p, &ds, &idx);
            let mut total = 0.0;
            for head in &preds {
                let (l, _) = pitot_nn::squared_loss(head, &targets);
                total += l;
            }
            total
        };

        // Analytic gradients.
        let towers = model.forward_towers(&ds);
        let preds = model.predict(&towers.w, &towers.p_full, &ds, &idx);
        let (mut d_w, mut d_p) = model.zero_output_grads(&ds);
        let d_pred: Vec<Vec<f32>> = preds
            .iter()
            .map(|head| pitot_nn::squared_loss(head, &targets).1)
            .collect();
        model.accumulate_grads(&towers, &ds, &idx, &d_pred, &mut d_w, &mut d_p);
        let grads = model.backward_towers(&towers, &d_w, &d_p);

        // Directional derivative along a random direction over the plane.
        let mut m_plus = model.clone();
        let mut m_minus = model.clone();
        let eps = 1e-2f32;
        let mut analytic_dir = 0.0f64;
        {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let plus = m_plus.params_mut();
            let minus = m_minus.params_mut();
            for (k, g) in grads.as_slice().iter().enumerate() {
                let dir: f32 = if rand::Rng::gen_bool(&mut rng, 0.5) {
                    1.0
                } else {
                    -1.0
                };
                plus[k] += eps * dir;
                minus[k] -= eps * dir;
                analytic_dir += (g * dir) as f64;
            }
        }
        let numeric_dir = ((loss_of(&m_plus) - loss_of(&m_minus)) / (2.0 * eps)) as f64;
        let denom = 1.0f64.max(analytic_dir.abs()).max(numeric_dir.abs());
        assert!(
            (analytic_dir - numeric_dir).abs() / denom < 5e-2,
            "directional derivative mismatch: analytic {analytic_dir}, numeric {numeric_dir}"
        );
    }

    #[test]
    fn residual_targets_follow_loss_space() {
        let (ds, mut cfg) = setup();
        let split = Split::stratified(&ds, 0.5, 0);
        let scaling = ScalingBaseline::fit(&ds, &split.train);
        let o = &ds.observations[0];

        cfg.loss_space = LossSpace::LogResidual;
        let m = PitotModel::new(&cfg, &ds);
        assert!((m.residual_target(o, &scaling) - scaling.residual(o)).abs() < 1e-6);

        cfg.loss_space = LossSpace::Log;
        let m = PitotModel::new(&cfg, &ds);
        assert_eq!(m.residual_target(o, &scaling), o.log_runtime());

        cfg.loss_space = LossSpace::NaiveProportional;
        let m = PitotModel::new(&cfg, &ds);
        assert!(m.residual_target(o, &scaling) > 0.0);
    }

    #[test]
    fn param_count_scales_with_architecture() {
        let (ds, cfg) = setup();
        let small = PitotModel::new(&cfg, &ds).param_count();
        let mut big_cfg = cfg.clone();
        big_cfg.hidden = vec![64, 64];
        let big = PitotModel::new(&big_cfg, &ds).param_count();
        assert!(big > small);
    }

    #[test]
    fn params_live_in_one_contiguous_plane() {
        let (ds, cfg) = setup();
        let model = PitotModel::new(&cfg, &ds);
        let q = cfg.learned_features;
        // Towers first, then both φ tables, with no gaps.
        assert_eq!(model.fw.range().offset, 0);
        assert_eq!(model.fp.range().offset, model.fw.range().len);
        assert_eq!(model.phi_w.offset, model.fp.range().end());
        assert_eq!(model.phi_w.len, ds.n_workloads * q);
        assert_eq!(model.phi_p.offset, model.phi_w.end());
        assert_eq!(model.phi_p.end(), model.store.len());
    }

    #[test]
    fn embeddings_export_shapes() {
        let (ds, cfg) = setup();
        let model = PitotModel::new(&cfg, &ds);
        let w = model.workload_embeddings(&ds, 0);
        assert_eq!(w.shape(), (ds.n_workloads, cfg.embed_dim));
        let pe = model.platform_embeddings(&ds);
        assert_eq!(pe.p.shape(), (ds.n_platforms, cfg.embed_dim));
        assert_eq!(pe.vs.len(), cfg.interference_types);
        assert_eq!(pe.vg.len(), cfg.interference_types);
    }

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
}
