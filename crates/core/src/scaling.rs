//! The linear scaling baseline (paper Sec 3.2 / App B.1).
//!
//! Models `log C̄_ij = μ + w̄_i + p̄_j`: a global intercept plus a log
//! "difficulty" per workload and a log "slowness" per platform, fit by
//! alternating minimization of the squared log loss over interference-free
//! training observations. The convexity of the loss in each block makes
//! every sweep a closed-form mean update (paper Eq 14).

use pitot_testbed::{Dataset, Observation};
use serde::{Deserialize, Serialize};

/// Fitted scaling baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingBaseline {
    intercept: f32,
    workload: Vec<f32>,
    platform: Vec<f32>,
    /// Whether each workload appeared in the fit (unseen ⇒ offset 0).
    #[serde(default)]
    workload_seen: Vec<bool>,
    /// Whether each platform appeared in the fit (unseen ⇒ offset 0).
    #[serde(default)]
    platform_seen: Vec<bool>,
}

impl ScalingBaseline {
    /// Number of alternating-minimization sweeps; the problem is a convex
    /// quadratic, a handful of sweeps reaches numerical convergence.
    const SWEEPS: usize = 30;

    /// Fits the baseline on the *interference-free subset* of the given
    /// training observation indices.
    ///
    /// Entities that never appear in isolation in the train set keep a zero
    /// offset (i.e. they fall back to the global intercept); the residual
    /// model absorbs the rest.
    ///
    /// # Panics
    ///
    /// Panics if no interference-free training observation exists.
    pub fn fit(dataset: &Dataset, train_idx: &[usize]) -> Self {
        // Hoist the fit set into flat (workload, platform, log runtime)
        // arrays once: the sweeps below traverse the set 2·SWEEPS times, and
        // recomputing `ln(runtime)` plus chasing `Observation` pointers on
        // every pass used to dominate the per-`train()` fixed setup.
        let mut ws: Vec<u32> = Vec::new();
        let mut ps: Vec<u32> = Vec::new();
        let mut ys: Vec<f32> = Vec::new();
        for &i in train_idx {
            let o = &dataset.observations[i];
            if o.interferers.is_empty() {
                ws.push(o.workload);
                ps.push(o.platform);
                ys.push(o.log_runtime());
            }
        }
        assert!(
            !ys.is_empty(),
            "scaling baseline needs at least one interference-free observation"
        );

        let n_w = dataset.n_workloads;
        let n_p = dataset.n_platforms;
        let intercept = (ys.iter().map(|&y| y as f64).sum::<f64>() / ys.len() as f64) as f32;

        let mut w = vec![0.0f32; n_w];
        let mut p = vec![0.0f32; n_p];
        let mut w_count = vec![0u32; n_w];
        let mut p_count = vec![0u32; n_p];
        for (&wi, &pj) in ws.iter().zip(&ps) {
            w_count[wi as usize] += 1;
            p_count[pj as usize] += 1;
        }

        let mut acc_w = vec![0.0f64; n_w];
        let mut acc_p = vec![0.0f64; n_p];
        for _ in 0..Self::SWEEPS {
            // Update workload terms: w̄_i = mean(y − μ − p̄_j) (Eq 14).
            acc_w.fill(0.0);
            for ((&wi, &pj), &y) in ws.iter().zip(&ps).zip(&ys) {
                acc_w[wi as usize] += (y - intercept - p[pj as usize]) as f64;
            }
            for i in 0..n_w {
                if w_count[i] > 0 {
                    w[i] = (acc_w[i] / w_count[i] as f64) as f32;
                }
            }
            // Update platform terms symmetrically.
            acc_p.fill(0.0);
            for ((&wi, &pj), &y) in ws.iter().zip(&ps).zip(&ys) {
                acc_p[pj as usize] += (y - intercept - w[wi as usize]) as f64;
            }
            for j in 0..n_p {
                if p_count[j] > 0 {
                    p[j] = (acc_p[j] / p_count[j] as f64) as f32;
                }
            }
        }

        Self {
            intercept,
            workload: w,
            platform: p,
            workload_seen: w_count.iter().map(|&c| c > 0).collect(),
            platform_seen: p_count.iter().map(|&c| c > 0).collect(),
        }
    }

    /// Extends the baseline to entities first observed in `new_idx`,
    /// *without touching any already-fitted offset*.
    ///
    /// This is the online-learning counterpart of [`ScalingBaseline::fit`]:
    /// when a new device (or workload) starts reporting observations, its
    /// offsets are fit by the same alternating-minimization updates while
    /// every previously-seen entity — and therefore the residual space any
    /// deployed model and conformal calibration live in — stays frozen.
    ///
    /// Returns the extended baseline; entities still unobserved keep the
    /// zero offset.
    pub fn extend(&self, dataset: &Dataset, new_idx: &[usize]) -> Self {
        let obs: Vec<&Observation> = new_idx
            .iter()
            .map(|&i| &dataset.observations[i])
            .filter(|o| o.interferers.is_empty())
            .collect();
        let mut out = self.clone();

        // Which entities are new in this batch?
        let new_w: Vec<bool> = (0..out.workload.len())
            .map(|i| !out.workload_seen.get(i).copied().unwrap_or(false))
            .collect();
        let new_p: Vec<bool> = (0..out.platform.len())
            .map(|j| !out.platform_seen.get(j).copied().unwrap_or(false))
            .collect();

        let mut w_count = vec![0u32; out.workload.len()];
        let mut p_count = vec![0u32; out.platform.len()];
        for o in &obs {
            if new_w[o.workload as usize] {
                w_count[o.workload as usize] += 1;
            }
            if new_p[o.platform as usize] {
                p_count[o.platform as usize] += 1;
            }
        }

        for _ in 0..Self::SWEEPS {
            let mut acc = vec![0.0f64; out.workload.len()];
            for o in &obs {
                let i = o.workload as usize;
                if new_w[i] {
                    acc[i] += (o.log_runtime() - out.intercept - out.platform[o.platform as usize])
                        as f64;
                }
            }
            for (i, a) in acc.iter().enumerate() {
                if w_count[i] > 0 {
                    out.workload[i] = (a / w_count[i] as f64) as f32;
                }
            }
            let mut acc = vec![0.0f64; out.platform.len()];
            for o in &obs {
                let j = o.platform as usize;
                if new_p[j] {
                    acc[j] += (o.log_runtime() - out.intercept - out.workload[o.workload as usize])
                        as f64;
                }
            }
            for (j, a) in acc.iter().enumerate() {
                if p_count[j] > 0 {
                    out.platform[j] = (a / p_count[j] as f64) as f32;
                }
            }
        }

        for (i, &c) in w_count.iter().enumerate() {
            if c > 0 {
                out.workload_seen[i] = true;
            }
        }
        for (j, &c) in p_count.iter().enumerate() {
            if c > 0 {
                out.platform_seen[j] = true;
            }
        }
        out
    }

    /// Whether workload `i` contributed to the fit (or a later
    /// [`ScalingBaseline::extend`]).
    pub fn workload_observed(&self, i: usize) -> bool {
        self.workload_seen.get(i).copied().unwrap_or(false)
    }

    /// Whether platform `j` contributed to the fit (or a later
    /// [`ScalingBaseline::extend`]).
    pub fn platform_observed(&self, j: usize) -> bool {
        self.platform_seen.get(j).copied().unwrap_or(false)
    }

    /// Baseline prediction `log C̄_ij`.
    pub fn log_baseline(&self, workload: usize, platform: usize) -> f32 {
        self.intercept + self.workload[workload] + self.platform[platform]
    }

    /// Residual target `y = log C* − log C̄` for an observation.
    pub fn residual(&self, obs: &Observation) -> f32 {
        obs.log_runtime() - self.log_baseline(obs.workload as usize, obs.platform as usize)
    }

    /// Global intercept μ (mean log runtime of the fit set).
    pub fn intercept(&self) -> f32 {
        self.intercept
    }

    /// Per-workload log-difficulty offsets w̄.
    pub fn workload_offsets(&self) -> &[f32] {
        &self.workload
    }

    /// Per-platform log-slowness offsets p̄.
    pub fn platform_offsets(&self) -> &[f32] {
        &self.platform
    }

    /// Training loss of the baseline on an observation set (mean squared
    /// log-residual), useful for convergence tests.
    pub fn loss(&self, dataset: &Dataset, idx: &[usize]) -> f32 {
        let mut total = 0.0f64;
        let mut n = 0usize;
        for &i in idx {
            let o = &dataset.observations[i];
            if o.interferers.is_empty() {
                total += (self.residual(o) as f64).powi(2);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (total / n as f64) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};

    fn dataset() -> Dataset {
        Testbed::generate(&TestbedConfig::small()).collect_dataset()
    }

    #[test]
    fn baseline_explains_most_scale_variation() {
        let ds = dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let base = ScalingBaseline::fit(&ds, &split.train);
        // Raw log runtimes span many nats; residuals should be far smaller.
        let raw_var = {
            let ys: Vec<f32> = split
                .train
                .iter()
                .map(|&i| ds.observations[i].log_runtime())
                .filter(|y| y.is_finite())
                .collect();
            pitot_linalg::variance(&ys)
        };
        let res_var = base.loss(&ds, &split.train);
        assert!(
            res_var < raw_var * 0.1,
            "baseline leaves {res_var} of {raw_var} variance"
        );
    }

    #[test]
    fn alternating_minimization_converges() {
        // Loss after fit must not be improvable by another full fit from the
        // fitted state; we approximate by checking fit() twice gives the
        // same parameters (deterministic closed-form updates).
        let ds = dataset();
        let split = Split::stratified(&ds, 0.3, 1);
        let a = ScalingBaseline::fit(&ds, &split.train);
        let b = ScalingBaseline::fit(&ds, &split.train);
        assert_eq!(a.workload_offsets(), b.workload_offsets());
    }

    #[test]
    fn residuals_are_scale_invariant() {
        // Paper Eq 3: duplicating a workload γ× shifts log C and log C̄ by
        // the same amount, leaving the residual unchanged. We emulate by
        // shifting all of one workload's observations by ln(γ) and refitting.
        let ds = dataset();
        let split = Split::stratified(&ds, 0.5, 2);
        let base = ScalingBaseline::fit(&ds, &split.train);

        let gamma = 3.0f32;
        let mut shifted = ds.clone();
        for o in &mut shifted.observations {
            if o.workload == 0 {
                o.runtime_s *= gamma;
            }
        }
        let base2 = ScalingBaseline::fit(&shifted, &split.train);
        for &i in split.train.iter().take(2000) {
            let o = &ds.observations[i];
            let o2 = &shifted.observations[i];
            if o.interferers.is_empty() && o.workload == 0 {
                let r1 = base.residual(o);
                let r2 = base2.residual(o2);
                assert!(
                    (r1 - r2).abs() < 5e-3,
                    "residual changed under scaling: {r1} vs {r2}"
                );
            }
        }
    }

    #[test]
    fn unseen_entities_fall_back_to_intercept() {
        let ds = dataset();
        // Fit on a single observation; every other workload/platform is unseen.
        let one = vec![ds.mode_indices(0)[0]];
        let base = ScalingBaseline::fit(&ds, &one);
        let o = &ds.observations[one[0]];
        // A workload index different from the observed one:
        let other_w = (o.workload as usize + 1) % ds.n_workloads;
        let other_p = (o.platform as usize + 1) % ds.n_platforms;
        assert_eq!(base.log_baseline(other_w, other_p), base.intercept());
        assert!(base.workload_observed(o.workload as usize));
        assert!(!base.workload_observed(other_w));
    }

    #[test]
    fn extend_freezes_old_entities_and_fits_new_ones() {
        let ds = dataset();
        // Hold out one platform entirely from the initial fit.
        let held_out = ds.observations[ds.mode_indices(0)[0]].platform as usize;
        let initial: Vec<usize> = ds
            .mode_indices(0)
            .into_iter()
            .filter(|&i| ds.observations[i].platform as usize != held_out)
            .collect();
        let base = ScalingBaseline::fit(&ds, &initial);
        assert!(!base.platform_observed(held_out));
        assert_eq!(base.platform_offsets()[held_out], 0.0);

        // New data: the held-out platform's observations.
        let new_idx: Vec<usize> = ds
            .mode_indices(0)
            .into_iter()
            .filter(|&i| ds.observations[i].platform as usize == held_out)
            .collect();
        let extended = base.extend(&ds, &new_idx);

        // Old entities are bit-identical.
        for j in 0..ds.n_platforms {
            if j != held_out {
                assert_eq!(base.platform_offsets()[j], extended.platform_offsets()[j]);
            }
        }
        assert_eq!(base.workload_offsets(), extended.workload_offsets());
        assert_eq!(base.intercept(), extended.intercept());

        // The new platform now has a meaningful offset that shrinks its
        // residuals.
        assert!(extended.platform_observed(held_out));
        let res_before: f32 = new_idx
            .iter()
            .map(|&i| base.residual(&ds.observations[i]).abs())
            .sum::<f32>()
            / new_idx.len() as f32;
        let res_after: f32 = new_idx
            .iter()
            .map(|&i| extended.residual(&ds.observations[i]).abs())
            .sum::<f32>()
            / new_idx.len() as f32;
        assert!(
            res_after < res_before * 0.7,
            "extend should shrink new-platform residuals: {res_before} → {res_after}"
        );
    }

    #[test]
    fn extend_is_idempotent_on_fully_seen_data() {
        let ds = dataset();
        let split = Split::stratified(&ds, 0.5, 3);
        let base = ScalingBaseline::fit(&ds, &split.train);
        let extended = base.extend(&ds, &split.train);
        assert_eq!(base.workload_offsets(), extended.workload_offsets());
        assert_eq!(base.platform_offsets(), extended.platform_offsets());
    }
}
