//! Point-prediction evaluation (paper Sec 5.1 "Error").

use crate::train::TrainedPitot;
use pitot_testbed::{Dataset, MAX_INTERFERERS};

/// Mean absolute percentage error between predicted and actual runtimes.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape(predicted_s: &[f32], actual_s: &[f32]) -> f32 {
    assert_eq!(predicted_s.len(), actual_s.len(), "length mismatch");
    assert!(!predicted_s.is_empty(), "MAPE of empty set");
    let total: f64 = predicted_s
        .iter()
        .zip(actual_s)
        .map(|(p, a)| ((p - a).abs() / a.max(1e-12)) as f64)
        .sum();
    (total / predicted_s.len() as f64) as f32
}

/// MAPE of a trained model over specific observation indices.
pub(crate) fn mape_for(trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> f32 {
    let pred = trained.predict_runtime(dataset, idx);
    let actual: Vec<f32> = idx
        .iter()
        .map(|&i| dataset.observations[i].runtime_s)
        .collect();
    mape(&pred, &actual)
}

/// MAPE split by interference count: element `k` is the MAPE over
/// observations with exactly `k` interferers (`None` if the mode is absent).
pub fn mape_by_mode(trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> Vec<Option<f32>> {
    (0..=MAX_INTERFERERS)
        .map(|k| {
            let mode_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| dataset.observations[i].interferers.len() == k)
                .collect();
            if mode_idx.is_empty() {
                None
            } else {
                Some(mape_for(trained, dataset, &mode_idx))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basics() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let m = mape(&[1.1], &[1.0]);
        assert!((m - 0.1).abs() < 1e-6);
        // Symmetric in direction of error magnitude relative to actual.
        let m2 = mape(&[0.9], &[1.0]);
        assert!((m2 - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mape_rejects_empty() {
        let _ = mape(&[], &[]);
    }
}
