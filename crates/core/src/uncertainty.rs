//! Conformal runtime bounds on top of a trained model (paper Sec 3.5).
//!
//! The validation portion of the split doubles as the conformal holdout:
//! it is divided in half into a *calibration* set (conformity scores) and a
//! *selection* set (quantile-head choice), both partitioned into pools by
//! interference count.

use crate::train::TrainedPitot;
use pitot_conformal::{
    coverage, overprovision_margin, HeadSelection, PooledConformal, PredictionSet, SweepCalibration,
};
use pitot_testbed::Dataset;

/// A calibrated upper-bound predictor for workload runtimes.
#[derive(Debug, Clone)]
pub struct RuntimeBounds {
    conformal: PooledConformal,
}

/// One model's calibration data, prepared once: the holdout is predicted a
/// single time, nonconformity scores are partitioned and sorted, and every
/// subsequent [`RuntimeCalibration::fit`] — any miscoverage level, any head
/// selection — reduces to rank lookups plus head selection. This is what
/// makes an ε-sweep (every uncertainty figure) pay for prediction once
/// instead of once per point.
#[derive(Debug, Clone)]
pub struct RuntimeCalibration {
    sweep: SweepCalibration,
}

impl RuntimeCalibration {
    /// Fits bounds at one miscoverage level from the precomputed scores.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn fit(&self, epsilon: f32, selection: HeadSelection) -> RuntimeBounds {
        RuntimeBounds {
            conformal: self.sweep.fit(epsilon, selection),
        }
    }
}

impl TrainedPitot {
    /// Prepares the model's conformal calibration data: predicts the
    /// validation holdout once (calibration + selection halves) and
    /// pre-sorts the nonconformity scores per pool.
    ///
    /// # Panics
    ///
    /// Panics if the validation split is empty.
    pub fn calibration(&self, dataset: &Dataset) -> RuntimeCalibration {
        assert!(
            !self.split.val.is_empty(),
            "validation split required for calibration"
        );
        // Half the holdout calibrates, half drives head selection. The val
        // list is ordered by interference mode, so interleave rather than
        // bisect — both halves must contain every calibration pool.
        let (cal_idx, sel_idx) = split_holdout(&self.split.val);

        let cal_preds = self.predict_log_runtime(dataset, &cal_idx);
        let sel_preds = self.predict_log_runtime(dataset, &sel_idx);
        let (cal_t, cal_pool) = targets_and_pools(dataset, &cal_idx);
        let (sel_targets, sel_pools) = targets_and_pools(dataset, &sel_idx);

        RuntimeCalibration {
            sweep: SweepCalibration::new(
                &PredictionSet {
                    predictions: &cal_preds,
                    targets_log: &cal_t,
                    pools: &cal_pool,
                },
                sel_preds,
                sel_targets,
                sel_pools,
                self.model.config().objective.xis(),
            ),
        }
    }

    /// Fits conformal upper bounds at miscoverage `epsilon` using the
    /// model's validation split.
    ///
    /// `selection` picks between the paper's method
    /// ([`HeadSelection::TightestOnValidation`]), naive CQR, and plain split
    /// conformal for single-head models. Callers fitting several miscoverage
    /// levels should prepare [`TrainedPitot::calibration`] once and call
    /// [`RuntimeCalibration::fit`] per level.
    ///
    /// # Panics
    ///
    /// Panics if the validation split is empty or `epsilon ∉ (0, 1)`.
    pub fn fit_bounds(
        &self,
        dataset: &Dataset,
        epsilon: f32,
        selection: HeadSelection,
    ) -> RuntimeBounds {
        self.calibration(dataset).fit(epsilon, selection)
    }
}

impl RuntimeBounds {
    /// Runtime budgets (seconds) sufficient with probability `1 − ε` for the
    /// given observations.
    pub fn bounds_s(&self, trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
        self.bounds_log(trained, dataset, idx)
            .into_iter()
            .map(|b| b.exp())
            .collect()
    }

    /// Log-space bounds for the given observations.
    pub fn bounds_log(&self, trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
        let preds = trained.predict_log_runtime(dataset, idx);
        idx.iter()
            .enumerate()
            .map(|(b, &oi)| {
                let pool = dataset.observations[oi].interferers.len();
                let head_preds: Vec<f32> = preds.iter().map(|h| h[b]).collect();
                self.conformal.bound_log(&head_preds, pool)
            })
            .collect()
    }

    /// Empirical coverage of the bounds over the given observations.
    pub fn coverage(&self, trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> f32 {
        let bounds = self.bounds_log(trained, dataset, idx);
        let targets: Vec<f32> = idx
            .iter()
            .map(|&i| dataset.observations[i].log_runtime())
            .collect();
        coverage(&bounds, &targets)
    }

    /// Overprovisioning margin (paper Eq 11) over the given observations.
    pub fn margin(&self, trained: &TrainedPitot, dataset: &Dataset, idx: &[usize]) -> f32 {
        let bounds = self.bounds_log(trained, dataset, idx);
        let targets: Vec<f32> = idx
            .iter()
            .map(|&i| dataset.observations[i].log_runtime())
            .collect();
        overprovision_margin(&bounds, &targets)
    }

    /// The underlying pooled conformal calibration.
    pub fn conformal(&self) -> &PooledConformal {
        &self.conformal
    }

    /// Log-space bound computed directly from per-head log predictions for
    /// calibration pool `pool` (the number of interfering workloads).
    ///
    /// This is the query-path entry point: callers that predict heads via
    /// [`TrainedPitot::predict_log_runtime_cached`] can bound synthetic
    /// placements without materializing dataset observations.
    pub fn bound_log_from_heads(&self, head_preds: &[f32], pool: usize) -> f32 {
        self.conformal.bound_log(head_preds, pool)
    }
}

/// Interleaves a holdout list into (calibration, selection) halves so both
/// contain every interference mode; a lone observation lands in both.
pub(crate) fn split_holdout(val: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let cal: Vec<usize> = val.iter().copied().step_by(2).collect();
    let sel: Vec<usize> = val.iter().copied().skip(1).step_by(2).collect();
    if sel.is_empty() {
        (cal.clone(), cal)
    } else {
        (cal, sel)
    }
}

fn targets_and_pools(dataset: &Dataset, idx: &[usize]) -> (Vec<f32>, Vec<usize>) {
    idx.iter()
        .map(|&i| {
            let o = &dataset.observations[i];
            (o.log_runtime(), o.interferers.len())
        })
        .unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, Objective, PitotConfig};
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};

    #[test]
    fn bounds_cover_and_tighten() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 400;
        let trained = train(&ds, &split, &cfg);

        let eps = 0.1;
        let bounds = trained.fit_bounds(&ds, eps, HeadSelection::TightestOnValidation);
        let test: Vec<usize> = split.test.iter().copied().take(4000).collect();
        let cov = bounds.coverage(&trained, &ds, &test);
        assert!(cov >= 1.0 - eps - 0.05, "coverage {cov}");

        // Bounds must sit above point predictions most of the time.
        let m = bounds.margin(&trained, &ds, &test);
        assert!(m > 0.0 && m.is_finite(), "margin {m}");

        // Tighter epsilon ⇒ larger (or equal) margin.
        let loose = trained.fit_bounds(&ds, 0.3, HeadSelection::TightestOnValidation);
        let m_loose = loose.margin(&trained, &ds, &test);
        assert!(m_loose <= m * 1.2, "loose margin {m_loose} vs strict {m}");
    }

    #[test]
    fn single_head_bounds_work_for_squared_models() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 1);
        let trained = train(&ds, &split, &PitotConfig::tiny());
        let bounds = trained.fit_bounds(&ds, 0.1, HeadSelection::SingleHead);
        let test: Vec<usize> = split.test.iter().copied().take(2000).collect();
        let cov = bounds.coverage(&trained, &ds, &test);
        assert!(cov >= 0.85, "coverage {cov}");
    }
}
