//! Training loop (paper Sec 3.6 / App B.3).
//!
//! Pitot is trained with AdaMax over a weighted multi-objective loss:
//! a fixed-size batch is drawn from every interference mode each step
//! (isolation plus 2/3/4-way), the no-interference objective has weight 1.0,
//! and the interference objective weight β is split equally across modes.
//! Every `eval_every` steps the model is evaluated on (a sample of) the
//! validation set and the best checkpoint is retained.

use crate::config::{InterferenceMode, LossSpace, Objective, PitotConfig};
use crate::model::{BatchGrads, PitotModel, TowerOutputs};
use crate::scaling::ScalingBaseline;
use pitot_linalg::{Matrix, Scratch};
use pitot_nn::{pinball_loss, pinball_loss_into, squared_loss, squared_loss_into, Optimizer};
use pitot_testbed::{split::Split, Dataset, MAX_INTERFERERS};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One validation checkpoint record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Optimizer step at which validation ran.
    pub step: usize,
    /// Weighted validation loss.
    pub val_loss: f32,
}

/// Pre-computed tower outputs for repeated query prediction
/// (see [`TrainedPitot::tower_cache`]).
#[derive(Debug, Clone)]
pub struct TowerCache {
    /// Workload tower output (`Nw × r·n_heads`).
    pub w: pitot_linalg::Matrix,
    /// Platform tower output (`Np × r·(1+2s)`).
    pub p_full: pitot_linalg::Matrix,
}

/// A trained Pitot model with its scaling baseline and training history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedPitot {
    /// Best-validation model checkpoint.
    pub model: PitotModel,
    /// The scaling baseline the residuals are anchored to.
    pub scaling: ScalingBaseline,
    /// Validation-loss history.
    pub history: Vec<TrainProgress>,
    /// The split this model was trained on (kept for conformal fitting).
    pub split: Split,
}

/// Trains Pitot on `split.train`, checkpointing on `split.val`.
///
/// # Panics
///
/// Panics if the split has no usable training data for the configured
/// interference mode.
pub fn train(dataset: &Dataset, split: &Split, config: &PitotConfig) -> TrainedPitot {
    config.validate();
    let model = PitotModel::new(config, dataset);
    let scaling = ScalingBaseline::fit(dataset, &split.train);
    train_from(model, scaling, dataset, split, config)
}

/// Continues training from an existing model state (online learning: the
/// paper's Conclusion names efficient online updates as the main extension;
/// warm-starting from the deployed checkpoint converges in a fraction of the
/// from-scratch step budget when new observations arrive).
///
/// The scaling baseline is *kept fixed* so the residual space — and any
/// conformal calibration downstream — stays comparable across updates.
///
/// # Panics
///
/// Panics if the split has no usable training data for the configured
/// interference mode.
pub fn train_from(
    mut model: PitotModel,
    scaling: ScalingBaseline,
    dataset: &Dataset,
    split: &Split,
    config: &PitotConfig,
) -> TrainedPitot {
    config.validate();
    let mut opt = config.optimizer.build(config.learning_rate);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(0x7EA1_BA7C));

    // Mode index pools. Mode 0 = isolation; modes 1..=3 = k interferers.
    let mode_pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
        .map(|k| match config.interference {
            InterferenceMode::Discard if k > 0 => Vec::new(),
            _ => split.train_mode(dataset, k),
        })
        .collect();
    assert!(
        !mode_pools[0].is_empty(),
        "no interference-free training observations in split"
    );
    let mode_weights = mode_weights(config);

    // Validation sample (capped for single-core speed), per mode.
    let val_idx = {
        let mut per_mode: Vec<usize> = Vec::new();
        let mut by_mode: Vec<Vec<usize>> = (0..=MAX_INTERFERERS).map(|_| Vec::new()).collect();
        for &i in &split.val {
            by_mode[dataset.observations[i].interferers.len()].push(i);
        }
        for pool in &mut by_mode {
            pool.shuffle(&mut rng);
            let cap = if config.val_cap == 0 {
                pool.len()
            } else {
                config.val_cap
            };
            per_mode.extend(pool.iter().take(cap));
        }
        per_mode
    };

    let mut best: Option<(f32, PitotModel)> = None;
    let mut history = Vec::new();
    let mut bufs = StepBuffers::new(&model, dataset);

    for step in 1..=config.steps {
        training_step(
            &mut model,
            dataset,
            &scaling,
            config,
            &mode_pools,
            &mode_weights,
            &mut rng,
            opt.as_mut(),
            &mut bufs,
        );

        if step % config.eval_every == 0 || step == config.steps {
            let val_loss = evaluate_loss(&model, &scaling, dataset, &val_idx, config);
            history.push(TrainProgress { step, val_loss });
            let better = best.as_ref().is_none_or(|(b, _)| val_loss < *b);
            if better {
                best = Some((val_loss, model.clone()));
            }
        }
    }

    let (_, best_model) = best.expect("at least one evaluation ran");
    TrainedPitot {
        model: best_model,
        scaling,
        history,
        split: split.clone(),
    }
}

/// Reusable buffers for one optimizer step.
///
/// Every matrix, gradient block, and index vector the step needs is
/// allocated once here and recycled in place, so the steady-state training
/// step performs **zero matrix allocations** (asserted by the
/// `steady_state_steps_are_matrix_alloc_free` test below via
/// `pitot_linalg::alloc_count`).
struct StepBuffers {
    towers: TowerOutputs,
    d_w: Matrix,
    d_p: Matrix,
    grads: BatchGrads,
    scratch: Scratch,
    batch: Vec<usize>,
    targets: Vec<f32>,
    preds: Vec<Vec<f32>>,
    d_pred: Vec<Vec<f32>>,
}

impl StepBuffers {
    fn new(model: &PitotModel, dataset: &Dataset) -> Self {
        let (d_w, d_p) = model.zero_output_grads(dataset);
        Self {
            towers: TowerOutputs::new(),
            d_w,
            d_p,
            grads: BatchGrads::zeros_like(model),
            scratch: Scratch::new(),
            batch: Vec::new(),
            targets: Vec::new(),
            preds: Vec::new(),
            d_pred: Vec::new(),
        }
    }
}

/// One full optimizer step: dense tower pass, per-mode batches, output-side
/// gradient accumulation, tower backprop, parameter update. All working
/// memory lives in `bufs`.
#[allow(clippy::too_many_arguments)]
fn training_step<R: Rng + ?Sized>(
    model: &mut PitotModel,
    dataset: &Dataset,
    scaling: &ScalingBaseline,
    config: &PitotConfig,
    mode_pools: &[Vec<usize>],
    mode_weights: &[f32; MAX_INTERFERERS + 1],
    rng: &mut R,
    opt: &mut dyn Optimizer,
    bufs: &mut StepBuffers,
) {
    model.forward_towers_with(dataset, &mut bufs.towers);
    bufs.d_w.fill(0.0);
    bufs.d_p.fill(0.0);

    for (k, pool) in mode_pools.iter().enumerate() {
        if pool.is_empty() || mode_weights[k] == 0.0 {
            continue;
        }
        bufs.batch.clear();
        bufs.batch
            .extend((0..config.batch_per_mode).map(|_| pool[rng.gen_range(0..pool.len())]));
        bufs.targets.clear();
        bufs.targets.extend(
            bufs.batch
                .iter()
                .map(|&i| model.residual_target(&dataset.observations[i], scaling)),
        );
        model.predict_into(
            &bufs.towers.w,
            &bufs.towers.p_full,
            dataset,
            &bufs.batch,
            &mut bufs.preds,
        );
        loss_gradients_into(
            config,
            &bufs.preds,
            &bufs.targets,
            mode_weights[k],
            &mut bufs.d_pred,
        );
        model.accumulate_grads(
            &bufs.towers,
            dataset,
            &bufs.batch,
            &bufs.d_pred,
            &mut bufs.d_w,
            &mut bufs.d_p,
        );
    }

    model.backward_towers_with(
        &bufs.towers,
        &bufs.d_w,
        &bufs.d_p,
        &mut bufs.grads,
        &mut bufs.scratch,
    );
    let grad_refs = model.grad_slices(&bufs.grads);
    opt.step(&mut model.param_slices_mut(), &grad_refs);
}

/// Per-mode objective weights (paper App B.3 / D.2): isolation gets 1.0,
/// interference modes share β equally.
fn mode_weights(config: &PitotConfig) -> [f32; MAX_INTERFERERS + 1] {
    let mut w = [0.0f32; MAX_INTERFERERS + 1];
    w[0] = 1.0;
    match config.interference {
        InterferenceMode::Discard => {}
        _ => {
            for wk in w.iter_mut().skip(1) {
                *wk = config.interference_weight / MAX_INTERFERERS as f32;
            }
        }
    }
    w
}

/// Computes `∂L/∂ŷ` per head for a batch, scaled by the mode weight, into
/// reusable per-head buffers.
fn loss_gradients_into(
    config: &PitotConfig,
    preds: &[Vec<f32>],
    targets: &[f32],
    weight: f32,
    out: &mut Vec<Vec<f32>>,
) {
    let head_scale = weight / preds.len() as f32;
    out.resize_with(preds.len(), Vec::new);
    match &config.objective {
        Objective::Squared => {
            for (p, g) in preds.iter().zip(out.iter_mut()) {
                squared_loss_into(p, targets, g);
                for v in g.iter_mut() {
                    *v *= head_scale;
                }
            }
        }
        Objective::Quantiles(xis) => {
            for ((p, &xi), g) in preds.iter().zip(xis).zip(out.iter_mut()) {
                pinball_loss_into(p, targets, xi, g);
                for v in g.iter_mut() {
                    *v *= head_scale;
                }
            }
        }
    }
}

/// Weighted loss over an index set (used for validation checkpointing).
pub(crate) fn evaluate_loss(
    model: &PitotModel,
    scaling: &ScalingBaseline,
    dataset: &Dataset,
    idx: &[usize],
    config: &PitotConfig,
) -> f32 {
    if idx.is_empty() {
        return f32::INFINITY;
    }
    let (w, p_full) = model.infer_towers(dataset);
    let weights = mode_weights(config);
    let mut total = 0.0f32;
    let mut total_w = 0.0f32;
    for k in 0..=MAX_INTERFERERS {
        let mode_idx: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| dataset.observations[i].interferers.len() == k)
            .collect();
        if mode_idx.is_empty() || weights[k] == 0.0 {
            continue;
        }
        let targets: Vec<f32> = mode_idx
            .iter()
            .map(|&i| model.residual_target(&dataset.observations[i], scaling))
            .collect();
        let preds = model.predict(&w, &p_full, dataset, &mode_idx);
        let mut mode_loss = 0.0;
        match &config.objective {
            Objective::Squared => {
                for head in &preds {
                    mode_loss += squared_loss(head, &targets).0;
                }
            }
            Objective::Quantiles(xis) => {
                for (head, &xi) in preds.iter().zip(xis) {
                    mode_loss += pinball_loss(head, &targets, xi).0;
                }
            }
        }
        total += weights[k] * mode_loss / preds.len() as f32;
        total_w += weights[k];
    }
    if total_w > 0.0 {
        total / total_w
    } else {
        f32::INFINITY
    }
}

impl TrainedPitot {
    /// Warm-start continuation: trains further on a (possibly updated) split
    /// with a reduced step budget (online-learning extension).
    ///
    /// Offsets of already-seen entities in the scaling baseline stay frozen,
    /// so the residual space — and any conformal calibration — remains
    /// comparable for them; entities appearing for the *first* time (a new
    /// device's platforms, a new workload) get proper baseline offsets via
    /// [`ScalingBaseline::extend`]. Without that extension a new platform
    /// would carry a multi-nat baseline error that no short warm start could
    /// absorb.
    pub fn fine_tune(&self, dataset: &Dataset, split: &Split, steps: usize) -> TrainedPitot {
        let mut cfg = self.model.config().clone();
        cfg.steps = steps;
        cfg.eval_every = cfg.eval_every.min(steps.max(1));
        let scaling = self.scaling.extend(dataset, &split.train);
        train_from(self.model.clone(), scaling, dataset, split, &cfg)
    }

    /// Serializes the full trained state (model, baseline, history, split)
    /// to JSON for deployment or archival.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained model serializes")
    }

    /// Restores a trained state serialized by [`TrainedPitot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Per-head log-runtime predictions for the given observations.
    ///
    /// For the default log-residual loss this is `log C̄ + ŷ`; the other loss
    /// spaces are mapped back to log runtime accordingly.
    pub fn predict_log_runtime(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let towers = self.tower_cache(dataset);
        let obs: Vec<&pitot_testbed::Observation> =
            idx.iter().map(|&oi| &dataset.observations[oi]).collect();
        self.predict_log_runtime_cached(&towers, &obs)
    }

    /// Pre-computes both tower outputs for repeated query prediction.
    ///
    /// Tower evaluation is the expensive part of inference (two MLP passes
    /// over every entity); query-heavy callers such as the orchestrator
    /// compute the towers once per model and reuse them for every placement
    /// decision via [`TrainedPitot::predict_log_runtime_cached`].
    pub fn tower_cache(&self, dataset: &Dataset) -> TowerCache {
        let (w, p_full) = self.model.infer_towers(dataset);
        TowerCache { w, p_full }
    }

    /// Per-head log-runtime predictions for arbitrary (possibly synthetic)
    /// observations, using a pre-computed [`TowerCache`].
    ///
    /// Only the index fields of each observation are read, so callers may
    /// construct "what if" queries that were never measured.
    pub fn predict_log_runtime_cached(
        &self,
        towers: &TowerCache,
        obs: &[&pitot_testbed::Observation],
    ) -> Vec<Vec<f32>> {
        let residuals = self
            .model
            .predict_each(&towers.w, &towers.p_full, obs.iter().copied());
        let cfg = self.model.config();
        let mut out: Vec<Vec<f32>> = residuals
            .into_iter()
            .map(|head| {
                head.into_iter()
                    .zip(obs)
                    .map(|(y, o)| {
                        let base = self
                            .scaling
                            .log_baseline(o.workload as usize, o.platform as usize);
                        match cfg.loss_space {
                            LossSpace::LogResidual => base + y,
                            LossSpace::Log => y,
                            LossSpace::NaiveProportional => {
                                // ŷ is a linear-space ratio; clamp to stay in
                                // the log domain.
                                base + y.max(1e-6).ln()
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        if cfg.rearrange_quantiles {
            pitot_conformal::rearrange_heads(&mut out);
        }
        out
    }

    /// Point predictions in seconds (head 0; the only head under
    /// [`Objective::Squared`]).
    pub fn predict_runtime(&self, dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
        self.predict_log_runtime(dataset, idx)[0]
            .iter()
            .map(|l| l.exp())
            .collect()
    }

    /// Mean absolute percentage error on the given observations, optionally
    /// restricted to a specific interference count. Returns `NaN` when the
    /// (filtered) index set is empty so sweep code can skip absent modes.
    pub fn mape(&self, dataset: &Dataset, idx: &[usize], mode: Option<usize>) -> f32 {
        let filtered: Vec<usize> = match mode {
            Some(k) => idx
                .iter()
                .copied()
                .filter(|&i| dataset.observations[i].interferers.len() == k)
                .collect(),
            None => idx.to_vec(),
        };
        if filtered.is_empty() {
            return f32::NAN;
        }
        crate::eval::mape_for(self, dataset, &filtered)
    }

    /// The step/loss trace recorded during training.
    pub fn final_val_loss(&self) -> f32 {
        self.history
            .iter()
            .map(|p| p.val_loss)
            .fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn training_reduces_validation_loss() {
        let (ds, split) = setup();
        let trained = train(&ds, &split, &PitotConfig::tiny());
        let first = trained.history.first().unwrap().val_loss;
        let best = trained.final_val_loss();
        assert!(
            best < first,
            "validation loss did not improve: first {first}, best {best}"
        );
    }

    #[test]
    fn trained_model_beats_scaling_baseline_on_mape() {
        let (ds, split) = setup();
        let trained = train(&ds, &split, &PitotConfig::tiny());
        let mape = trained.mape(&ds, &split.test, Some(0));
        // The scaling baseline alone leaves the pair-affinity structure
        // unexplained; the tiny model should land comfortably under 60%.
        assert!(mape < 0.6, "isolation MAPE {mape}");
        assert!(mape > 0.0);
    }

    #[test]
    fn discard_mode_trains_without_interference_data() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.interference = InterferenceMode::Discard;
        cfg.steps = 100;
        let trained = train(&ds, &split, &cfg);
        assert!(trained.final_val_loss().is_finite());
    }

    #[test]
    fn quantile_training_orders_heads() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.95]);
        cfg.steps = 400;
        let trained = train(&ds, &split, &cfg);
        let preds = trained.predict_log_runtime(&ds, &split.test[..200.min(split.test.len())]);
        // The 95th-percentile head should usually predict above the median
        // head after training.
        let above = preds[0]
            .iter()
            .zip(&preds[1])
            .filter(|(med, hi)| hi >= med)
            .count();
        assert!(
            above as f32 / preds[0].len() as f32 > 0.7,
            "only {above}/{} hi-quantile predictions above median",
            preds[0].len()
        );
    }

    #[test]
    fn serialization_round_trip_preserves_predictions() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 80;
        let trained = train(&ds, &split, &cfg);
        let restored = TrainedPitot::from_json(&trained.to_json()).unwrap();
        let idx: Vec<usize> = split.test.iter().copied().take(20).collect();
        assert_eq!(
            trained.predict_log_runtime(&ds, &idx),
            restored.predict_log_runtime(&ds, &idx)
        );
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TrainedPitot::from_json("not json").is_err());
    }

    #[test]
    fn fine_tuning_does_not_regress() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 250;
        let trained = train(&ds, &split, &cfg);
        let tuned = trained.fine_tune(&ds, &split, 150);
        let idx = split.test[..2000.min(split.test.len())].to_vec();
        let before = trained.mape(&ds, &idx, Some(0));
        let after = tuned.mape(&ds, &idx, Some(0));
        assert!(
            after <= before * 1.1,
            "fine-tuning regressed: {before} → {after}"
        );
    }

    #[test]
    fn fine_tuning_adapts_to_new_observations() {
        // Warm-start on a split with more data must be at least as good as
        // the stale model, with far fewer steps than training from scratch.
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let early = Split::stratified(&ds, 0.2, 0);
        let late = Split::stratified(&ds, 0.7, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 300;
        let stale = train(&ds, &early, &cfg);
        let tuned = stale.fine_tune(&ds, &late, 150);
        let idx: Vec<usize> = late
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2000)
            .collect();
        let m_stale = stale.mape(&ds, &idx, None);
        let m_tuned = tuned.mape(&ds, &idx, None);
        assert!(
            m_tuned <= m_stale * 1.05,
            "online update should help: stale {m_stale}, tuned {m_tuned}"
        );
    }

    #[test]
    fn layer_normalized_towers_train() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.tower_layer_norm = true;
        cfg.steps = 200;
        let trained = train(&ds, &split, &cfg);
        assert!(trained.final_val_loss().is_finite());
        let idx: Vec<usize> = split.test.iter().copied().take(200).collect();
        let mape = trained.mape(&ds, &idx, None);
        assert!(mape.is_finite() && mape < 2.0, "LN-tower MAPE {mape}");
        // The serialized checkpoint round-trips the layer-norm parameters.
        let restored = TrainedPitot::from_json(&trained.to_json()).unwrap();
        assert_eq!(
            trained.predict_log_runtime(&ds, &idx[..10]),
            restored.predict_log_runtime(&ds, &idx[..10])
        );
    }

    #[test]
    fn rearrangement_removes_head_crossing() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 200;
        let trained = train(&ds, &split, &cfg);
        let idx: Vec<usize> = split.test.iter().copied().take(1500).collect();
        let raw = trained.predict_log_runtime(&ds, &idx);
        let raw_crossing = pitot_conformal::crossing_rate(&raw);

        let mut cfg2 = cfg.clone();
        cfg2.rearrange_quantiles = true;
        let mut trained2 = trained.clone();
        // Same weights, only the config flag differs.
        trained2.model = {
            let mut m = trained.model.clone();
            m.set_config(cfg2);
            m
        };
        let fixed = trained2.predict_log_runtime(&ds, &idx);
        assert_eq!(pitot_conformal::crossing_rate(&fixed), 0.0);
        // At 200 steps heads are under-trained, so some crossing exists to fix.
        assert!(raw_crossing >= 0.0);
        // Rearrangement permutes values per observation; the multiset of
        // head predictions for observation 0 must be preserved.
        let mut a: Vec<f32> = raw.iter().map(|h| h[0]).collect();
        let mut b: Vec<f32> = fixed.iter().map(|h| h[0]).collect();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn steady_state_steps_are_matrix_alloc_free() {
        // After a short warmup (buffers sized, optimizer moments allocated),
        // the training step must recycle every matrix buffer: the counter in
        // pitot_linalg::alloc_count stays at zero across further steps.
        let (ds, split) = setup();
        let cfg = PitotConfig::tiny();
        let mut model = PitotModel::new(&cfg, &ds);
        let scaling = ScalingBaseline::fit(&ds, &split.train);
        let mut opt = cfg.optimizer.build(cfg.learning_rate);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mode_pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
            .map(|k| split.train_mode(&ds, k))
            .collect();
        let weights = mode_weights(&cfg);
        let mut bufs = StepBuffers::new(&model, &ds);

        for _ in 0..3 {
            training_step(
                &mut model,
                &ds,
                &scaling,
                &cfg,
                &mode_pools,
                &weights,
                &mut rng,
                opt.as_mut(),
                &mut bufs,
            );
        }
        pitot_linalg::alloc_count::reset();
        for _ in 0..5 {
            training_step(
                &mut model,
                &ds,
                &scaling,
                &cfg,
                &mode_pools,
                &weights,
                &mut rng,
                opt.as_mut(),
                &mut bufs,
            );
        }
        assert_eq!(
            pitot_linalg::alloc_count::matrix_allocs(),
            0,
            "steady-state training steps must not allocate matrix buffers"
        );
    }

    use crate::PitotModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn determinism_under_fixed_seed() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 60;
        let a = train(&ds, &split, &cfg);
        let b = train(&ds, &split, &cfg);
        assert_eq!(a.history, b.history);
    }
}
