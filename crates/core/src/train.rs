//! Training loop (paper Sec 3.6 / App B.3).
//!
//! Pitot is trained with AdaMax over a weighted multi-objective loss:
//! a fixed-size batch is drawn from every interference mode each step
//! (isolation plus 2/3/4-way), the no-interference objective has weight 1.0,
//! and the interference objective weight β is split equally across modes.
//! Every `eval_every` steps the model is evaluated on (a sample of) the
//! validation set and the best checkpoint is retained.
//!
//! The loop is split into a [`TrainContext`] (scaling fit, model init,
//! pools, cached residual targets — the fixed per-`train()` setup) and
//! [`TrainContext::fit`] / [`TrainContext::resume`] which run optimizer
//! steps. Warm-start and fine-tune runs build the context once and keep
//! stepping, amortizing the setup cost that otherwise dominates short runs.

use crate::config::{InterferenceMode, LossSpace, Objective, PitotConfig};
use crate::model::{PitotModel, TowerOutputs};
use crate::scaling::ScalingBaseline;
use pitot_linalg::{Matrix, Scratch};
use pitot_nn::{pinball_loss_into, squared_loss_into, GradPlane, Optimizer};
use pitot_testbed::{split::Split, Dataset, MAX_INTERFERERS};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One validation checkpoint record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Optimizer step at which validation ran.
    pub step: usize,
    /// Weighted validation loss.
    pub val_loss: f32,
}

/// Pre-computed tower outputs for repeated query prediction
/// (see [`TrainedPitot::tower_cache`]).
#[derive(Debug, Clone)]
pub struct TowerCache {
    /// Workload tower output (`Nw × r·n_heads`).
    pub w: pitot_linalg::Matrix,
    /// Platform tower output (`Np × r·(1+2s)`).
    pub p_full: pitot_linalg::Matrix,
}

/// A trained Pitot model with its scaling baseline and training history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedPitot {
    /// Best-validation model checkpoint.
    pub model: PitotModel,
    /// The scaling baseline the residuals are anchored to.
    pub scaling: ScalingBaseline,
    /// Validation-loss history.
    pub history: Vec<TrainProgress>,
    /// The split this model was trained on (kept for conformal fitting).
    pub split: Split,
}

/// Trains Pitot on `split.train`, checkpointing on `split.val`.
///
/// # Panics
///
/// Panics if the split has no usable training data for the configured
/// interference mode.
pub fn train(dataset: &Dataset, split: &Split, config: &PitotConfig) -> TrainedPitot {
    let mut ctx = TrainContext::new(dataset, split, config);
    ctx.fit(dataset);
    ctx.finish()
}

/// Continues training from an existing model state (online learning: the
/// paper's Conclusion names efficient online updates as the main extension;
/// warm-starting from the deployed checkpoint converges in a fraction of the
/// from-scratch step budget when new observations arrive).
///
/// The scaling baseline is *kept fixed* so the residual space — and any
/// conformal calibration downstream — stays comparable across updates.
///
/// # Panics
///
/// Panics if the split has no usable training data for the configured
/// interference mode.
pub fn train_from(
    model: PitotModel,
    scaling: ScalingBaseline,
    dataset: &Dataset,
    split: &Split,
    config: &PitotConfig,
) -> TrainedPitot {
    let mut ctx = TrainContext::warm_start(model, scaling, dataset, split, config);
    ctx.fit(dataset);
    ctx.finish()
}

/// Reusable buffers for one optimizer step.
///
/// Every matrix, gradient plane, and index vector the step needs is
/// allocated once here and recycled in place, so the steady-state training
/// step — forward, backward, **and the fused AdaMax update** — performs
/// **zero matrix/plane allocations** (asserted by the
/// `steady_state_steps_are_matrix_alloc_free` test below via
/// `pitot_linalg::alloc_count`).
struct StepBuffers {
    towers: TowerOutputs,
    d_w: Matrix,
    d_p: Matrix,
    grads: GradPlane,
    scratch: Scratch,
    batch: Vec<usize>,
    targets: Vec<f32>,
    preds: Vec<Vec<f32>>,
    d_pred: Vec<Vec<f32>>,
    /// Interference inner products shared between predict and gradient
    /// accumulation within one mode batch.
    mcache: Vec<f32>,
    /// Batched prediction buffer for validation evaluation.
    eval_preds: Matrix,
    eval_obs: Vec<(usize, usize)>,
}

impl StepBuffers {
    fn new(model: &PitotModel, dataset: &Dataset) -> Self {
        let (d_w, d_p) = model.zero_output_grads(dataset);
        Self {
            towers: TowerOutputs::new(),
            d_w,
            d_p,
            grads: GradPlane::zeros_like(model.store()),
            scratch: Scratch::new(),
            batch: Vec::new(),
            targets: Vec::new(),
            preds: Vec::new(),
            d_pred: Vec::new(),
            mcache: Vec::new(),
            eval_preds: Matrix::zeros(0, 0),
            eval_obs: Vec::new(),
        }
    }
}

/// Everything a training run sets up **once**: the initialized model, the
/// scaling baseline, per-mode batch pools, the validation sample, cached
/// residual targets, optimizer state, and all step buffers.
///
/// [`TrainContext::fit`] runs the configured step budget;
/// [`TrainContext::resume`] keeps stepping (same RNG stream, same optimizer
/// moments), so `fit(a)` followed by `resume(b)` takes exactly the same
/// **parameter trajectory** as one `fit(a + b)` run (asserted bitwise by
/// `resume_matches_fresh_training_bitwise`). Checkpoint *evaluations*
/// differ at the boundary: every `fit`/`resume` call ends with one, so the
/// split run may retain a boundary-step checkpoint the fused run never
/// evaluated — evaluation reads the model without touching it, so the
/// trajectory itself is unaffected.
pub struct TrainContext {
    model: PitotModel,
    scaling: ScalingBaseline,
    config: PitotConfig,
    opt: Box<dyn Optimizer>,
    rng: ChaCha8Rng,
    mode_pools: Vec<Vec<usize>>,
    mode_weights: [f32; MAX_INTERFERERS + 1],
    val_idx: Vec<usize>,
    /// `residual_targets[i]` is the training target for observation `i`
    /// under the configured loss space — precomputed once so the hot loop
    /// never recomputes `ln` per sample.
    residual_targets: Vec<f32>,
    /// Per-head training quantiles, cached so checkpoint evaluation does
    /// not clone the objective's ξ vector once per checkpoint.
    eval_xis: Vec<f32>,
    bufs: StepBuffers,
    history: Vec<TrainProgress>,
    best: Option<(f32, PitotModel)>,
    step: usize,
    split: Split,
}

impl TrainContext {
    /// Fixed setup for a from-scratch run: fits the scaling baseline,
    /// initializes the model, and prepares every reusable buffer.
    ///
    /// # Panics
    ///
    /// Panics if the split has no usable training data for the configured
    /// interference mode.
    pub fn new(dataset: &Dataset, split: &Split, config: &PitotConfig) -> Self {
        config.validate();
        let model = PitotModel::new(config, dataset);
        let scaling = ScalingBaseline::fit(dataset, &split.train);
        Self::warm_start(model, scaling, dataset, split, config)
    }

    /// Fixed setup around an existing model + baseline (warm start / online
    /// update). The baseline is kept as given so the residual space stays
    /// comparable across updates.
    ///
    /// # Panics
    ///
    /// Panics if the split has no usable training data for the configured
    /// interference mode.
    pub fn warm_start(
        model: PitotModel,
        scaling: ScalingBaseline,
        dataset: &Dataset,
        split: &Split,
        config: &PitotConfig,
    ) -> Self {
        config.validate();
        let opt = config.optimizer.build(config.learning_rate);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(0x7EA1_BA7C));

        // Mode index pools. Mode 0 = isolation; modes 1..=3 = k interferers.
        let mode_pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
            .map(|k| match config.interference {
                InterferenceMode::Discard if k > 0 => Vec::new(),
                _ => split.train_mode(dataset, k),
            })
            .collect();
        assert!(
            !mode_pools[0].is_empty(),
            "no interference-free training observations in split"
        );
        let mode_weights = mode_weights(config);

        // Validation sample (capped for single-core speed), per mode.
        let val_idx = {
            let mut per_mode: Vec<usize> = Vec::new();
            let mut by_mode: Vec<Vec<usize>> = (0..=MAX_INTERFERERS).map(|_| Vec::new()).collect();
            for &i in &split.val {
                by_mode[dataset.observations[i].interferers.len()].push(i);
            }
            for pool in &mut by_mode {
                pool.shuffle(&mut rng);
                let cap = if config.val_cap == 0 {
                    pool.len()
                } else {
                    config.val_cap
                };
                per_mode.extend(pool.iter().take(cap));
            }
            per_mode
        };

        let residual_targets = dataset
            .observations
            .iter()
            .map(|o| model.residual_target(o, &scaling))
            .collect();

        let bufs = StepBuffers::new(&model, dataset);
        let eval_xis = config.objective.xis();
        Self {
            model,
            scaling,
            config: config.clone(),
            opt,
            rng,
            mode_pools,
            mode_weights,
            val_idx,
            residual_targets,
            eval_xis,
            bufs,
            history: Vec::new(),
            best: None,
            step: 0,
            split: split.clone(),
        }
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// The model in its *current* (last-step) state — not the
    /// best-validation checkpoint, which [`TrainContext::finish`] selects.
    pub fn model(&self) -> &PitotModel {
        &self.model
    }

    /// Mutable access to the live model — the hook compression uses to
    /// install a pruning mask before (or between) training runs; the mask
    /// is then re-applied after every optimizer step, so resumed and fresh
    /// runs stay on identical trajectories.
    pub fn model_mut(&mut self) -> &mut PitotModel {
        &mut self.model
    }

    /// The configuration this context was built with (`config.steps` is the
    /// [`TrainContext::fit`] budget; [`TrainContext::resume`] ignores it).
    pub fn config(&self) -> &PitotConfig {
        &self.config
    }

    /// The scaling baseline the residual space is anchored to (fixed for
    /// the lifetime of the context).
    pub fn scaling(&self) -> &ScalingBaseline {
        &self.scaling
    }

    /// The split the context draws batches and checkpoints from.
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// Runs the configured step budget (`config.steps`), evaluating every
    /// `eval_every` steps. No-op if the budget has already been consumed.
    pub fn fit(&mut self, dataset: &Dataset) {
        let target = self.config.steps.max(self.step);
        self.run_until(dataset, target);
    }

    /// Continues training for `extra_steps` more steps — same RNG stream,
    /// same optimizer moments, identical parameter trajectory to a fresh
    /// run of the combined budget (plus one extra checkpoint evaluation at
    /// the boundary step; see the type-level docs). The online-update
    /// path: no scaling refit, no buffer reallocation, no model re-init.
    pub fn resume(&mut self, dataset: &Dataset, extra_steps: usize) {
        let target = self.step + extra_steps;
        self.run_until(dataset, target);
    }

    fn run_until(&mut self, dataset: &Dataset, target: usize) {
        while self.step < target {
            self.step += 1;
            training_step(
                &mut self.model,
                dataset,
                &self.residual_targets,
                &self.config,
                &self.mode_pools,
                &self.mode_weights,
                &mut self.rng,
                self.opt.as_mut(),
                &mut self.bufs,
            );

            if self.step.is_multiple_of(self.config.eval_every) || self.step == target {
                let val_loss = evaluate_loss_cached(
                    &self.model,
                    &self.residual_targets,
                    dataset,
                    &self.val_idx,
                    &self.config,
                    &self.eval_xis,
                    &mut self.bufs.towers,
                    &mut self.bufs.eval_preds,
                    &mut self.bufs.eval_obs,
                );
                self.history.push(TrainProgress {
                    step: self.step,
                    val_loss,
                });
                let better = self.best.as_ref().is_none_or(|(b, _)| val_loss < *b);
                if better {
                    self.best = Some((val_loss, self.model.clone()));
                }
            }
        }
    }

    /// Packages the best-validation checkpoint (falling back to the current
    /// model if no evaluation has run) into a [`TrainedPitot`].
    pub fn finish(&self) -> TrainedPitot {
        let model = match &self.best {
            Some((_, m)) => m.clone(),
            None => self.model.clone(),
        };
        TrainedPitot {
            model,
            scaling: self.scaling.clone(),
            history: self.history.clone(),
            split: self.split.clone(),
        }
    }
}

/// One full optimizer step: dense tower pass, per-mode batches, output-side
/// gradient accumulation, tower backprop, fused parameter-plane update. All
/// working memory lives in `bufs`.
#[allow(clippy::too_many_arguments)]
fn training_step<R: Rng + ?Sized>(
    model: &mut PitotModel,
    dataset: &Dataset,
    residual_targets: &[f32],
    config: &PitotConfig,
    mode_pools: &[Vec<usize>],
    mode_weights: &[f32; MAX_INTERFERERS + 1],
    rng: &mut R,
    opt: &mut dyn Optimizer,
    bufs: &mut StepBuffers,
) {
    model.forward_towers_with(dataset, &mut bufs.towers);
    bufs.d_w.fill(0.0);
    bufs.d_p.fill(0.0);

    for (k, pool) in mode_pools.iter().enumerate() {
        if pool.is_empty() || mode_weights[k] == 0.0 {
            continue;
        }
        bufs.batch.clear();
        bufs.batch
            .extend((0..config.batch_per_mode).map(|_| pool[rng.gen_range(0..pool.len())]));
        bufs.targets.clear();
        bufs.targets
            .extend(bufs.batch.iter().map(|&i| residual_targets[i]));
        model.predict_into_cached(
            &bufs.towers.w,
            &bufs.towers.p_full,
            dataset,
            &bufs.batch,
            &mut bufs.preds,
            &mut bufs.mcache,
        );
        loss_gradients_into(
            config,
            &bufs.preds,
            &bufs.targets,
            mode_weights[k],
            &mut bufs.d_pred,
        );
        model.accumulate_grads_cached(
            &bufs.towers,
            dataset,
            &bufs.batch,
            &bufs.d_pred,
            &mut bufs.d_w,
            &mut bufs.d_p,
            &bufs.mcache,
        );
    }

    model.backward_towers_with(
        &bufs.towers,
        &bufs.d_w,
        &bufs.d_p,
        &mut bufs.grads,
        &mut bufs.scratch,
    );
    opt.step(&mut [model.params_mut()], &[bufs.grads.as_slice()]);
    // Structured pruning: an installed mask is re-applied after every
    // optimizer step so pruned weights stay exactly zero through training
    // (no-op when no mask is installed).
    model.store_mut().apply_mask();
}

/// Per-mode objective weights (paper App B.3 / D.2): isolation gets 1.0,
/// interference modes share β equally.
fn mode_weights(config: &PitotConfig) -> [f32; MAX_INTERFERERS + 1] {
    let mut w = [0.0f32; MAX_INTERFERERS + 1];
    w[0] = 1.0;
    match config.interference {
        InterferenceMode::Discard => {}
        _ => {
            for wk in w.iter_mut().skip(1) {
                *wk = config.interference_weight / MAX_INTERFERERS as f32;
            }
        }
    }
    w
}

/// Computes `∂L/∂ŷ` per head for a batch, scaled by the mode weight, into
/// reusable per-head buffers.
fn loss_gradients_into(
    config: &PitotConfig,
    preds: &[Vec<f32>],
    targets: &[f32],
    weight: f32,
    out: &mut Vec<Vec<f32>>,
) {
    let head_scale = weight / preds.len() as f32;
    out.resize_with(preds.len(), Vec::new);
    match &config.objective {
        Objective::Squared => {
            for (p, g) in preds.iter().zip(out.iter_mut()) {
                squared_loss_into(p, targets, g);
                for v in g.iter_mut() {
                    *v *= head_scale;
                }
            }
        }
        Objective::Quantiles(xis) => {
            for ((p, &xi), g) in preds.iter().zip(xis).zip(out.iter_mut()) {
                pinball_loss_into(p, targets, xi, g);
                for v in g.iter_mut() {
                    *v *= head_scale;
                }
            }
        }
    }
}

/// Weighted loss over an index set (validation checkpointing): one tower
/// pass into the reusable step buffers, one row-parallel batched
/// prediction, then per-mode mean losses accumulated in a single sweep over
/// cached residual targets. Every buffer (towers, prediction matrix, the
/// mode/index pair list, the ξ vector) is caller-owned and recycled, so a
/// steady-state checkpoint evaluation allocates nothing (asserted by
/// `steady_state_steps_are_matrix_alloc_free`).
#[allow(clippy::too_many_arguments)]
fn evaluate_loss_cached(
    model: &PitotModel,
    residual_targets: &[f32],
    dataset: &Dataset,
    idx: &[usize],
    config: &PitotConfig,
    xis: &[f32],
    towers: &mut TowerOutputs,
    preds: &mut Matrix,
    obs_buf: &mut Vec<(usize, usize)>,
) -> f32 {
    if idx.is_empty() {
        return f32::INFINITY;
    }
    // Reuses the training tower buffers; the next step overwrites them with
    // a fresh dense pass anyway.
    model.forward_towers_with(dataset, towers);
    model.predict_batch_indices_into(&towers.w, &towers.p_full, dataset, idx, preds);
    // (mode, observation-index) pairs, reused across evaluations.
    obs_buf.clear();
    obs_buf.extend(
        idx.iter()
            .map(|&i| (dataset.observations[i].interferers.len(), i)),
    );

    let weights = mode_weights(config);
    let n_heads = model.n_heads();
    let mut total = 0.0f32;
    let mut total_w = 0.0f32;
    for k in 0..=MAX_INTERFERERS {
        if weights[k] == 0.0 {
            continue;
        }
        let mut mode_loss = 0.0f64;
        let mut count = 0usize;
        for (b, &(mode, oi)) in obs_buf.iter().enumerate() {
            if mode != k {
                continue;
            }
            count += 1;
            let target = residual_targets[oi];
            let row = preds.row(b);
            for (h, &p) in row.iter().enumerate() {
                let e = p - target;
                let l = match &config.objective {
                    Objective::Squared => e * e,
                    Objective::Quantiles(_) => {
                        let xi = xis[h];
                        if e >= 0.0 {
                            // prediction above target: weight (1 − ξ).
                            (1.0 - xi) * e
                        } else {
                            -xi * e
                        }
                    }
                };
                mode_loss += l as f64;
            }
        }
        if count == 0 {
            continue;
        }
        // Mean over the mode's observations, then mean over heads — matching
        // the training objective's reduction.
        let mode_mean = (mode_loss / count as f64) as f32 / n_heads as f32;
        total += weights[k] * mode_mean;
        total_w += weights[k];
    }
    if total_w > 0.0 {
        total / total_w
    } else {
        f32::INFINITY
    }
}

impl TrainedPitot {
    /// Warm-start continuation: trains further on a (possibly updated) split
    /// with a reduced step budget (online-learning extension).
    ///
    /// Offsets of already-seen entities in the scaling baseline stay frozen,
    /// so the residual space — and any conformal calibration — remains
    /// comparable for them; entities appearing for the *first* time (a new
    /// device's platforms, a new workload) get proper baseline offsets via
    /// [`ScalingBaseline::extend`]. Without that extension a new platform
    /// would carry a multi-nat baseline error that no short warm start could
    /// absorb.
    pub fn fine_tune(&self, dataset: &Dataset, split: &Split, steps: usize) -> TrainedPitot {
        let mut cfg = self.model.config().clone();
        cfg.steps = steps;
        cfg.eval_every = cfg.eval_every.min(steps.max(1));
        let scaling = self.scaling.extend(dataset, &split.train);
        let mut ctx = TrainContext::warm_start(self.model.clone(), scaling, dataset, split, &cfg);
        ctx.fit(dataset);
        ctx.finish()
    }

    /// Serializes the full trained state (model, baseline, history, split)
    /// to JSON for deployment or archival.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trained model serializes")
    }

    /// Restores a trained state serialized by [`TrainedPitot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Per-head log-runtime predictions for the given observations.
    ///
    /// For the default log-residual loss this is `log C̄ + ŷ`; the other loss
    /// spaces are mapped back to log runtime accordingly. Observations are
    /// processed row-parallel over the `pitot_linalg::par` pool.
    pub fn predict_log_runtime(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let towers = self.tower_cache(dataset);
        let obs: Vec<&pitot_testbed::Observation> =
            idx.iter().map(|&oi| &dataset.observations[oi]).collect();
        self.predict_log_runtime_cached(&towers, &obs)
    }

    /// Pre-computes both tower outputs for repeated query prediction.
    ///
    /// Tower evaluation is the expensive part of inference (two MLP passes
    /// over every entity); query-heavy callers such as the orchestrator
    /// compute the towers once per model and reuse them for every placement
    /// decision via [`TrainedPitot::predict_log_runtime_cached`].
    pub fn tower_cache(&self, dataset: &Dataset) -> TowerCache {
        let (w, p_full) = self.model.infer_towers(dataset);
        TowerCache { w, p_full }
    }

    /// Per-head log-runtime predictions for arbitrary (possibly synthetic)
    /// observations, using a pre-computed [`TowerCache`].
    ///
    /// Only the index fields of each observation are read, so callers may
    /// construct "what if" queries that were never measured. The batch is
    /// row-parallelized over the `pitot_linalg::par` pool; results are
    /// bitwise identical across `PITOT_THREADS`.
    pub fn predict_log_runtime_cached(
        &self,
        towers: &TowerCache,
        obs: &[&pitot_testbed::Observation],
    ) -> Vec<Vec<f32>> {
        let cfg = self.model.config();
        let n_heads = self.model.n_heads();
        let mut batch = Matrix::zeros(0, 0);
        self.model
            .predict_batch_into(&towers.w, &towers.p_full, obs, &mut batch);
        // Map residuals to log runtime in the same parallel shape: each row
        // depends only on its own observation's baseline.
        {
            let scaling = &self.scaling;
            pitot_linalg::par::parallel_for_rows(
                batch.as_mut_slice(),
                n_heads.max(1),
                64,
                |start, chunk| {
                    for (b, row) in chunk.chunks_exact_mut(n_heads.max(1)).enumerate() {
                        let o = obs[start + b];
                        let base = scaling.log_baseline(o.workload as usize, o.platform as usize);
                        for y in row.iter_mut() {
                            *y = match cfg.loss_space {
                                LossSpace::LogResidual => base + *y,
                                LossSpace::Log => *y,
                                LossSpace::NaiveProportional => {
                                    // ŷ is a linear-space ratio; clamp to stay
                                    // in the log domain.
                                    base + y.max(1e-6).ln()
                                }
                            };
                        }
                    }
                },
            );
        }
        // Transpose into the per-head layout downstream consumers use.
        let mut out: Vec<Vec<f32>> = (0..n_heads)
            .map(|_| Vec::with_capacity(obs.len()))
            .collect();
        for b in 0..obs.len() {
            let row = batch.row(b);
            for (h, head) in out.iter_mut().enumerate() {
                head.push(row[h]);
            }
        }
        if cfg.rearrange_quantiles {
            pitot_conformal::rearrange_heads(&mut out);
        }
        out
    }

    /// Point predictions in seconds (head 0; the only head under
    /// [`Objective::Squared`]).
    pub fn predict_runtime(&self, dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
        self.predict_log_runtime(dataset, idx)[0]
            .iter()
            .map(|l| l.exp())
            .collect()
    }

    /// Mean absolute percentage error on the given observations, optionally
    /// restricted to a specific interference count. Returns `NaN` when the
    /// (filtered) index set is empty so sweep code can skip absent modes.
    pub fn mape(&self, dataset: &Dataset, idx: &[usize], mode: Option<usize>) -> f32 {
        let filtered: Vec<usize> = match mode {
            Some(k) => idx
                .iter()
                .copied()
                .filter(|&i| dataset.observations[i].interferers.len() == k)
                .collect(),
            None => idx.to_vec(),
        };
        if filtered.is_empty() {
            return f32::NAN;
        }
        crate::eval::mape_for(self, dataset, &filtered)
    }

    /// The step/loss trace recorded during training.
    pub fn final_val_loss(&self) -> f32 {
        self.history
            .iter()
            .map(|p| p.val_loss)
            .fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn training_reduces_validation_loss() {
        let (ds, split) = setup();
        let trained = train(&ds, &split, &PitotConfig::tiny());
        let first = trained.history.first().unwrap().val_loss;
        let best = trained.final_val_loss();
        assert!(
            best < first,
            "validation loss did not improve: first {first}, best {best}"
        );
    }

    #[test]
    fn trained_model_beats_scaling_baseline_on_mape() {
        let (ds, split) = setup();
        let trained = train(&ds, &split, &PitotConfig::tiny());
        let mape = trained.mape(&ds, &split.test, Some(0));
        // The scaling baseline alone leaves the pair-affinity structure
        // unexplained; the tiny model should land comfortably under 60%.
        assert!(mape < 0.6, "isolation MAPE {mape}");
        assert!(mape > 0.0);
    }

    #[test]
    fn discard_mode_trains_without_interference_data() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.interference = InterferenceMode::Discard;
        cfg.steps = 100;
        let trained = train(&ds, &split, &cfg);
        assert!(trained.final_val_loss().is_finite());
    }

    #[test]
    fn quantile_training_orders_heads() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.95]);
        cfg.steps = 400;
        let trained = train(&ds, &split, &cfg);
        let preds = trained.predict_log_runtime(&ds, &split.test[..200.min(split.test.len())]);
        // The 95th-percentile head should usually predict above the median
        // head after training.
        let above = preds[0]
            .iter()
            .zip(&preds[1])
            .filter(|(med, hi)| hi >= med)
            .count();
        assert!(
            above as f32 / preds[0].len() as f32 > 0.7,
            "only {above}/{} hi-quantile predictions above median",
            preds[0].len()
        );
    }

    #[test]
    fn serialization_round_trip_preserves_predictions() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 80;
        let trained = train(&ds, &split, &cfg);
        let restored = TrainedPitot::from_json(&trained.to_json()).unwrap();
        let idx: Vec<usize> = split.test.iter().copied().take(20).collect();
        assert_eq!(
            trained.predict_log_runtime(&ds, &idx),
            restored.predict_log_runtime(&ds, &idx)
        );
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TrainedPitot::from_json("not json").is_err());
    }

    #[test]
    fn fine_tuning_does_not_regress() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 250;
        let trained = train(&ds, &split, &cfg);
        let tuned = trained.fine_tune(&ds, &split, 150);
        let idx = split.test[..2000.min(split.test.len())].to_vec();
        let before = trained.mape(&ds, &idx, Some(0));
        let after = tuned.mape(&ds, &idx, Some(0));
        assert!(
            after <= before * 1.1,
            "fine-tuning regressed: {before} → {after}"
        );
    }

    #[test]
    fn fine_tuning_adapts_to_new_observations() {
        // Warm-start on a split with more data must be at least as good as
        // the stale model, with far fewer steps than training from scratch.
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let early = Split::stratified(&ds, 0.2, 0);
        let late = Split::stratified(&ds, 0.7, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 300;
        let stale = train(&ds, &early, &cfg);
        let tuned = stale.fine_tune(&ds, &late, 150);
        let idx: Vec<usize> = late
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2000)
            .collect();
        let m_stale = stale.mape(&ds, &idx, None);
        let m_tuned = tuned.mape(&ds, &idx, None);
        assert!(
            m_tuned <= m_stale * 1.05,
            "online update should help: stale {m_stale}, tuned {m_tuned}"
        );
    }

    #[test]
    fn resume_matches_fresh_training_bitwise() {
        // fit(a) + resume(b) must take exactly the same parameter trajectory
        // as one fit(a + b) run: same RNG stream, same optimizer moments,
        // same evaluation side effects on the model (none).
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 90;

        let mut split_run = TrainContext::new(&ds, &split, &cfg);
        split_run.fit(&ds); // 90 steps
        split_run.resume(&ds, 70); // 70 more

        let mut cfg_full = cfg.clone();
        cfg_full.steps = 160;
        let mut full_run = TrainContext::new(&ds, &split, &cfg_full);
        full_run.fit(&ds);

        assert_eq!(split_run.steps_taken(), full_run.steps_taken());
        assert_eq!(
            split_run.model().store().params(),
            full_run.model().store().params(),
            "warm-start resume diverged from the fresh run"
        );
    }

    #[test]
    fn pruning_mask_survives_serde_and_resume() {
        // A pruning mask installed on the parameter plane must (a) hold
        // pruned weights at exactly zero through training, (b) keep
        // fit(a)+resume(b) bitwise identical to fit(a+b), and (c) survive a
        // serde round trip of the store.
        fn install_mask(ctx: &mut TrainContext) {
            let ranges: Vec<pitot_nn::ParamRange> = ctx
                .model()
                .fw()
                .layers()
                .iter()
                .chain(ctx.model().fp().layers())
                .map(pitot_nn::Linear::weight_range)
                .collect();
            let store = ctx.model_mut().store_mut();
            for r in ranges {
                store.prune_window_by_magnitude(r, 0.5);
            }
        }

        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 60;

        let mut split_run = TrainContext::new(&ds, &split, &cfg);
        install_mask(&mut split_run);
        split_run.fit(&ds);
        split_run.resume(&ds, 50);

        let mut cfg_full = cfg.clone();
        cfg_full.steps = 110;
        let mut full_run = TrainContext::new(&ds, &split, &cfg_full);
        install_mask(&mut full_run);
        full_run.fit(&ds);

        assert_eq!(
            split_run.model().store().params(),
            full_run.model().store().params(),
            "masked resume diverged from the fresh masked run"
        );

        let store = split_run.model().store();
        let mask = store.mask().expect("mask installed");
        let pruned: Vec<f32> = mask
            .iter()
            .zip(store.params())
            .filter(|(&m, _)| m == 0)
            .map(|(_, &p)| p)
            .collect();
        assert!(!pruned.is_empty(), "sparsity 0.5 must prune something");
        assert!(
            pruned.iter().all(|&p| p == 0.0),
            "a pruned weight re-grew during training"
        );

        // Mask and plane round-trip through serde together.
        let json = serde_json::to_string(store).expect("store serializes");
        let restored: pitot_nn::ParamStore = serde_json::from_str(&json).expect("store restores");
        assert_eq!(restored.mask(), store.mask());
        assert_eq!(restored.params(), store.params());
        // A pre-mask checkpoint (no `mask` field) still deserializes.
        let legacy = serde_json::to_string(full_run.model().store()).expect("serializes");
        let stripped = {
            let mut v: serde_json::Value = serde_json::from_str(&legacy).unwrap();
            v.as_object_mut().unwrap().remove("mask");
            serde_json::to_string(&v).unwrap()
        };
        let legacy_store: pitot_nn::ParamStore =
            serde_json::from_str(&stripped).expect("legacy store restores");
        assert_eq!(legacy_store.mask(), None);
    }

    #[test]
    fn layer_normalized_towers_train() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.tower_layer_norm = true;
        cfg.steps = 200;
        let trained = train(&ds, &split, &cfg);
        assert!(trained.final_val_loss().is_finite());
        let idx: Vec<usize> = split.test.iter().copied().take(200).collect();
        let mape = trained.mape(&ds, &idx, None);
        assert!(mape.is_finite() && mape < 2.0, "LN-tower MAPE {mape}");
        // The serialized checkpoint round-trips the layer-norm parameters.
        let restored = TrainedPitot::from_json(&trained.to_json()).unwrap();
        assert_eq!(
            trained.predict_log_runtime(&ds, &idx[..10]),
            restored.predict_log_runtime(&ds, &idx[..10])
        );
    }

    #[test]
    fn rearrangement_removes_head_crossing() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 200;
        let trained = train(&ds, &split, &cfg);
        let idx: Vec<usize> = split.test.iter().copied().take(1500).collect();
        let raw = trained.predict_log_runtime(&ds, &idx);
        let raw_crossing = pitot_conformal::crossing_rate(&raw);

        let mut cfg2 = cfg.clone();
        cfg2.rearrange_quantiles = true;
        let mut trained2 = trained.clone();
        // Same weights, only the config flag differs.
        trained2.model = {
            let mut m = trained.model.clone();
            m.set_config(cfg2);
            m
        };
        let fixed = trained2.predict_log_runtime(&ds, &idx);
        assert_eq!(pitot_conformal::crossing_rate(&fixed), 0.0);
        // At 200 steps heads are under-trained, so some crossing exists to fix.
        assert!(raw_crossing >= 0.0);
        // Rearrangement permutes values per observation; the multiset of
        // head predictions for observation 0 must be preserved.
        let mut a: Vec<f32> = raw.iter().map(|h| h[0]).collect();
        let mut b: Vec<f32> = fixed.iter().map(|h| h[0]).collect();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn steady_state_steps_are_matrix_alloc_free() {
        // After a short warmup (buffers sized, optimizer moment planes
        // allocated), the training step must recycle every buffer: the
        // counter in pitot_linalg::alloc_count — which also tracks the
        // parameter/gradient/moment planes via record_buffer — stays at zero
        // across further steps. This covers the FULL optimizer step
        // (forward, backward, and the fused AdaMax plane update) AND a
        // checkpoint evaluation: the eval path indexes the dataset directly
        // (`predict_batch_indices_into`) and reuses the step buffers'
        // prediction matrix and mode/index list, so once sized it allocates
        // nothing either.
        let (ds, split) = setup();
        let cfg = PitotConfig::tiny();
        let mut ctx = TrainContext::new(&ds, &split, &cfg);

        let raw_steps = |ctx: &mut TrainContext, n: usize| {
            for _ in 0..n {
                training_step(
                    &mut ctx.model,
                    &ds,
                    &ctx.residual_targets,
                    &ctx.config,
                    &ctx.mode_pools,
                    &ctx.mode_weights,
                    &mut ctx.rng,
                    ctx.opt.as_mut(),
                    &mut ctx.bufs,
                );
            }
        };
        let checkpoint_eval = |ctx: &mut TrainContext| {
            evaluate_loss_cached(
                &ctx.model,
                &ctx.residual_targets,
                &ds,
                &ctx.val_idx,
                &ctx.config,
                &ctx.eval_xis,
                &mut ctx.bufs.towers,
                &mut ctx.bufs.eval_preds,
                &mut ctx.bufs.eval_obs,
            )
        };
        raw_steps(&mut ctx, 3); // warmup: sizes every buffer, allocates moments
        let warm_loss = checkpoint_eval(&mut ctx); // warmup: sizes eval buffers
        pitot_linalg::alloc_count::reset();
        raw_steps(&mut ctx, 5);
        let loss = checkpoint_eval(&mut ctx);
        assert_eq!(
            pitot_linalg::alloc_count::matrix_allocs(),
            0,
            "steady-state training steps + checkpoint eval must not allocate \
             matrix or plane buffers"
        );
        assert!(warm_loss.is_finite() && loss.is_finite());
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let (ds, split) = setup();
        let mut cfg = PitotConfig::tiny();
        cfg.steps = 60;
        let a = train(&ds, &split, &cfg);
        let b = train(&ds, &split, &cfg);
        assert_eq!(a.history, b.history);
    }
}
