//! Online serving for Pitot: streaming predictions with sliding-window
//! conformal recalibration.
//!
//! The paper's deployment story is an edge orchestrator consuming calibrated
//! runtime bounds *as new observations stream in* (Sec 1; the Conclusion
//! names efficient online updates as the main extension). This crate closes
//! that loop on top of the enablers the rest of the workspace provides:
//!
//! - **Streaming events on a simulated clock.** A [`PitotServer`] consumes
//!   [`Event`]s — arriving [`pitot_testbed::Observation`]s and placement
//!   queries — at monotone simulated timestamps, fully deterministically:
//!   the same event sequence always produces bitwise-identical predictions.
//! - **Micro-batched queries.** Queries buffer until
//!   [`ServeConfig::microbatch`] of them are pending (or a flush), then are
//!   answered in one row-parallel `predict_batch_into` pass over the cached
//!   tower outputs.
//! - **A sliding calibration window.** Every observation's nonconformity
//!   scores enter a [`pitot_conformal::WindowedScores`] ring (the moving
//!   calibration set of Gui et al.'s *conformalized matrix completion*);
//!   refreshing the served [`pitot_conformal::PooledConformal`] is a rank
//!   lookup over the incrementally maintained sorted slices, cheap enough to
//!   run once per observation.
//! - **Drift-triggered warm-start fine-tunes.** A rolling coverage monitor
//!   ([`CoverageMonitor`], binomial-slack test) watches prequential coverage
//!   of the served bounds; when it degrades beyond sampling noise the server
//!   fine-tunes its model in place via [`pitot::TrainContext::resume`] — no
//!   setup cost, no scaling refit — then re-scores the window under the
//!   updated model.
//! - **A closed loop with the placement simulator.**
//!   [`run_closed_loop`] drives
//!   [`pitot_orchestrator::ClusterSim::run_with_observer`]: the server's
//!   bounds place jobs, realized runtimes stream back as observations, and
//!   the calibration window tracks the deployment distribution instead of a
//!   frozen holdout.
//! - **Multi-replica fleets.** A [`FleetServer`] shards disjoint event
//!   streams over N replica servers; a coordinator merges their window
//!   summaries ([`pitot_conformal::MergeableWindow`], a CRDT of sorted-run
//!   segments) on a cadence and installs one fleet-level calibration —
//!   bitwise identical to what a centralized server holding the union
//!   would fit.
//! - **SLO-aware admission.** Deadline-carrying queries are admitted or
//!   shed by the conformal bound's upper edge ([`AdmissionQueue`]): the
//!   first place the served intervals drive a control decision, with
//!   shed/admit decisions recorded and scored against realized runtimes.
//! - **Fault injection and degraded-mode serving.** A seeded, schedule-based
//!   [`FaultPlan`] ([`FleetServer::with_faults`]) injects replica crashes,
//!   coordinator outages, and dropped/delayed merge summaries; the fleet
//!   degrades along a ladder — fleet calibration → pairwise gossip CRDT
//!   merges → staleness-triggered local fallback with honestly widened
//!   intervals ([`ServeConfig::staleness_threshold`]) — and crashed
//!   replicas rejoin *warm* by replaying the coordinator's held window
//!   summary. Every fault window is audited ([`DegradedWindow`]) so
//!   coverage/SLO loss is attributable. See `docs/RESILIENCE.md`.
//! - **Trustworthy telemetry (fail-noisy, not fail-stop).** The same
//!   [`FaultPlan`] can corrupt the *data* instead of the links: NaN/Inf
//!   and negative runtimes, scale-outlier bursts, replayed and
//!   clock-skewed summaries, and a Byzantine replica emitting bogus score
//!   segments. Defenses are layered: an ingest guard
//!   ([`ServeConfig::ingest_guard`]) validates and MAD-screens every
//!   observation, quarantining suspects into an audited side buffer
//!   ([`GuardStats`], [`QuarantineRecord`]) instead of silently dropping
//!   them; the coordinator verifies per-segment checksums and sanity
//!   invariants before absorbing any summary, so a Byzantine replica
//!   degrades only itself; and a miscoverage watchdog
//!   ([`ServeConfig::watchdog_z`]) catches poisoning the guards missed,
//!   rolling the window back through a quarantine rescore
//!   ([`WatchdogIncident`]).
//! - **A real concurrent runtime with a deterministic twin.** A
//!   [`ConcurrentFleet`] runs the same fleet semantics on OS threads:
//!   sharded replica state behind per-lane MPSC event queues
//!   ([`pitot_linalg::par::EventQueue`]), micro-batch coalescing into the
//!   row-parallel predict path, and a lock-free snapshot read path
//!   ([`SnapshotCell`], [`SeqLock`]) so admission and prediction never
//!   block on window writes or calibration installs. The simulated-clock
//!   [`FleetServer`] stays on as the deterministic twin: the same
//!   [`TraceEvent`] sequence through both runtimes yields bitwise-identical
//!   outcomes and audit counters ([`run_trace_simulated`]), property-tested
//!   across `PITOT_THREADS`. See `docs/SERVING.md`.
//! - **Compressed inference towers.** Any replica can serve from a
//!   compressed model ([`ServeConfig::compression`],
//!   [`FleetConfig::compression`]): magnitude-pruned weights, int8
//!   per-row quantized tower matmuls ([`pitot::CompressionSpec`]), or
//!   both. Compression only swaps the frozen tower cache a replica scores
//!   with — the conformal machinery recalibrates on the compressed
//!   model's own residuals, so coverage is restored at every compression
//!   level and the interval *width* absorbs the compression error
//!   (`ext-compress` measures the trade). Compressed replicas rejoin
//!   crashes compressed and replay bitwise in the concurrent runtime.
//!
//! # Examples
//!
//! ```
//! use pitot::{train, Objective, PitotConfig};
//! use pitot_serve::{Event, PitotServer, ServeConfig};
//! use pitot_testbed::{split::Split, Testbed, TestbedConfig};
//!
//! let testbed = Testbed::generate(&TestbedConfig::small());
//! let dataset = testbed.collect_dataset();
//! let split = Split::stratified(&dataset, 0.6, 0);
//! let mut cfg = PitotConfig::tiny();
//! cfg.objective = Objective::Quantiles(vec![0.5, 0.9]);
//! cfg.steps = 120;
//! let trained = train(&dataset, &split, &cfg);
//!
//! let mut server = PitotServer::new(trained, dataset.clone(), ServeConfig::at(0.1));
//! server.seed_calibration(&split.val);
//! // Stream: an observation arrives, then a query is answered.
//! let obs = dataset.observations[split.test[0]].clone();
//! let fb = server.on_event(1.0, Event::Observe(obs)).observed.unwrap();
//! assert!(fb.bound_log.is_finite());
//! let out = server.on_event(2.0, Event::Flush);
//! assert!(out.predictions.is_empty()); // nothing was queued yet
//! ```

// Every public item in this crate is part of the documented serving API;
// keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod admission;
mod closed_loop;
mod concurrent;
mod config;
mod drift;
mod fault;
mod fleet;
mod guard;
mod server;
// The snapshot read-path cells are the serving layer's only sanctioned
// `unsafe` (alongside `pitot_linalg`'s kernels/pool): two small left-right /
// seqlock protocols with the safety arguments spelled out inline and
// stress-tested for torn reads. Everything else in this crate stays under
// the workspace-wide `unsafe_code = "deny"`.
#[allow(unsafe_code)]
mod snapshot;

pub use admission::{
    AdmissionConfig, AdmissionDecision, AdmissionQueue, AdmissionStats, ShedReason,
};
pub use closed_loop::{run_closed_loop, ServingPredictor};
pub use concurrent::{
    run_trace_simulated, ConcurrentConfig, ConcurrentFleet, LaneProgress, TraceEvent, TraceOutcome,
};
pub use config::{FleetConfig, ServeConfig};
pub use drift::CoverageMonitor;
pub use fault::{
    ByzantineReplica, CoordinatorOutage, DegradedCause, DegradedWindow, FaultPlan, RejectCause,
    RejectedSummary, ReplicaCrash,
};
pub use fleet::{AdmissionOutcome, DeadlineQuery, FleetServer, FleetStats};
pub use guard::{GuardStats, QuarantineCause, QuarantineRecord, WatchdogIncident};
pub use server::{Event, ObservedFeedback, PitotServer, Prediction, ServeResponse, ServeStats};
pub use snapshot::{SeqLock, SnapshotCell};
