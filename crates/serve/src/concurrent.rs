//! The real concurrent serving runtime — and its deterministic twin.
//!
//! Everything below [`crate::FleetServer`] runs on a simulated clock,
//! single-threaded: perfect for property tests, useless for the ROADMAP's
//! "heavy traffic from millions of users". [`ConcurrentFleet`] is the same
//! fleet semantics on OS threads:
//!
//! - **Sharded state behind MPSC lanes.** Replicas are grouped into lanes
//!   (`replica % lanes`); each lane owns an
//!   [`pitot_linalg::par::EventQueue`] and a worker thread. The ingress
//!   thread routes observations to their shard's lane and returns
//!   immediately; per-replica FIFO order is preserved by construction
//!   (one mutex-ordered queue per lane, one consumer).
//! - **Micro-batch coalescing.** A lane worker drains *everything* pending
//!   in one swap and scores the whole batch with a single row-parallel
//!   [`pitot::TrainedPitot::predict_log_runtime_cached`] pass — the deeper
//!   the backlog, the bigger the batch, exactly the load-adaptive batching
//!   the simulated server's `microbatch` knob only imitates.
//! - **A lock-free read path.** Deadline queries never touch shard state:
//!   the model and per-replica tower caches are immutable in fleet mode
//!   (fine-tuning is rejected by [`crate::FleetConfig::validate`]; a
//!   compressed replica answers from its compressed cache), and the served
//!   calibration is read through a [`crate::SnapshotCell`] — admission and
//!   prediction never block on window writes or calibration installs.
//! - **Barriered merges.** The coordinator round runs on the ingress
//!   thread after parking on each lane's [`pitot_linalg::par::Gauge`]
//!   until its backlog is drained, then absorbs summaries / fits / installs
//!   exactly as the simulated coordinator does, finishing with a snapshot
//!   install for the read path.
//!
//! # The deterministic twin
//!
//! The simulated-clock [`crate::FleetServer`] stays on as the oracle:
//! [`run_trace_simulated`] feeds a [`TraceEvent`] sequence through it, and
//! the twin-equivalence property suite (`crates/serve/tests/twin.rs`)
//! asserts the concurrent runtime produces **bitwise-identical**
//! [`TraceOutcome`]s, [`crate::FleetStats`], and degraded-window audits for
//! the same trace — across worker counts and `PITOT_THREADS` settings.
//! Equivalence holds by construction:
//!
//! - shard substreams are disjoint and per-replica FIFO, so every replica
//!   server sees the same command sequence as its simulated twin;
//! - calibration installs happen only at ingress-barriered merge points,
//!   so every observation is judged under the same installed calibration;
//! - queries, admission, fault transitions, and data-fault injection are
//!   serialized at ingress in trace order, so every seeded RNG draw happens
//!   in the twin's order;
//! - batched prediction is bitwise-identical to a batch of one (a pinned
//!   workspace property), so coalescing cannot perturb a single bit.
//!
//! The concurrent runtime supports the fault-plan subset whose draws happen
//! on the observation path (replica crashes with warm rejoin, corrupt
//! runtimes, outlier bursts). Coordinator-link faults (outages, drops,
//! delays, replays, skews, Byzantine replicas) draw RNG inside merge rounds
//! whose interleaving is only meaningful on the simulated clock — those
//! plans are rejected at construction with an explanatory panic, and the
//! simulated twin remains their harness.

use crate::admission::AdmissionQueue;
use crate::config::FleetConfig;
use crate::fault::{DegradedCause, DegradedWindow, FaultPlan, RejectCause, RejectedSummary};
use crate::fleet::{AdmissionOutcome, DeadlineQuery, FleetServer, FleetStats};
use crate::guard::GuardStats;
use crate::server::{ObservedFeedback, PitotServer, Prediction};
use crate::snapshot::{SeqLock, SnapshotCell};
use pitot::{TowerCache, TrainedPitot};
use pitot_conformal::{MergeableWindow, PooledConformal, PredictionSet};
use pitot_linalg::par::{EventQueue, Gauge};
use pitot_testbed::{Dataset, Observation, MAX_INTERFERERS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// One event of a serving trace — the common input language of the
/// concurrent runtime and its simulated twin.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A realized runtime arrives (routed to its shard).
    Observe(Observation),
    /// A deadline query is answered and admitted/shed at ingress.
    Deadline(DeadlineQuery),
    /// A previously decided query's realized runtime is reported.
    Resolve {
        /// The query's correlation id.
        id: u64,
        /// Realized runtime in seconds.
        realized_s: f64,
    },
}

/// What one [`TraceEvent`] produced — comparable across runtimes (the twin
/// suite asserts equality of whole outcome vectors).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOutcome {
    /// An observation was routed.
    Observed {
        /// Its home shard replica.
        replica: usize,
        /// Prequential feedback; `None` when the replica was down (the
        /// observation is lost) or ingest quarantined it.
        feedback: Option<ObservedFeedback>,
    },
    /// A deadline query was decided.
    Decided(AdmissionOutcome),
    /// A resolve was scored (`None` for an unknown id).
    Resolved(Option<bool>),
}

/// Runs a trace through the simulated-clock [`FleetServer`] — the
/// deterministic twin the concurrent runtime is pinned against.
///
/// Event `i` is applied at simulated time `start_at + i`; pass the running
/// event count as `start_at` when feeding one fleet several traces, so the
/// simulated clock stays monotone (the concurrent runtime tracks the same
/// offset internally).
pub fn run_trace_simulated(
    fleet: &mut FleetServer,
    start_at: f64,
    events: &[TraceEvent],
) -> Vec<TraceOutcome> {
    events
        .iter()
        .enumerate()
        .map(|(i, ev)| match ev {
            TraceEvent::Observe(obs) => {
                let (replica, feedback) = fleet.observe(start_at + i as f64, obs.clone());
                TraceOutcome::Observed { replica, feedback }
            }
            TraceEvent::Deadline(q) => TraceOutcome::Decided(fleet.deadline_query(q.clone())),
            TraceEvent::Resolve { id, realized_s } => {
                TraceOutcome::Resolved(fleet.resolve(*id, *realized_s))
            }
        })
        .collect()
}

/// Knobs for a [`ConcurrentFleet`]: the fleet semantics plus the lane
/// worker count.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Fleet semantics (replicas, per-replica serving config, merge
    /// cadence, admission policy). Constraints beyond
    /// [`FleetConfig::validate`] apply — see [`ConcurrentConfig::validate`].
    pub fleet: FleetConfig,
    /// Lane worker threads. `None` (the default) uses
    /// `min(replicas, pitot_linalg::par::threads())`; `Some(1)` forces the
    /// inline single-threaded mode (no worker threads — useful to compare
    /// worker counts inside one process, since the linalg pool size is
    /// latched process-wide). Capped at the replica count.
    pub workers: Option<usize>,
}

impl ConcurrentConfig {
    /// Defaults at miscoverage `epsilon` with the given replica count and
    /// automatic worker sizing.
    ///
    /// # Panics
    ///
    /// As [`ConcurrentConfig::validate`].
    pub fn at(epsilon: f32, replicas: usize) -> Self {
        let cfg = Self {
            fleet: FleetConfig::at(epsilon, replicas),
            workers: None,
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an invalid fleet config ([`FleetConfig::validate`]), a
    /// zero worker override, a nonzero staleness threshold (the read path
    /// answers from the fleet snapshot, so a replica-local stale fallback
    /// would diverge from the twin — staleness remains a simulated-twin
    /// scenario), or an armed miscoverage watchdog (its rollback refits a
    /// replica-local calibration between merges, which the snapshot read
    /// path would never see).
    pub fn validate(&self) {
        self.fleet.validate();
        assert!(
            self.workers != Some(0),
            "ConcurrentConfig.workers = Some(0) is invalid: the runtime \
             needs at least one lane worker; use Some(1) for the inline \
             single-threaded mode or None for automatic sizing"
        );
        assert!(
            self.fleet.serve.staleness_threshold == 0,
            "ConcurrentConfig.fleet.serve.staleness_threshold = {} is not \
             supported by the concurrent runtime: deadline queries are \
             answered from the fleet calibration snapshot, so a \
             replica-local stale fallback could never be served and the \
             deterministic twin would diverge; use staleness_threshold = 0 \
             here and study staleness on the simulated FleetServer",
            self.fleet.serve.staleness_threshold
        );
        assert!(
            self.fleet.serve.watchdog_z == 0.0,
            "ConcurrentConfig.fleet.serve.watchdog_z = {} is not supported \
             by the concurrent runtime: a watchdog rollback refits a \
             replica-local calibration between merges, which the lock-free \
             snapshot read path would never observe; use watchdog_z = 0.0 \
             here (the ingest guard and MAD screen stay available) and \
             study the watchdog on the simulated FleetServer",
            self.fleet.serve.watchdog_z
        );
    }
}

/// Rejects fault-plan knobs whose RNG draws happen inside merge rounds —
/// only observation-path faults replay identically on the concurrent
/// runtime (see the module docs).
fn validate_plan_for_concurrent(plan: &FaultPlan) {
    assert!(
        plan.outages.is_empty(),
        "FaultPlan.outages = {:?} is not supported by the concurrent \
         runtime: outage windows gate merge rounds and gossip draws on the \
         simulated clock; use an outage-free plan here and study outages \
         on the simulated FleetServer twin",
        plan.outages
    );
    assert!(
        plan.drop_prob == 0.0 && plan.delay_prob == 0.0,
        "FaultPlan.drop_prob = {} / delay_prob = {} is not supported by \
         the concurrent runtime: drop/delay/retry draws happen inside \
         merge rounds whose control-RNG order is only defined on the \
         simulated clock; use 0.0 here and study lossy links on the \
         simulated FleetServer twin",
        plan.drop_prob,
        plan.delay_prob
    );
    assert!(
        plan.replay_prob == 0.0 && plan.skew_prob == 0.0,
        "FaultPlan.replay_prob = {} / skew_prob = {} is not supported by \
         the concurrent runtime: summary replay/skew draws happen at \
         emission inside merge rounds; use 0.0 here and study summary \
         integrity faults on the simulated FleetServer twin",
        plan.replay_prob,
        plan.skew_prob
    );
    assert!(
        plan.byzantine.is_none(),
        "FaultPlan.byzantine = {:?} is not supported by the concurrent \
         runtime: Byzantine emissions draw tamper salts inside merge \
         rounds; use byzantine = None here and study Byzantine replicas on \
         the simulated FleetServer twin",
        plan.byzantine
    );
}

/// A command shipped to a lane worker: one observation bound for one
/// replica, with everything needed to apply it and report back.
struct ShardCmd {
    replica: usize,
    /// Index into the current [`ConcurrentFleet::run_trace`] outcome
    /// vector.
    trace_idx: u32,
    /// Fleet-wide observation number at ingress (audit attribution key).
    obs_no: usize,
    at_s: f64,
    obs: Observation,
}

/// A lane worker's report for one processed observation.
struct ObsOutcome {
    trace_idx: u32,
    obs_no: usize,
    feedback: Option<ObservedFeedback>,
}

/// Live, lock-free progress counters of one lane, published through a
/// [`SeqLock`] after every processed batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneProgress {
    /// Observations processed by this lane.
    pub processed: u64,
    /// Batches drained (each batch is one row-parallel predict pass).
    pub batches: u64,
    /// Largest single coalesced batch so far.
    pub max_batch: u64,
}

/// The immutable model state every prediction reads: in fleet mode the
/// model never changes (fine-tuning is rejected), so the tower caches are
/// built once — one per replica, bitwise identical to each replica
/// server's own. Per-replica compression
/// ([`FleetConfig::replica_compression`]) makes the caches genuinely
/// distinct; a dense fleet holds `replicas` copies of the same cache,
/// matching the simulated twin's per-replica memory layout.
struct ReadState {
    trained: TrainedPitot,
    towers: Vec<TowerCache>,
}

/// Shared per-lane plumbing between ingress, worker, and coordinator.
struct LaneShared {
    queue: EventQueue<ShardCmd>,
    processed: Gauge,
    outbox: Mutex<Vec<ObsOutcome>>,
    progress: SeqLock<LaneProgress>,
}

struct Lane {
    shared: Arc<LaneShared>,
    /// Ingress-side count of commands routed to this lane (the barrier
    /// target for [`LaneShared::processed`]).
    routed: u64,
}

/// Concurrent fault runtime — the observation-path subset of the
/// simulated [`FleetServer`]'s fault machinery (see module docs).
struct CFaults {
    plan: FaultPlan,
    data_rng: ChaCha8Rng,
    outlier_left: usize,
    down: Vec<bool>,
    crash_done: Vec<bool>,
    rejoin_done: Vec<bool>,
    crash_audit: Vec<Option<usize>>,
    audits: Vec<DegradedWindow>,
    injected_corrupt: usize,
    injected_outliers: usize,
    lost_observations: usize,
    failover_queries: usize,
    recoveries: usize,
}

impl CFaults {
    fn new(plan: FaultPlan, replicas: usize) -> Self {
        let n_crashes = plan.crashes.len();
        Self {
            // Identical seeding to the simulated twin's data-path stream,
            // so corrupt/outlier draws replay bit-for-bit.
            data_rng: ChaCha8Rng::seed_from_u64(plan.seed ^ 0xDA_7A_BA_D5),
            outlier_left: 0,
            down: vec![false; replicas],
            crash_done: vec![false; n_crashes],
            rejoin_done: vec![false; n_crashes],
            crash_audit: vec![None; n_crashes],
            audits: Vec::new(),
            injected_corrupt: 0,
            injected_outliers: 0,
            lost_observations: 0,
            failover_queries: 0,
            recoveries: 0,
            plan,
        }
    }

    fn open_audit(&mut self) -> Option<&mut DegradedWindow> {
        self.audits.iter_mut().rev().find(|a| a.until_obs.is_none())
    }
}

/// Everything needed to rebuild a crashed replica warm.
struct Template {
    trained: TrainedPitot,
    dataset: Dataset,
    serve_cfg: crate::config::ServeConfig,
}

/// The concurrent serving runtime: [`FleetServer`] semantics on OS threads
/// (see the module docs for the architecture and the equivalence argument).
///
/// Drive it with [`ConcurrentFleet::run_trace`]; audits and stats are
/// consistent at every API boundary (each `run_trace` call barriers its
/// lanes and folds worker feedback back in before returning).
pub struct ConcurrentFleet {
    cfg: FleetConfig,
    /// Effective worker count; 1 = inline mode (no threads).
    workers: usize,
    lanes: Vec<Lane>,
    handles: Vec<std::thread::JoinHandle<()>>,
    shards: Arc<Vec<Mutex<PitotServer>>>,
    read: Arc<ReadState>,
    snapshot: Arc<SnapshotCell<PooledConformal>>,
    template: Template,
    merged: MergeableWindow,
    fleet_conformal: Option<PooledConformal>,
    admission: AdmissionQueue,
    xis: Vec<f32>,
    since_merge: usize,
    merges: usize,
    skipped_installs: usize,
    obs_seen: usize,
    events_seen: usize,
    /// Queries answered at ingress (replica servers never see queries;
    /// folded into [`FleetStats::queries`]).
    ingress_queries: usize,
    faults: Option<CFaults>,
    retired: FleetStats,
    retired_guard: GuardStats,
    rejected: Vec<RejectedSummary>,
    rejected_total: usize,
    /// Scratch batch for the inline (single-worker) mode.
    inline_batch: Vec<ShardCmd>,
}

impl std::fmt::Debug for ConcurrentFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentFleet")
            .field("replicas", &self.shards.len())
            .field("workers", &self.workers)
            .field("lanes", &self.lanes.len())
            .field("merges", &self.merges)
            .finish_non_exhaustive()
    }
}

/// Scores one drained batch in a single row-parallel pass, then applies
/// each observation to its shard in FIFO order — the coalescing heart of
/// the runtime. Shared by the lane workers and the inline mode.
fn process_batch(
    read: &ReadState,
    shards: &[Mutex<PitotServer>],
    batch: &mut Vec<ShardCmd>,
    out: &mut Vec<ObsOutcome>,
) {
    // Score against each destination replica's own tower cache (replicas
    // may serve compressed towers): one row-parallel pass per distinct
    // replica in the batch. Batched prediction is bitwise-identical to a
    // batch of one (pinned workspace property), so the grouping cannot
    // perturb a bit — and shard application below stays in FIFO order.
    let mut head_preds: Vec<Vec<f32>> = vec![Vec::new(); batch.len()];
    let mut idxs: Vec<usize> = Vec::new();
    for (rep, towers) in read.towers.iter().enumerate() {
        idxs.clear();
        idxs.extend(
            batch
                .iter()
                .enumerate()
                .filter(|(_, c)| c.replica == rep)
                .map(|(i, _)| i),
        );
        if idxs.is_empty() {
            continue;
        }
        let refs: Vec<&Observation> = idxs.iter().map(|&i| &batch[i].obs).collect();
        let preds = read.trained.predict_log_runtime_cached(towers, &refs);
        for (j, &i) in idxs.iter().enumerate() {
            head_preds[i] = preds.iter().map(|h| h[j]).collect();
        }
    }
    for (i, cmd) in batch.drain(..).enumerate() {
        let resp = shards[cmd.replica]
            .lock()
            .expect("shard mutex poisoned")
            .on_observation_prescored(cmd.at_s, cmd.obs, std::mem::take(&mut head_preds[i]));
        out.push(ObsOutcome {
            trace_idx: cmd.trace_idx,
            obs_no: cmd.obs_no,
            feedback: resp.observed,
        });
    }
}

/// A lane worker's main loop: park until commands (or shutdown), drain
/// everything pending, score + apply the batch, report, repeat.
fn lane_worker(read: Arc<ReadState>, shards: Arc<Vec<Mutex<PitotServer>>>, lane: Arc<LaneShared>) {
    let mut batch: Vec<ShardCmd> = Vec::new();
    let mut out: Vec<ObsOutcome> = Vec::new();
    let mut prog = LaneProgress::default();
    while lane.queue.drain_into(&mut batch) {
        let n = batch.len() as u64;
        process_batch(&read, &shards, &mut batch, &mut out);
        lane.outbox
            .lock()
            .expect("lane outbox poisoned")
            .append(&mut out);
        prog.processed += n;
        prog.batches += 1;
        prog.max_batch = prog.max_batch.max(n);
        lane.progress.write(prog);
        // The gauge moves last: once the barrier releases, the outbox
        // already holds this batch's feedback.
        lane.processed.add(n);
    }
}

impl ConcurrentFleet {
    /// Builds the concurrent fleet and spawns its lane workers (none in
    /// inline mode). Mirrors [`FleetServer::new`]: per-replica refresh is
    /// overridden to "never" — the coordinator owns every install.
    ///
    /// # Panics
    ///
    /// As [`ConcurrentConfig::validate`].
    pub fn new(trained: TrainedPitot, dataset: &Dataset, cfg: ConcurrentConfig) -> Self {
        cfg.validate();
        let replicas = cfg.fleet.replicas;
        let workers = cfg
            .workers
            .unwrap_or_else(|| pitot_linalg::par::threads().min(replicas))
            .min(replicas)
            .max(1);
        let mut serve_cfg = cfg.fleet.serve.clone();
        serve_cfg.refresh_every = usize::MAX;
        let xis = trained.model.config().objective.xis();
        let n_heads = trained.model.n_heads();
        let shards: Arc<Vec<Mutex<PitotServer>>> = Arc::new(
            (0..replicas)
                .map(|r| {
                    let mut rc = serve_cfg.clone();
                    rc.compression = cfg.fleet.replica_compression(r);
                    Mutex::new(PitotServer::new(trained.clone(), dataset.clone(), rc))
                })
                .collect(),
        );
        let read = Arc::new(ReadState {
            towers: (0..replicas)
                .map(|r| trained.compressed_tower_cache(dataset, &cfg.fleet.replica_compression(r)))
                .collect(),
            trained: trained.clone(),
        });
        let n_lanes = if workers > 1 { workers } else { 1 };
        let lanes: Vec<Lane> = (0..n_lanes)
            .map(|_| Lane {
                shared: Arc::new(LaneShared {
                    queue: EventQueue::new(),
                    processed: Gauge::new(),
                    outbox: Mutex::new(Vec::new()),
                    progress: SeqLock::new(LaneProgress::default()),
                }),
                routed: 0,
            })
            .collect();
        let handles = if workers > 1 {
            lanes
                .iter()
                .map(|lane| {
                    let read = Arc::clone(&read);
                    let shards = Arc::clone(&shards);
                    let shared = Arc::clone(&lane.shared);
                    std::thread::Builder::new()
                        .name("pitot-serve-lane".to_string())
                        .spawn(move || lane_worker(read, shards, shared))
                        .expect("spawning lane worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        let admission = AdmissionQueue::new(cfg.fleet.admission.clone());
        Self {
            cfg: cfg.fleet,
            workers,
            lanes,
            handles,
            shards,
            read,
            snapshot: Arc::new(SnapshotCell::new()),
            template: Template {
                trained,
                dataset: dataset.clone(),
                serve_cfg,
            },
            merged: MergeableWindow::empty(n_heads),
            fleet_conformal: None,
            admission,
            xis,
            since_merge: 0,
            merges: 0,
            skipped_installs: 0,
            obs_seen: 0,
            events_seen: 0,
            ingress_queries: 0,
            faults: None,
            retired: FleetStats::default(),
            retired_guard: GuardStats::default(),
            rejected: Vec::new(),
            rejected_total: 0,
            inline_batch: Vec::new(),
        }
    }

    /// [`ConcurrentFleet::new`] with a deterministic fault schedule
    /// installed. Only the observation-path subset is supported (crashes
    /// with warm rejoin, corrupt runtimes, outlier bursts); plans with
    /// coordinator-link faults are rejected — see the module docs.
    ///
    /// # Panics
    ///
    /// As [`ConcurrentConfig::validate`] and [`FaultPlan::validate`], plus
    /// a panic naming the offending knob for unsupported plan features.
    pub fn with_faults(
        trained: TrainedPitot,
        dataset: &Dataset,
        cfg: ConcurrentConfig,
        plan: FaultPlan,
    ) -> Self {
        plan.validate(cfg.fleet.replicas);
        validate_plan_for_concurrent(&plan);
        let mut fleet = Self::new(trained, dataset, cfg);
        let replicas = fleet.shards.len();
        fleet.faults = Some(CFaults::new(plan, replicas));
        fleet
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.shards.len()
    }

    /// Effective lane worker count (1 = inline mode).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The replica a `(workload, platform)` pair is sharded to — the same
    /// pure hash as [`FleetServer::shard_for`].
    pub fn shard_for(&self, workload: u32, platform: u32) -> usize {
        let key = (u64::from(workload) << 32) | u64::from(platform);
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 33) % self.shards.len() as u64) as usize
    }

    /// Seeds every replica's calibration window from disjoint round-robin
    /// shards of `idx` and runs an immediate merge — mirrors
    /// [`FleetServer::seed_calibration`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-range index.
    pub fn seed_calibration(&mut self, idx: &[usize]) {
        assert!(!idx.is_empty(), "cannot seed from an empty index set");
        let n = self.shards.len();
        let mut sets: Vec<Vec<usize>> = vec![Vec::with_capacity(idx.len().div_ceil(n)); n];
        for (i, &v) in idx.iter().enumerate() {
            sets[i % n].push(v);
        }
        for (shard, set) in self.shards.iter().zip(&sets) {
            if !set.is_empty() {
                shard
                    .lock()
                    .expect("shard mutex poisoned")
                    .seed_calibration(set);
            }
        }
        self.merge_now();
    }

    /// Feeds a trace through the runtime and returns one outcome per
    /// event, bitwise-comparable to [`run_trace_simulated`] on a twin
    /// fleet. Blocks until every lane has drained, so outcomes, stats, and
    /// audits are final when this returns. Call repeatedly to stream —
    /// the internal event clock carries across calls.
    pub fn run_trace(&mut self, events: &[TraceEvent]) -> Vec<TraceOutcome> {
        let mut outcomes: Vec<TraceOutcome> = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            let at_s = self.events_seen as f64;
            self.events_seen += 1;
            match ev {
                TraceEvent::Observe(obs) => {
                    let replica = self.shard_for(obs.workload, obs.platform);
                    // Placeholder; patched from the lane outboxes below.
                    outcomes.push(TraceOutcome::Observed {
                        replica,
                        feedback: None,
                    });
                    self.ingest_observe(replica, i as u32, at_s, obs.clone());
                }
                TraceEvent::Deadline(q) => {
                    outcomes.push(TraceOutcome::Decided(self.ingest_deadline(q.clone())));
                }
                TraceEvent::Resolve { id, realized_s } => {
                    outcomes.push(TraceOutcome::Resolved(
                        self.ingest_resolve(*id, *realized_s),
                    ));
                }
            }
        }
        self.barrier_all();
        self.fold_outboxes(&mut outcomes);
        outcomes
    }

    /// Drains every lane outbox: patches the placeholder outcomes with the
    /// workers' feedback and attributes judged observations to the
    /// degraded-window audit that was open when they arrived — equivalent
    /// to the twin's live attribution, because an audit covers exactly the
    /// observation numbers in `[from_obs, until_obs)`.
    fn fold_outboxes(&mut self, outcomes: &mut [TraceOutcome]) {
        for lane in &self.lanes {
            let drained: Vec<ObsOutcome> =
                std::mem::take(&mut *lane.shared.outbox.lock().expect("lane outbox poisoned"));
            for o in drained {
                if let Some(f) = &mut self.faults {
                    if let Some(fb) = o.feedback {
                        let open = f.audits.iter_mut().rev().find(|a| {
                            a.from_obs <= o.obs_no && a.until_obs.is_none_or(|u| u > o.obs_no)
                        });
                        if let Some(a) = open {
                            a.bounded += 1;
                            if fb.covered {
                                a.covered += 1;
                            }
                        }
                    }
                }
                if let TraceOutcome::Observed { feedback, .. } = &mut outcomes[o.trace_idx as usize]
                {
                    *feedback = o.feedback;
                }
            }
        }
    }

    /// Ingress for one observation: advance the fault clock, inject data
    /// faults, drop it if the shard is down, otherwise route it to the
    /// shard's lane — then run the merge cadence. RNG draws and fault
    /// transitions all happen here, in trace order, exactly as on the twin.
    fn ingest_observe(&mut self, replica: usize, trace_idx: u32, at_s: f64, obs: Observation) {
        self.tick();
        let obs = self.inject_data_faults(obs);
        if self.faults.as_ref().is_some_and(|f| f.down[replica]) {
            let f = self.faults.as_mut().expect("just checked");
            f.lost_observations += 1;
            if let Some(a) = f.open_audit() {
                a.lost_observations += 1;
            }
            self.after_observation();
            return;
        }
        let obs_no = self.obs_seen;
        let lane_idx = replica % self.lanes.len();
        let cmd = ShardCmd {
            replica,
            trace_idx,
            obs_no,
            at_s,
            obs,
        };
        self.lanes[lane_idx].routed += 1;
        assert!(
            self.lanes[lane_idx].shared.queue.push(cmd),
            "lane queue closed while the fleet is live"
        );
        if self.workers == 1 {
            self.pump_inline(lane_idx);
        }
        self.after_observation();
    }

    /// Inline mode: play the lane worker's role on the ingress thread —
    /// drain whatever is pending and process it as one batch, keeping the
    /// gauge/outbox/progress bookkeeping identical to the threaded path.
    fn pump_inline(&mut self, lane_idx: usize) {
        let lane = &self.lanes[lane_idx].shared;
        let n = lane.queue.try_drain_into(&mut self.inline_batch) as u64;
        if n == 0 {
            return;
        }
        let mut out = Vec::with_capacity(self.inline_batch.len());
        process_batch(&self.read, &self.shards, &mut self.inline_batch, &mut out);
        lane.outbox
            .lock()
            .expect("lane outbox poisoned")
            .append(&mut out);
        let mut prog = lane.progress.read();
        prog.processed += n;
        prog.batches += 1;
        prog.max_batch = prog.max_batch.max(n);
        lane.progress.write(prog);
        lane.processed.add(n);
    }

    /// Parks until lane `lane_idx` has processed everything routed to it.
    fn barrier_lane(&self, lane_idx: usize) {
        let lane = &self.lanes[lane_idx];
        lane.shared.processed.wait_at_least(lane.routed);
    }

    /// Parks until every lane's backlog is drained — the quiescent point
    /// merges, rejoins, and stats reads run at.
    fn barrier_all(&self) {
        for i in 0..self.lanes.len() {
            self.barrier_lane(i);
        }
    }

    /// Mirror of the twin's fault-clock tick: advance the fleet-wide
    /// observation counter and apply every crash/rejoin due at it.
    fn tick(&mut self) {
        self.obs_seen += 1;
        let obs = self.obs_seen;
        let mut faults = match self.faults.take() {
            Some(f) => f,
            None => return,
        };
        for k in 0..faults.plan.crashes.len() {
            let c = faults.plan.crashes[k];
            if !faults.crash_done[k] && obs >= c.at && obs < c.rejoin_at {
                faults.crash_done[k] = true;
                faults.down[c.replica] = true;
                faults.crash_audit[k] = Some(faults.audits.len());
                faults.audits.push(DegradedWindow {
                    cause: DegradedCause::ReplicaCrash { replica: c.replica },
                    from_obs: obs,
                    until_obs: None,
                    bounded: 0,
                    covered: 0,
                    lost_observations: 0,
                    degraded_decisions: 0,
                    shed: 0,
                    slo_missed: 0,
                });
            }
            if !faults.rejoin_done[k] && obs >= c.rejoin_at && faults.crash_done[k] {
                faults.rejoin_done[k] = true;
                faults.down[c.replica] = false;
                self.rejoin_replica(c.replica);
                if let Some(a) = faults.crash_audit[k].take() {
                    faults.audits[a].until_obs = Some(obs);
                }
                faults.recoveries += 1;
            }
        }
        self.faults = Some(faults);
    }

    /// Mirror of the twin's data-fault injection — one draw sequence from
    /// the identically seeded data RNG, consumed in trace order.
    fn inject_data_faults(&mut self, mut obs: Observation) -> Observation {
        let Some(f) = &mut self.faults else {
            return obs;
        };
        if f.plan.corrupt_prob <= 0.0 && f.plan.outlier_prob <= 0.0 {
            return obs;
        }
        if f.outlier_left > 0 {
            f.outlier_left -= 1;
            obs.runtime_s *= f.plan.outlier_log_scale.exp();
            f.injected_outliers += 1;
            return obs;
        }
        let u: f32 = f.data_rng.gen_range(0.0f32..1.0);
        if u < f.plan.corrupt_prob {
            obs.runtime_s = match f.data_rng.gen_range(0u32..3) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => -obs.runtime_s,
            };
            f.injected_corrupt += 1;
        } else if u < f.plan.corrupt_prob + f.plan.outlier_prob {
            f.outlier_left = f.data_rng.gen_range(1..=f.plan.outlier_burst_max) - 1;
            obs.runtime_s *= f.plan.outlier_log_scale.exp();
            f.injected_outliers += 1;
        }
        obs
    }

    /// Rebuilds a crashed replica warm, exactly as the twin does: barrier
    /// its lane, retire the dead instance's counters, rebuild from the
    /// template, replay the coordinator's held window summary, and install
    /// the current fleet calibration.
    fn rejoin_replica(&mut self, r: usize) {
        self.barrier_lane(r % self.lanes.len());
        let mut shard = self.shards[r].lock().expect("shard mutex poisoned");
        let rs = shard.stats();
        self.retired.observations += rs.observations;
        self.retired.queries += rs.queries;
        self.retired.covered += rs.covered;
        self.retired.bounded += rs.bounded;
        self.retired.degraded_bounded += rs.degraded_bounded;
        self.retired.degraded_covered += rs.degraded_covered;
        self.retired.fallback_refits += rs.fallback_refits;
        self.retired_guard = self.retired_guard.merged(&shard.guard_stats());
        // A compressed replica rejoins compressed: rebuild under its
        // original per-replica compression spec, as the twin does.
        let mut serve_cfg = self.template.serve_cfg.clone();
        serve_cfg.compression = self.cfg.replica_compression(r);
        let mut server = PitotServer::new(
            self.template.trained.clone(),
            self.template.dataset.clone(),
            serve_cfg,
        );
        if let Some((clock, entries)) = self.merged.replica_entries(r as u64) {
            server.restore_window(entries, clock);
        }
        if let Some(c) = &self.fleet_conformal {
            server.install_calibration(c.clone());
        }
        *shard = server;
    }

    /// Per-observation control-path work after routing: the merge cadence
    /// (the twin's retry machinery is vacuous under supported plans).
    fn after_observation(&mut self) {
        self.since_merge += 1;
        if self.since_merge >= self.cfg.merge_every {
            self.merge_now();
        }
    }

    /// Runs a coordinator merge round now: barrier every lane, absorb live
    /// replicas' summaries, fit the union, install everywhere — and
    /// publish the calibration snapshot for the lock-free read path.
    pub fn merge_now(&mut self) {
        self.since_merge = 0;
        self.barrier_all();
        let mut changed = false;
        for r in 0..self.shards.len() {
            if self.faults.as_ref().is_some_and(|f| f.down[r]) {
                continue;
            }
            let summary = {
                let server = self.shards[r].lock().expect("shard mutex poisoned");
                // Same skip as the twin: an unadvanced window's held run is
                // already current.
                if self.merged.replica_clock(r as u64) == Some(server.window_clock()) {
                    continue;
                }
                server.window_summary(r as u64)
            };
            changed |= self.try_absorb(r as u64, &summary);
        }
        if self.merged.is_empty() {
            return;
        }
        if !changed && self.fleet_conformal.is_some() {
            self.skipped_installs += 1;
            return;
        }
        let conformal = self.fit_union();
        for (r, shard) in self.shards.iter().enumerate() {
            if self.faults.as_ref().is_some_and(|f| f.down[r]) {
                continue;
            }
            shard
                .lock()
                .expect("shard mutex poisoned")
                .install_calibration(conformal.clone());
        }
        self.snapshot.store(Arc::new(conformal.clone()));
        self.fleet_conformal = Some(conformal);
        self.merges += 1;
    }

    /// The twin's summary screens, verbatim: structural verification plus
    /// clock-plausibility (skew and replay), every refusal audited.
    fn try_absorb(&mut self, r: u64, summary: &MergeableWindow) -> bool {
        if let Err(e) = summary.verify() {
            self.reject(e.replica as usize, RejectCause::from_fault(e.fault));
            return false;
        }
        let held = self.merged.replica_clock(r);
        if let Some(c) = summary.replica_clock(r) {
            let threshold = (2 * self.obs_seen + self.cfg.serve.window + 1024) as u64;
            if c > threshold {
                self.reject(r as usize, RejectCause::SkewedClock);
                return false;
            }
            if held.is_some_and(|h| c <= h) {
                self.reject(r as usize, RejectCause::Replayed);
                return false;
            }
        }
        self.merged.absorb(summary);
        self.merged.replica_clock(r) != held
    }

    fn reject(&mut self, replica: usize, cause: RejectCause) {
        self.rejected_total += 1;
        if self.rejected.len() >= FleetServer::REJECT_RETAIN {
            self.rejected.remove(0);
        }
        self.rejected.push(RejectedSummary {
            replica,
            at_obs: self.obs_seen,
            cause,
        });
    }

    /// Fits the fleet calibration on the merged union — identical
    /// arithmetic to the twin's coordinator fit.
    fn fit_union(&self) -> PooledConformal {
        let scored = self.merged.to_scored();
        let empty_preds: Vec<Vec<f32>> = vec![Vec::new(); self.merged.n_heads()];
        PooledConformal::fit_scored(
            &scored,
            &PredictionSet {
                predictions: &empty_preds,
                targets_log: &[],
                pools: &[],
            },
            &self.xis,
            self.cfg.serve.selection,
            self.cfg.serve.epsilon,
        )
    }

    /// The lock-free read path: score the query against the answering
    /// replica's immutable tower cache (compressed replicas answer with
    /// their compressed towers, exactly as the twin's `query_now` does)
    /// and bound it with the current calibration snapshot — no shard
    /// lock, no queue, no waiting on writers.
    fn predict_read_path(&self, replica: usize, q: &DeadlineQuery) -> Prediction {
        let obs = Observation {
            workload: q.workload,
            platform: q.platform,
            interferers: q.interferers.clone(),
            runtime_s: 1.0, // unused by prediction
        };
        let preds = self
            .read
            .trained
            .predict_log_runtime_cached(&self.read.towers[replica], &[&obs]);
        let head_preds: Vec<f32> = preds.iter().map(|h| h[0]).collect();
        let pool = if self.cfg.serve.pool_by_arity {
            q.interferers.len().min(MAX_INTERFERERS)
        } else {
            0
        };
        let point = head_preds[0];
        let bound = match self.snapshot.load() {
            Some(c) => c.bound_log(&head_preds, pool),
            None => *head_preds.last().expect("at least one head"),
        };
        Prediction {
            id: 0,
            point_s: point.exp(),
            bound_s: bound.exp(),
            pool,
            // Staleness tracking is validated off, so the twin's replicas
            // never serve degraded either.
            degraded: false,
        }
    }

    /// Ingress for one deadline query: failover routing, snapshot-read
    /// prediction, admission — mirroring [`FleetServer::deadline_query`].
    fn ingest_deadline(&mut self, q: DeadlineQuery) -> AdmissionOutcome {
        let home = self.shard_for(q.workload, q.platform);
        let mut replica = home;
        let mut failover = false;
        if let Some(f) = &self.faults {
            if f.down[home] {
                let n = self.shards.len();
                replica = (1..n)
                    .map(|d| (home + d) % n)
                    .find(|&r| !f.down[r])
                    .expect("deadline_query: every replica in the fleet is down");
                failover = true;
            }
        }
        let prediction = self.predict_read_path(replica, &q);
        self.ingress_queries += 1;
        let decision = self.admission.decide_tagged(
            q.id,
            f64::from(prediction.bound_s),
            q.deadline_s,
            prediction.degraded,
        );
        if let Some(f) = &mut self.faults {
            if failover {
                f.failover_queries += 1;
            }
            if let Some(a) = f.open_audit() {
                if prediction.degraded {
                    a.degraded_decisions += 1;
                }
                if !decision.admitted() {
                    a.shed += 1;
                }
            }
        }
        AdmissionOutcome {
            id: q.id,
            replica,
            decision,
            prediction,
            failover,
        }
    }

    /// Mirror of [`FleetServer::resolve`], including audit attribution of
    /// fresh SLO misses.
    fn ingest_resolve(&mut self, id: u64, realized_s: f64) -> Option<bool> {
        let missed_before = self.admission.stats().slo_missed;
        let res = self.admission.resolve(id, realized_s);
        if self.admission.stats().slo_missed > missed_before {
            if let Some(f) = &mut self.faults {
                if let Some(a) = f.open_audit() {
                    a.slo_missed += 1;
                }
            }
        }
        res
    }

    /// Aggregated counters, assembled exactly as the twin's
    /// [`FleetServer::stats`] (barriers the lanes first so replica
    /// counters are settled). Ingress-answered queries are folded into
    /// [`FleetStats::queries`].
    pub fn stats(&self) -> FleetStats {
        self.barrier_all();
        let mut s = self.retired;
        s.merges = self.merges;
        s.skipped_installs = self.skipped_installs;
        s.rejected_summaries = self.rejected_total;
        s.admission = *self.admission.stats();
        if let Some(f) = &self.faults {
            s.lost_observations = f.lost_observations;
            s.failover_queries = f.failover_queries;
            s.recoveries = f.recoveries;
            s.injected_corrupt = f.injected_corrupt;
            s.injected_outliers = f.injected_outliers;
        }
        s.guard = self.retired_guard;
        for shard in self.shards.iter() {
            let server = shard.lock().expect("shard mutex poisoned");
            let rs = server.stats();
            s.observations += rs.observations;
            s.queries += rs.queries;
            s.covered += rs.covered;
            s.bounded += rs.bounded;
            s.degraded_bounded += rs.degraded_bounded;
            s.degraded_covered += rs.degraded_covered;
            s.fallback_refits += rs.fallback_refits;
            s.guard = s.guard.merged(&server.guard_stats());
        }
        s.queries += self.ingress_queries;
        s
    }

    /// The degraded-window audit log (finalized at every
    /// [`ConcurrentFleet::run_trace`] boundary) — comparable to
    /// [`FleetServer::degraded_audit`].
    pub fn degraded_audit(&self) -> &[DegradedWindow] {
        self.faults.as_ref().map_or(&[], |f| &f.audits)
    }

    /// The bounded rejected-summary audit ring, oldest first — comparable
    /// to [`FleetServer::rejected_audit`].
    pub fn rejected_audit(&self) -> &[RejectedSummary] {
        &self.rejected
    }

    /// The currently installed fleet-level calibration, via the same
    /// snapshot cell the read path uses.
    pub fn fleet_conformal(&self) -> Option<Arc<PooledConformal>> {
        self.snapshot.load()
    }

    /// Live per-lane progress counters, read lock-free off each lane's
    /// [`SeqLock`] — safe to poll from any thread while a trace runs.
    pub fn progress(&self) -> Vec<LaneProgress> {
        self.lanes
            .iter()
            .map(|l| l.shared.progress.read())
            .collect()
    }
}

impl Drop for ConcurrentFleet {
    fn drop(&mut self) {
        for lane in &self.lanes {
            lane.shared.queue.close();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked already reported via the test/process
            // harness; don't double-panic in drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::AdmissionConfig;
    use pitot_conformal::HeadSelection;

    fn message<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
        let err = std::panic::catch_unwind(f).expect_err("must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic carries a message")
    }

    fn cfg(replicas: usize) -> ConcurrentConfig {
        let mut serve = ServeConfig::at(0.1);
        serve.window = 64;
        serve.selection = HeadSelection::NaiveXi;
        ConcurrentConfig {
            fleet: FleetConfig {
                serve,
                replicas,
                merge_every: 16,
                admission: AdmissionConfig::default(),
                compression: Vec::new(),
            },
            workers: Some(1),
        }
    }

    #[test]
    fn validation_rejects_zero_workers() {
        let m = message(|| {
            let mut c = cfg(2);
            c.workers = Some(0);
            c.validate();
        });
        assert!(m.contains("ConcurrentConfig.workers = Some(0)"), "{m}");
        assert!(m.contains("Some(1)"), "alternative: {m}");
    }

    #[test]
    fn validation_rejects_staleness_tracking() {
        let m = message(|| {
            let mut c = cfg(2);
            c.fleet.serve.staleness_threshold = 64;
            c.validate();
        });
        assert!(
            m.contains("ConcurrentConfig.fleet.serve.staleness_threshold = 64"),
            "field + value: {m}"
        );
        assert!(m.contains("staleness_threshold = 0"), "fix: {m}");
        assert!(m.contains("simulated FleetServer"), "alternative: {m}");
    }

    #[test]
    fn validation_rejects_watchdog() {
        let m = message(|| {
            let mut c = cfg(2);
            c.fleet.serve.ingest_guard = true;
            c.fleet.serve.watchdog_z = 4.0;
            c.validate();
        });
        assert!(
            m.contains("ConcurrentConfig.fleet.serve.watchdog_z = 4"),
            "field + value: {m}"
        );
        assert!(m.contains("watchdog_z = 0.0"), "fix: {m}");
    }

    #[test]
    fn unsupported_fault_plans_are_rejected_with_alternatives() {
        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).coordinator_outage(10, 20));
        });
        assert!(m.contains("FaultPlan.outages"), "field: {m}");
        assert!(m.contains("simulated FleetServer twin"), "alternative: {m}");

        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).drop_summaries(0.25));
        });
        assert!(m.contains("FaultPlan.drop_prob = 0.25"), "{m}");

        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).delay_summaries(0.25, 3));
        });
        assert!(m.contains("delay_prob = 0.25"), "{m}");

        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).replay_summaries(0.25));
        });
        assert!(m.contains("FaultPlan.replay_prob = 0.25"), "{m}");

        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).skew_clocks(0.25));
        });
        assert!(m.contains("skew_prob = 0.25"), "{m}");

        let m = message(|| {
            validate_plan_for_concurrent(&FaultPlan::none(1).byzantine_replica(0, 5));
        });
        assert!(m.contains("FaultPlan.byzantine"), "field: {m}");

        // The supported observation-path subset passes.
        validate_plan_for_concurrent(
            &FaultPlan::none(1)
                .crash(0, 10, 20)
                .corrupt_observations(0.05)
                .outlier_bursts(0.02, 2.5, 4),
        );
    }
}
